"""Tests for the traffic-analysis and MALT application substrates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.application import ApplicationContext
from repro.malt import (
    EntityKind,
    MaltTopologyConfig,
    RelationshipKind,
    generate_malt_topology,
    paper_scale_topology,
)
from repro.malt.generator import (
    containment_children,
    containment_parent,
    entities_of_type,
    type_counts,
)
from repro.malt.schema import describe_schema, entity_kind_names, relationship_kind_names
from repro.traffic import (
    AddressAllocator,
    CommunicationGraphConfig,
    TrafficAnalysisApplication,
    generate_communication_graph,
    generate_flow_log,
    graph_from_flows,
    prefix16,
    prefix24,
    prefix_of,
)
from repro.utils import DeterministicRng
from repro.utils.validation import ValidationError


class TestAddressing:
    def test_prefix_extraction(self):
        assert prefix_of("10.24.3.7", 8) == "10"
        assert prefix16("10.24.3.7") == "10.24"
        assert prefix24("10.24.3.7") == "10.24.3"

    def test_invalid_address_rejected(self):
        with pytest.raises(ValidationError):
            prefix16("not-an-address")
        with pytest.raises(ValidationError):
            prefix16("300.1.1.1")
        with pytest.raises(ValidationError):
            prefix_of("10.0.0.1", 12)

    def test_allocator_produces_unique_addresses(self):
        allocator = AddressAllocator(DeterministicRng(3), prefix_count=3)
        addresses = allocator.allocate_many(100)
        assert len(set(addresses)) == 100

    def test_allocator_pins_benchmark_prefix(self):
        allocator = AddressAllocator(DeterministicRng(3), prefix_count=2)
        assert "15.76" in allocator.prefixes

    def test_allocator_addresses_use_known_prefixes(self):
        allocator = AddressAllocator(DeterministicRng(1), prefix_count=4)
        prefixes = set(allocator.prefixes)
        for address in allocator.allocate_many(50):
            assert prefix16(address) in prefixes

    @staticmethod
    def _fill_pinned_prefix(allocator, skip_third_octet=None):
        # mark every address the allocator could draw (fourth octet 1..254)
        # as taken, optionally leaving one /24 free
        first, second = AddressAllocator.PINNED_PREFIX
        for third in range(256):
            if third == skip_third_octet:
                continue
            for fourth in range(1, 255):
                allocator._allocated.add(f"{first}.{second}.{third}.{fourth}")

    def test_allocator_exhaustion_raises(self):
        allocator = AddressAllocator(DeterministicRng(5), prefix_count=1)
        self._fill_pinned_prefix(allocator)
        with pytest.raises(RuntimeError, match="address space exhausted"):
            allocator.allocate()

    def test_allocator_finds_remaining_addresses_before_exhausting(self):
        allocator = AddressAllocator(DeterministicRng(5), prefix_count=1)
        self._fill_pinned_prefix(allocator, skip_third_octet=0)
        address = allocator.allocate()
        assert address.startswith("15.76.0.")
        assert address in allocator._allocated


class TestCommunicationGraphGenerator:
    def test_respects_requested_size(self):
        graph = generate_communication_graph(node_count=30, edge_count=45, seed=5)
        assert graph.node_count == 30
        assert graph.edge_count == 45

    def test_deterministic_for_same_seed(self):
        first = generate_communication_graph(node_count=20, edge_count=25, seed=9)
        second = generate_communication_graph(node_count=20, edge_count=25, seed=9)
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_communication_graph(node_count=20, edge_count=25, seed=1)
        second = generate_communication_graph(node_count=20, edge_count=25, seed=2)
        assert first != second

    def test_edge_weights_in_configured_range(self):
        config = CommunicationGraphConfig(node_count=20, edge_count=30,
                                          min_bytes=10, max_bytes=20, seed=3)
        graph = generate_communication_graph(config)
        for _, _, attrs in graph.edges(data=True):
            assert 10 <= attrs["bytes"] <= 20
            assert attrs["connections"] >= 1
            assert attrs["packets"] >= 1

    def test_nodes_have_expected_attributes(self):
        graph = generate_communication_graph(node_count=10, edge_count=12, seed=3)
        for _, attrs in graph.nodes(data=True):
            assert set(attrs) >= {"address", "type", "name"}

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            generate_communication_graph(node_count=1, edge_count=1)
        with pytest.raises(ValidationError):
            generate_communication_graph(node_count=3, edge_count=100)

    def test_flow_log_aggregates_back_to_graph(self):
        config = CommunicationGraphConfig(node_count=12, edge_count=15, seed=4)
        graph = generate_communication_graph(config)
        flows = generate_flow_log(config, flows_per_edge=3)
        rebuilt = graph_from_flows(flows)
        # same totals per (source address, target address) pair
        def totals(g):
            result = {}
            for source, target, attrs in g.edges(data=True):
                key = (g.node_attributes(source)["address"], g.node_attributes(target)["address"])
                result[key] = attrs["bytes"]
            return result
        assert totals(rebuilt) == totals(graph)

    def test_flow_record_as_dict(self):
        flows = generate_flow_log(CommunicationGraphConfig(node_count=5, edge_count=5, seed=1),
                                  flows_per_edge=1)
        record = flows[0].as_dict()
        assert set(record) == {"source", "destination", "bytes", "packets",
                               "connections", "protocol"}

    @settings(max_examples=10, deadline=None)
    @given(st.integers(5, 40), st.integers(5, 60))
    def test_generator_size_property(self, nodes, edges):
        edges = min(edges, nodes * (nodes - 1))
        graph = generate_communication_graph(node_count=nodes, edge_count=edges, seed=2)
        assert graph.node_count == nodes
        assert graph.edge_count == edges


class TestTrafficApplication:
    def test_context_structure(self, traffic_app):
        context = traffic_app.context()
        assert isinstance(context, ApplicationContext)
        assert "bytes" in context.edge_schema
        rendered = context.render()
        assert "Network traffic analysis" in rendered

    def test_views(self, traffic_app):
        nx_graph = traffic_app.networkx_view()
        nodes_df, edges_df = traffic_app.frame_view()
        database = traffic_app.sql_view()
        assert nx_graph.number_of_nodes() == 40
        assert len(nodes_df) == 40 and len(edges_df) == 40
        assert database.execute("SELECT COUNT(*) FROM edges").scalar() == 40

    def test_sync_state_records_history(self):
        application = TrafficAnalysisApplication.with_size(10, 10)
        updated = application.graph.copy()
        updated.add_node("new", address="1.2.3.4", type="host")
        application.sync_state(updated, query="add a node", approved_by="operator")
        assert application.graph.node_count == 11
        assert application.history[0]["query"] == "add a node"


class TestMaltSchema:
    def test_kind_names(self):
        assert "EK_PACKET_SWITCH" in entity_kind_names()
        assert "RK_CONTAINS" in relationship_kind_names()

    def test_describe_schema_mentions_all_kinds(self):
        description = describe_schema()
        for kind in EntityKind:
            assert kind.value in description
        for kind in RelationshipKind:
            assert kind.value in description


class TestMaltGenerator:
    def test_paper_scale_counts(self):
        graph = paper_scale_topology()
        assert graph.node_count == 5493
        assert graph.edge_count == 6424

    def test_expected_counts_match_config(self):
        config = MaltTopologyConfig()
        assert config.expected_node_count == 5493
        assert config.expected_edge_count == 6424

    def test_small_topology_structure(self, malt_app):
        graph = malt_app.graph
        counts = type_counts(graph)
        assert counts["EK_DATACENTER"] == 1
        assert counts["EK_POD"] == 2
        assert counts["EK_PACKET_SWITCH"] == 1 * 2 * 2 * 2 * 4
        assert counts["EK_PORT"] == counts["EK_PACKET_SWITCH"] * 3

    def test_chassis_capacity_is_sum_of_switches(self, malt_app):
        graph = malt_app.graph
        for chassis in entities_of_type(graph, "EK_CHASSIS"):
            switches = containment_children(graph, chassis, "EK_PACKET_SWITCH")
            total = sum(graph.node_attributes(s)["capacity"] for s in switches)
            assert graph.node_attributes(chassis)["capacity"] == total

    def test_every_switch_has_one_controller(self, malt_app):
        graph = malt_app.graph
        for switch in entities_of_type(graph, "EK_PACKET_SWITCH"):
            controllers = [p for p in graph.predecessors(switch)
                           if graph.edge_attributes(p, switch).get("relationship")
                           == RelationshipKind.CONTROLS.value]
            assert len(controllers) == 1

    def test_containment_parent(self, malt_app):
        graph = malt_app.graph
        assert containment_parent(graph, "ju1.a1.m1.s2c1") == "ju1.a1.m1.c1"
        assert containment_parent(graph, "wan") is None

    def test_benchmark_switch_exists(self, malt_app):
        assert malt_app.graph.has_node("ju1.a1.m1.s2c1")

    def test_deterministic(self):
        config = MaltTopologyConfig(datacenters=1, pods_per_datacenter=1, racks_per_pod=2,
                                    chassis_per_rack=1, switches_per_chassis=2,
                                    ports_per_switch=2, control_points=2, port_links=3)
        assert generate_malt_topology(config) == generate_malt_topology(config)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            generate_malt_topology(MaltTopologyConfig(datacenters=0))


class TestMaltApplication:
    def test_context_mentions_schema(self, malt_app):
        rendered = malt_app.context().render()
        assert "EK_PACKET_SWITCH" in rendered
        assert "RK_CONTAINS" in rendered

    def test_views(self, malt_app):
        database = malt_app.sql_view()
        switches = database.execute(
            "SELECT COUNT(*) FROM nodes WHERE type = 'EK_PACKET_SWITCH'").scalar()
        assert switches == 32
