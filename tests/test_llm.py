"""Tests for the simulated-LLM substrate (tokenizer, pricing, calibration,
fault injection, providers)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.llm import (
    ApproximateTokenizer,
    DEFAULT_CALIBRATION,
    DEFAULT_PRICING,
    FaultInjector,
    FaultType,
    LlmRequest,
    TokenLimitExceeded,
    available_models,
    count_tokens,
    create_provider,
)
from repro.llm.calibration import CalibrationTable, COMPLEXITIES
from repro.llm.pricing import ModelPricing, PricingTable
from repro.utils.validation import ValidationError


class TestTokenizer:
    def test_counts_grow_with_text(self):
        tokenizer = ApproximateTokenizer()
        assert tokenizer.count("short") < tokenizer.count("a much longer piece of text " * 5)

    def test_long_words_split_into_subwords(self):
        assert count_tokens("internationalization") >= 4

    def test_punctuation_counted(self):
        assert count_tokens('{"a": 1}') >= 5

    def test_empty_string(self):
        assert count_tokens("") == 0

    @given(st.text(min_size=0, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_count_is_non_negative_and_bounded(self, text):
        count = count_tokens(text)
        assert 0 <= count <= max(1, len(text))


class TestPricing:
    def test_gpt4_cost(self):
        cost = DEFAULT_PRICING.cost("gpt-4", prompt_tokens=1000, completion_tokens=1000)
        assert cost == pytest.approx(0.09)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            DEFAULT_PRICING.for_model("unknown-model")

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValidationError):
            ModelPricing(0.01, 0.02).cost(-1, 0)

    def test_custom_table(self):
        table = PricingTable({"m": ModelPricing(0.001, 0.002)})
        assert table.models() == ["m"]
        assert table.cost("m", 2000, 1000) == pytest.approx(0.004)


class TestCalibration:
    def test_reliability_matches_paper_cells(self):
        calibration = DEFAULT_CALIBRATION
        assert calibration.reliability("gpt-4", "traffic_analysis", "networkx", "easy") == 1.0
        assert calibration.reliability("gpt-4", "traffic_analysis", "networkx", "hard") == 0.63
        assert calibration.reliability("bard", "malt", "pandas", "medium") == 0.33
        assert calibration.reliability("gpt-3", "traffic_analysis", "strawman", "easy") == 0.38

    def test_strawman_on_malt_is_zero(self):
        assert DEFAULT_CALIBRATION.reliability("gpt-4", "malt", "strawman", "easy") == 0.0

    def test_passing_count_rounding(self):
        calibration = DEFAULT_CALIBRATION
        assert calibration.passing_count("gpt-4", "traffic_analysis", "networkx", "hard", 8) == 5
        assert calibration.passing_count("gpt-4", "malt", "pandas", "hard", 3) == 1

    def test_passes_is_rank_threshold(self):
        calibration = DEFAULT_CALIBRATION
        assert calibration.passes("gpt-4", "traffic_analysis", "networkx", "hard", 4, 8)
        assert not calibration.passes("gpt-4", "traffic_analysis", "networkx", "hard", 5, 8)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValidationError):
            DEFAULT_CALIBRATION.reliability("gpt-5", "malt", "networkx", "easy")

    def test_fault_type_deterministic_and_valid(self):
        calibration = DEFAULT_CALIBRATION
        first = calibration.fault_type_for("traffic_analysis", "ta-h7", "gpt-4", "networkx")
        second = calibration.fault_type_for("traffic_analysis", "ta-h7", "gpt-4", "networkx")
        assert first == second
        assert first in {fault.value for fault in FaultType}

    def test_malt_never_draws_syntax_error(self):
        # the paper observed zero syntax errors among MALT NetworkX failures
        calibration = DEFAULT_CALIBRATION
        for index in range(30):
            fault = calibration.fault_type_for("malt", f"q{index}", "bard", "networkx")
            assert fault != "syntax_error"

    def test_recovery_attempt_within_bounds(self):
        calibration = DEFAULT_CALIBRATION
        attempt = calibration.recovery_attempt("malt-m2", "bard", "networkx")
        assert attempt is None or 2 <= attempt <= 5

    def test_custom_reliability_override(self):
        table = CalibrationTable(traffic={("gpt-4", "networkx"): (1.0, 1.0, 1.0)})
        for complexity in COMPLEXITIES:
            assert table.reliability("gpt-4", "traffic_analysis", "networkx", complexity) == 1.0


class TestFaultInjector:
    @pytest.mark.parametrize("fault", [fault.value for fault in FaultType])
    @pytest.mark.parametrize("backend", ["networkx", "pandas", "sql", "strawman"])
    def test_every_fault_renders_for_every_backend(self, fault, backend):
        code = FaultInjector().render(fault, backend, correct_code="result = 1\n")
        assert isinstance(code, str) and code

    def test_syntax_fault_does_not_parse(self):
        import ast

        code = FaultInjector().render("syntax_error", "networkx")
        with pytest.raises(SyntaxError):
            ast.parse(code)

    def test_wrong_logic_keeps_correct_prefix(self):
        code = FaultInjector().render("wrong_calculation_logic", "networkx",
                                      correct_code="result = 42\n")
        assert code.startswith("result = 42")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            FaultInjector().render("syntax_error", "cobol")

    def test_signatures_cover_all_faults(self):
        injector = FaultInjector()
        for fault in FaultType:
            signature = injector.expected_signature(fault.value)
            assert {"stage", "signal"} <= set(signature)


class TestProviders:
    def test_catalog_lists_four_models(self):
        assert set(available_models()) == {"gpt-4", "gpt-3", "text-davinci-003", "bard"}

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            create_provider("gpt-99")

    def test_complete_counts_tokens_and_cost(self):
        provider = create_provider("gpt-4")
        response = provider.complete(LlmRequest(
            prompt="Write code to count nodes",
            metadata={"query": "How many nodes are in the communication graph?",
                      "backend": "networkx"}))
        assert response.prompt_tokens > 0
        assert response.completion_tokens > 0
        assert response.cost_usd > 0
        assert response.total_tokens == response.prompt_tokens + response.completion_tokens
        assert "```" in response.text

    def test_token_limit_enforced(self):
        provider = create_provider("gpt-3")   # 2k window
        with pytest.raises(TokenLimitExceeded):
            provider.complete(LlmRequest(prompt="word " * 5000))

    def test_uncalibrated_request_produces_correct_code(self):
        provider = create_provider("gpt-4")
        response = provider.complete(LlmRequest(
            prompt="irrelevant",
            metadata={"query": "How many nodes are in the communication graph?",
                      "backend": "networkx"}))
        assert "number_of_nodes" in response.text
        assert response.metadata["intended_correct"] is True

    def test_calibrated_failure_produces_faulty_code(self):
        provider = create_provider("gpt-4")
        metadata = {
            "query": "Evenly redistribute the total outgoing bytes of the busiest node "
                     "across its outgoing edges.",
            "query_id": "ta-h8", "backend": "networkx",
            "application": "traffic_analysis", "complexity": "hard",
            "difficulty_rank": 7, "bucket_size": 8,
        }
        response = provider.complete(LlmRequest(prompt="irrelevant", metadata=metadata))
        assert response.metadata["intended_correct"] is False
        assert "fault_type" in response.metadata

    def test_deterministic_model_repeats_itself(self):
        provider = create_provider("gpt-4")
        request = LlmRequest(prompt="irrelevant",
                             metadata={"query": "How many nodes are in the communication graph?",
                                       "backend": "networkx"})
        assert provider.complete(request).text == provider.complete(request).text

    def test_request_log_grows(self):
        provider = create_provider("gpt-4")
        provider.complete(LlmRequest(prompt="a", metadata={"query": "q", "backend": "networkx"}))
        assert len(provider.request_log) == 1
