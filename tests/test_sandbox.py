"""Tests for the execution sandbox (policy checks and restricted execution)."""

import pytest

from repro.sandbox import (
    ExecutionSandbox,
    PolicyViolation,
    SandboxPolicy,
    validate_source,
)


class TestPolicy:
    def test_allows_whitelisted_imports(self):
        validate_source("import networkx as nx\nimport math\n")

    def test_rejects_os_import(self):
        with pytest.raises(PolicyViolation):
            validate_source("import os")

    def test_rejects_from_import_of_forbidden_module(self):
        with pytest.raises(PolicyViolation):
            validate_source("from subprocess import run")

    def test_rejects_forbidden_calls(self):
        for snippet in ("open('/etc/passwd')", "eval('1+1')", "exec('x=1')",
                        "__import__('os')"):
            with pytest.raises(PolicyViolation):
                validate_source(snippet)

    def test_rejects_dunder_escape_attempts(self):
        with pytest.raises(PolicyViolation):
            validate_source("().__class__.__bases__")
        with pytest.raises(PolicyViolation):
            validate_source("x = __builtins__")

    def test_rejects_global_statement(self):
        with pytest.raises(PolicyViolation):
            validate_source("def f():\n    global x\n    x = 1\n")

    def test_rejects_overlong_source(self):
        policy = SandboxPolicy(max_source_lines=3)
        with pytest.raises(PolicyViolation):
            validate_source("x = 1\n" * 10, policy)

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            validate_source("def broken(:")

    def test_violation_messages_carry_line_and_column(self):
        with pytest.raises(PolicyViolation, match=r"line 2, col 0: import of "
                                                  r"module 'os'"):
            validate_source("x = 1\nimport os\n")

    def test_multiple_violations_each_located(self):
        source = "import os\nresult = open('x')\n"
        with pytest.raises(PolicyViolation) as excinfo:
            validate_source(source)
        message = str(excinfo.value)
        assert "line 1, col 0" in message
        assert "line 2, col 9" in message

    def test_policy_visitor_collects_structured_findings(self):
        import ast

        from repro.sandbox import PolicyVisitor, SandboxPolicy

        visitor = PolicyVisitor(SandboxPolicy())
        visitor.visit(ast.parse("import os\nx = eval('1')\n"))
        assert [(v.line, v.col) for v in visitor.violations] == [(1, 0), (2, 4)]
        assert "eval" in visitor.violations[1].message

    def test_with_extra_imports(self):
        policy = SandboxPolicy().with_extra_imports("scipy")
        validate_source("import scipy", policy)
        with pytest.raises(PolicyViolation):
            validate_source("import scipy")


class TestExecutionSandbox:
    def test_captures_result_variable(self):
        outcome = ExecutionSandbox().execute("result = 2 + 3", {})
        assert outcome.success
        assert outcome.result == 5

    def test_namespace_objects_are_usable(self):
        outcome = ExecutionSandbox().execute("result = sum(values)", {"values": [1, 2, 3]})
        assert outcome.result == 6

    def test_namespace_mutations_visible(self):
        outcome = ExecutionSandbox().execute("data['x'] = 1", {"data": {}})
        assert outcome.namespace["data"] == {"x": 1}

    def test_stdout_captured(self):
        outcome = ExecutionSandbox().execute("print('hello')\nresult = 1", {})
        assert "hello" in outcome.stdout

    def test_syntax_error_reported(self):
        outcome = ExecutionSandbox().execute("for x in (:", {})
        assert outcome.failed
        assert outcome.error_type == "SyntaxError"
        assert "line" in outcome.error_message

    def test_runtime_error_reported(self):
        outcome = ExecutionSandbox().execute("result = {}['missing']", {})
        assert outcome.failed
        assert outcome.error_type == "KeyError"

    def test_policy_violation_reported(self):
        outcome = ExecutionSandbox().execute("import os\nresult = 1", {})
        assert outcome.failed
        assert outcome.error_type == "PolicyViolation"

    def test_import_of_allowed_module_works(self):
        outcome = ExecutionSandbox().execute(
            "import math\nresult = math.sqrt(16)", {})
        assert outcome.result == 4

    def test_runtime_import_block_without_static_validation(self):
        # even with static validation disabled, the restricted __import__ blocks it
        outcome = ExecutionSandbox().execute("import os\nresult = 1", {}, validate=False)
        assert outcome.failed
        assert outcome.error_type == "PolicyViolation"

    def test_timeout_enforced(self):
        policy = SandboxPolicy(max_seconds=0.2)
        outcome = ExecutionSandbox(policy).execute("while True:\n    pass\n", {})
        assert outcome.failed
        assert outcome.error_type == "SandboxTimeout"

    def test_networkx_code_runs(self):
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_edge("a", "b", bytes=10)
        outcome = ExecutionSandbox().execute(
            "result = sum(d['bytes'] for _, _, d in G.edges(data=True))", {"G": graph})
        assert outcome.result == 10

    def test_describe_error(self):
        outcome = ExecutionSandbox().execute("result = 1/0", {})
        assert "ZeroDivisionError" in outcome.describe_error()
        ok = ExecutionSandbox().execute("result = 1", {})
        assert ok.describe_error() == ""

    def test_custom_result_variable(self):
        sandbox = ExecutionSandbox(result_variable="answer")
        outcome = sandbox.execute("answer = 7", {})
        assert outcome.result == 7
