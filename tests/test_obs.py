"""Tests for ``repro.obs``: the span tracer, the metrics registry, the
streaming histograms, the exporters, and — the load-bearing contract — that
observability is provably inert: tracing on or off, serial or parallel,
results and cache keys never change."""

import json
import math
import random
import sys
from pathlib import Path

import pytest

from repro.benchmark import BenchmarkConfig, BenchmarkRunner
from repro.exec import ExecutorPolicy, ParallelExecutor, Task
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Tracer,
    collect_observations,
    default_registry,
    disable_tracing,
    enable_tracing,
    get_tracer,
    ingest_observations,
    metrics_document,
    set_default_registry,
    set_tracer,
    span,
    spans_to_trace_events,
    trace_document,
    tracing_enabled,
)
from repro.obs.metrics import (
    BUCKETS_PER_DECADE,
    HISTOGRAM_FLOOR,
    bucket_index,
    bucket_upper_bound,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
from check_trace_schema import validate_metrics, validate_trace  # noqa: E402

#: one log-spaced bucket spans a factor of 10**(1/BUCKETS_PER_DECADE), so a
#: quantile estimate is off by at most that factor from the true sample
BUCKET_FACTOR = 10 ** (1 / BUCKETS_PER_DECADE)


@pytest.fixture(autouse=True)
def fresh_observability():
    """Isolate every test behind fresh tracer/registry globals."""
    previous_tracer = set_tracer(Tracer())
    previous_registry = set_default_registry(MetricsRegistry())
    try:
        yield
    finally:
        set_tracer(previous_tracer)
        set_default_registry(previous_registry)


class TestHistogram:
    def test_bucket_bounds_contain_their_values(self):
        for value in (1e-6, 3.7e-4, 0.01, 0.5, 1.0, 9.99, 1234.5):
            index = bucket_index(value)
            assert value <= bucket_upper_bound(index) * (1 + 1e-12)
            assert value > bucket_upper_bound(index - 1) / BUCKET_FACTOR

    def test_quantiles_track_sorted_samples(self):
        rng = random.Random(7)
        samples = [rng.lognormvariate(-5.0, 1.5) for _ in range(5000)]
        histogram = Histogram("latency")
        for sample in samples:
            histogram.observe(sample)
        ordered = sorted(samples)
        for fraction in (0.5, 0.95, 0.99):
            estimate = histogram.quantile(fraction)
            exact = ordered[math.ceil(fraction * len(ordered)) - 1]
            # the estimate is the crossing bucket's upper bound: never more
            # than one bucket factor above the true sample, never below it
            assert exact <= estimate <= exact * BUCKET_FACTOR * (1 + 1e-9)

    def test_quantile_capped_at_observed_max(self):
        histogram = Histogram("one")
        histogram.observe(0.25)
        assert histogram.quantile(0.99) == 0.25

    def test_empty_histogram_has_no_quantiles(self):
        histogram = Histogram("empty")
        assert histogram.quantile(0.5) is None
        assert histogram.mean is None

    def test_underflow_observations_are_counted(self):
        histogram = Histogram("tiny")
        histogram.observe(0.0)
        histogram.observe(HISTOGRAM_FLOOR / 10)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 2
        assert histogram.quantile(0.5) == HISTOGRAM_FLOOR

    def test_merge_equals_observing_everything_in_one(self):
        rng = random.Random(11)
        left, right, combined = Histogram("l"), Histogram("r"), Histogram("c")
        for _ in range(500):
            value = rng.expovariate(100.0)
            (left if rng.random() < 0.5 else right).observe(value)
            combined.observe(value)
        left.merge(right.snapshot())
        merged = left.snapshot()
        expected = combined.snapshot()
        assert merged["count"] == expected["count"]
        assert merged["buckets"] == expected["buckets"]
        assert merged["min"] == expected["min"]
        assert merged["max"] == expected["max"]
        assert merged["sum"] == pytest.approx(expected["sum"])
        for key in ("p50", "p95", "p99"):
            assert merged[key] == expected[key]


class TestHistogramMergeAlgebra:
    """Property tests: snapshot/merge is a commutative, associative fold.

    Worker deltas arrive in a nondeterministic order (pool scheduling), so
    the merged parent histogram is only deterministic if merge order cannot
    matter.  Each property is checked over several seeded random sample
    sets rather than one hand-picked example."""

    @staticmethod
    def _filled(name, seed, count=400):
        rng = random.Random(seed)
        histogram = Histogram(name)
        for _ in range(count):
            # mix scales and include exact-boundary and underflow values
            roll = rng.random()
            if roll < 0.05:
                histogram.observe(0.0)
            elif roll < 0.15:
                histogram.observe(bucket_upper_bound(rng.randrange(-20, 60)))
            else:
                histogram.observe(rng.lognormvariate(-4.0, 2.0))
        return histogram

    @staticmethod
    def _comparable(histogram):
        snapshot = histogram.snapshot()
        return {key: snapshot[key] for key in
                ("count", "sum", "min", "max", "buckets", "p50", "p95", "p99")}

    def _assert_equivalent(self, left, right):
        ours, theirs = self._comparable(left), self._comparable(right)
        assert ours["count"] == theirs["count"]
        assert ours["buckets"] == theirs["buckets"]
        assert ours["min"] == theirs["min"]
        assert ours["max"] == theirs["max"]
        assert ours["sum"] == pytest.approx(theirs["sum"])
        for key in ("p50", "p95", "p99"):
            assert ours[key] == theirs[key]

    def test_merge_is_commutative(self):
        for seed in range(5):
            ab = self._filled("a", seed)
            ab.merge(self._filled("b", seed + 100).snapshot())
            ba = self._filled("b", seed + 100)
            ba.merge(self._filled("a", seed).snapshot())
            self._assert_equivalent(ab, ba)

    def test_merge_is_associative(self):
        for seed in range(5):
            parts = [self._filled(name, seed * 10 + offset)
                     for offset, name in enumerate("abc")]
            # (a + b) + c
            left = self._filled("a", seed * 10)
            left.merge(parts[1].snapshot())
            left.merge(parts[2].snapshot())
            # a + (b + c)
            inner = self._filled("b", seed * 10 + 1)
            inner.merge(parts[2].snapshot())
            right = self._filled("a", seed * 10)
            right.merge(inner.snapshot())
            self._assert_equivalent(left, right)

    def test_merged_quantiles_stay_within_the_documented_bound(self):
        # the ~12% bound (one bucket factor) must survive sharding: shard
        # samples across several histograms, merge, and compare against the
        # exact sorted-sample quantiles
        for seed in range(3):
            rng = random.Random(seed)
            samples = [rng.lognormvariate(-5.0, 1.5) for _ in range(3000)]
            shards = [Histogram(f"s{i}") for i in range(4)]
            for position, sample in enumerate(samples):
                shards[position % 4].observe(sample)
            merged = shards[0]
            for shard in shards[1:]:
                merged.merge(shard.snapshot())
            ordered = sorted(samples)
            for fraction in (0.5, 0.95, 0.99):
                estimate = merged.quantile(fraction)
                exact = ordered[math.ceil(fraction * len(ordered)) - 1]
                assert exact <= estimate <= exact * BUCKET_FACTOR * (1 + 1e-9)

    def test_merging_an_empty_snapshot_is_identity(self):
        histogram = self._filled("h", 42)
        before = self._comparable(histogram)
        histogram.merge(Histogram("empty").snapshot())
        assert self._comparable(histogram) == before


class TestMetricsRegistry:
    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_name_collisions_across_types_fail_loudly(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_roundtrips_through_merge(self):
        source = MetricsRegistry()
        source.counter("cache.hits").inc(5)
        source.gauge("pool.size").set(4)
        source.histogram("latency").observe(0.01)
        target = MetricsRegistry()
        target.counter("cache.hits").inc(2)
        target.merge_snapshot(source.snapshot())
        assert target.counter("cache.hits").value == 7
        assert target.gauge("pool.size").value == 4
        assert target.histogram("latency").snapshot()["count"] == 1


class TestSpans:
    def test_nesting_records_parent_ids(self):
        enable_tracing()
        with span("outer"):
            with span("inner"):
                pass
        spans = {item.name: item for item in get_tracer().spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        # the inner span finished first, so it was recorded first
        assert [item.name for item in get_tracer().spans] == ["inner", "outer"]

    def test_exceptions_are_stamped_and_reraised(self):
        enable_tracing()
        with pytest.raises(KeyError):
            with span("doomed"):
                raise KeyError("boom")
        (recorded,) = get_tracer().spans
        assert recorded.attrs["error"] == "KeyError"

    def test_attrs_mutated_inside_the_body_are_captured(self):
        enable_tracing()
        attrs = {"cells": 0}
        with span("sweep", attrs=attrs):
            attrs["cells"] = 12
        (recorded,) = get_tracer().spans
        assert recorded.attrs["cells"] == 12

    def test_disabled_tracing_buffers_nothing_but_still_measures(self):
        assert not tracing_enabled()
        with span("quiet"):
            pass
        assert get_tracer().spans == []
        snapshot = default_registry().histogram("span.quiet.seconds").snapshot()
        assert snapshot["count"] == 1


class TestCaptureAndIngest:
    def test_collect_observations_isolates_and_roundtrips(self):
        enable_tracing()
        default_registry().counter("outer.counter").inc()
        with collect_observations(trace=True) as capture:
            with span("worker.step"):
                default_registry().counter("inner.counter").inc()
        # the capture saw only the body's telemetry...
        wire = capture.to_wire()
        assert [item["name"] for item in wire["spans"]["spans"]] == ["worker.step"]
        assert wire["spans"]["process"].startswith("pid-")
        assert wire["metrics"]["counters"] == {"inner.counter": 1}
        # ...and the surrounding globals were untouched by the body
        assert get_tracer().spans == []
        assert default_registry().counter("outer.counter").value == 1
        ingest_observations(wire)
        assert default_registry().counter("inner.counter").value == 1
        (merged,) = get_tracer().spans
        assert merged.name == "worker.step"
        assert merged.attrs["process"].startswith("pid-")

    def test_drain_empties_the_buffer(self):
        enable_tracing()
        with span("once"):
            pass
        batch = get_tracer().drain()
        assert len(batch["spans"]) == 1
        assert get_tracer().spans == []

    def test_ingest_remaps_ids_preserving_links(self):
        tracer = Tracer()
        tracer.ingest({"process": "pid-999", "spans": [
            {"name": "child", "span_id": 1, "parent_id": 2,
             "start_s": 0.0, "duration_s": 0.1, "start_wall": 100.0},
            {"name": "root", "span_id": 2, "parent_id": None,
             "start_s": 0.0, "duration_s": 0.2, "start_wall": 100.0},
        ]})
        spans = {item.name: item for item in tracer.spans}
        assert spans["child"].parent_id == spans["root"].span_id
        assert spans["root"].attrs["process"] == "pid-999"


class TestExporters:
    def test_trace_document_passes_the_ci_schema(self):
        enable_tracing()
        with span("alpha"):
            with span("beta"):
                pass
        ingest_observations({"spans": {"process": "pid-42", "spans": [
            {"name": "gamma", "span_id": 1, "parent_id": None,
             "start_s": 0.0, "duration_s": 0.1, "start_wall": 50.0},
        ]}, "metrics": {}})
        document = trace_document()
        assert validate_trace(document, expect=["alpha", "gamma"]) == []
        # worker spans land in their own named process lane
        events = document["traceEvents"]
        lanes = {event["args"]["name"]: event["pid"] for event in events
                 if event.get("ph") == "M"}
        assert set(lanes) == {"main", "pid-42"}

    def test_trace_is_rebased_to_the_earliest_event(self):
        events = spans_to_trace_events(get_tracer().spans)
        assert events == []
        enable_tracing()
        with span("first"):
            pass
        events = [event for event in spans_to_trace_events(get_tracer().spans)
                  if event["ph"] == "X"]
        assert min(event["ts"] for event in events) == 0

    def test_metrics_document_passes_the_ci_schema(self):
        default_registry().counter("cache.hits").inc(3)
        default_registry().histogram("span.x.seconds").observe(0.02)
        document = metrics_document()
        assert validate_metrics(document) == []
        assert document["format"] == "repro.obs.metrics/1"


class TestInertness:
    """Observability must never perturb results, digests, or cache keys."""

    def _task(self):
        return Task(key="t/1", fn="repro.exec.demo:square", payload={"x": 2})

    def test_task_digest_ignores_tracing_state(self):
        digest_off = self._task().digest()
        enable_tracing()
        with span("around-digest"):
            digest_on = self._task().digest()
        disable_tracing()
        assert digest_on == digest_off

    def test_wire_obs_marker_rides_outside_the_payload(self):
        task = self._task()
        wire = ParallelExecutor._to_wire(task)
        assert wire["obs"] == {"trace": False, "sample": False}
        enable_tracing()
        assert ParallelExecutor._to_wire(task)["obs"] == {
            "trace": True, "sample": False}
        # the marker never leaks into the digested fields
        assert wire["payload"] == task.payload
        assert task.digest() == self._task().digest()

    def test_traced_parallel_suite_is_byte_identical_to_serial(self):
        enable_tracing()
        serial = BenchmarkRunner(BenchmarkConfig())
        parallel = BenchmarkRunner(BenchmarkConfig(),
                                   policy=ExecutorPolicy.processes(jobs=2))
        report_serial = serial.run_temporal_suite(
            scenarios=["fat-tree-failover"], models=["gpt-4"])
        report_parallel = parallel.run_temporal_suite(
            scenarios=["fat-tree-failover"], models=["gpt-4"])
        assert json.dumps(report_serial.logger.to_records(), sort_keys=True) \
            == json.dumps(report_parallel.logger.to_records(), sort_keys=True)
        assert report_serial.render_summary() == report_parallel.render_summary()
        # the parallel run's worker spans were merged into the parent tracer
        names = {item.name for item in get_tracer().spans}
        assert "exec.task" in names
        processes = {item.attrs.get("process") for item in get_tracer().spans
                     if item.name == "exec.task"}
        assert any(label and label.startswith("pid-") for label in processes)
