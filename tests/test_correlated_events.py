"""Tests for the correlated-dynamics events: SRLGs, maintenance windows,
and gravity traffic matrices.

Covers the three new event kinds end to end — atomic SRLG failure with
partial-repair semantics, declarative window expansion with overlap
rejection, gravity re-shaping with the regional-hotspot variant — plus the
graph-aware validation pass (missing SRLG edges, zero-mass gravity), the
new built-in scenarios, the new temporal intents, and the CLI rendering.
"""

import pytest

from repro.benchmark import (
    BenchmarkConfig,
    BenchmarkRunner,
    temporal_queries_for,
    temporal_query_by_id,
)
from repro.cli import main
from repro.exec import ExecutorPolicy
from repro.exec.workers import clear_worker_contexts
from repro.graph import PropertyGraph
from repro.scenarios import (
    EngineState,
    GravityTrafficEvent,
    LinkUpEvent,
    MaintenanceWindowEvent,
    ScenarioSpec,
    SrlgFailureEvent,
    correlated_suite,
    event_from_dict,
    expand_events,
    get_scenario,
    graph_srlgs,
    replay_scenario,
)
from repro.synthesis.intents import Intent
from repro.synthesis.reference import evaluate_temporal_reference
from repro.utils.validation import ValidationError

CORRELATED_SCENARIOS = ("wan-conduit-cut", "fattree-maintenance",
                        "wan-gravity-hotspot")


@pytest.fixture(autouse=True)
def _isolate_worker_contexts():
    clear_worker_contexts()
    yield
    clear_worker_contexts()


def _bundle_graph() -> PropertyGraph:
    """Two nodes-pairs bundled into one conduit plus one stand-alone link."""
    graph = PropertyGraph(name="bundle", directed=False)
    for node in "abcd":
        graph.add_node(node, role="switch", region="west", mass=2.0)
    graph.add_node("e", role="switch", region="east", mass=3.0)
    graph.add_edge("a", "b", capacity_gbps=10, latency_ms=1.0, bytes=100)
    graph.add_edge("c", "d", capacity_gbps=40, latency_ms=1.0, bytes=300)
    graph.add_edge("a", "e", capacity_gbps=10, latency_ms=2.0, bytes=600)
    graph.graph_attributes["srlgs"] = {"conduit-1": [["a", "b"], ["c", "d"]]}
    return graph


# ---------------------------------------------------------------------------
# SRLG failure
# ---------------------------------------------------------------------------
class TestSrlgFailure:
    def test_fails_the_whole_group_atomically(self):
        graph, state = _bundle_graph(), EngineState()
        notes = SrlgFailureEvent(at=1.0, group="conduit-1").apply(graph, state)
        assert "2 of 2 links cut" in notes[0]
        assert not graph.has_edge("a", "b") and not graph.has_edge("c", "d")
        assert graph.has_edge("a", "e")  # non-members untouched

    def test_partial_repair_restores_original_attributes(self):
        graph, state = _bundle_graph(), EngineState()
        SrlgFailureEvent(at=1.0, group="conduit-1").apply(graph, state)
        LinkUpEvent(at=2.0, source="c", target="d").apply(graph, state)
        assert graph.edge_attributes("c", "d")["capacity_gbps"] == 40
        assert graph.edge_attributes("c", "d")["bytes"] == 300
        assert not graph.has_edge("a", "b")  # the other span stays down

    def test_reversed_repair_restores_original_attributes(self):
        # on an undirected graph the SRLG's member orientation is invisible
        # to the spec author: a link_up written backwards must still find the
        # remembered attributes instead of silently installing defaults
        graph, state = _bundle_graph(), EngineState()
        SrlgFailureEvent(at=1.0, group="conduit-1").apply(graph, state)
        LinkUpEvent(at=2.0, source="d", target="c").apply(graph, state)
        assert graph.edge_attributes("c", "d")["capacity_gbps"] == 40
        assert graph.edge_attributes("c", "d")["bytes"] == 300

    def test_unknown_group_rejected_against_graph(self):
        event = SrlgFailureEvent(at=1.0, group="conduit-nope")
        with pytest.raises(ValidationError, match="unknown group"):
            event.validate_against(_bundle_graph())

    def test_group_with_missing_edge_rejected(self):
        graph = _bundle_graph()
        graph.graph_attributes["srlgs"]["conduit-1"].append(["a", "zz"])
        with pytest.raises(ValidationError, match="missing from the topology"):
            SrlgFailureEvent(at=1.0, group="conduit-1").validate_against(graph)

    def test_empty_group_name_rejected(self):
        with pytest.raises(ValidationError, match="non-empty 'group'"):
            SrlgFailureEvent(at=1.0).validate()

    def test_broken_spec_produces_no_timeline(self):
        # the validation pass runs before any snapshot: a broken SRLG
        # reference raises instead of replaying a half-mutated timeline
        spec = get_scenario("wan-conduit-cut")
        spec.events[0].group = "conduit-not-declared"
        with pytest.raises(ValidationError, match="unknown group"):
            replay_scenario(spec)


# ---------------------------------------------------------------------------
# maintenance windows
# ---------------------------------------------------------------------------
class TestMaintenanceWindow:
    def test_node_window_expands_to_leave_join_pair(self):
        window = MaintenanceWindowEvent(at=1.0, end=5.0, node="a")
        expanded = window.expand()
        assert [event.kind for event in expanded] == ["node_leave", "node_join"]
        assert [event.at for event in expanded] == [1.0, 5.0]

    def test_link_window_expands_to_down_up_pairs(self):
        window = MaintenanceWindowEvent(at=2.0, end=6.0, links=[
            {"source": "a", "target": "b"}, {"source": "c", "target": "d"}])
        expanded = window.expand()
        assert sorted(event.kind for event in expanded) == [
            "link_down", "link_down", "link_up", "link_up"]
        downs = [event for event in expanded if event.kind == "link_down"]
        ups = [event for event in expanded if event.kind == "link_up"]
        assert {event.at for event in downs} == {2.0}
        assert {event.at for event in ups} == {6.0}

    def test_drains_can_never_dangle(self):
        # every drain produced by expansion has a restore at the window end
        spec = get_scenario("fattree-maintenance")
        timeline = replay_scenario(spec)
        initial, final = timeline.initial_graph, timeline.final_graph
        assert final.node_count == initial.node_count
        assert final.edge_count == initial.edge_count

    def test_window_must_end_after_start(self):
        with pytest.raises(ValidationError, match="end after it starts"):
            MaintenanceWindowEvent(at=5.0, end=5.0, node="a").validate()
        with pytest.raises(ValidationError, match="requires an 'end'"):
            MaintenanceWindowEvent(at=5.0, node="a").validate()

    def test_window_needs_exactly_one_target_kind(self):
        with pytest.raises(ValidationError, match="exactly one"):
            MaintenanceWindowEvent(at=1.0, end=2.0).validate()
        with pytest.raises(ValidationError, match="exactly one"):
            MaintenanceWindowEvent(at=1.0, end=2.0, node="a",
                                   links=[{"source": "a", "target": "b"}]).validate()

    def test_overlapping_windows_on_same_target_rejected(self):
        events = [
            MaintenanceWindowEvent(at=1.0, end=5.0, node="a"),
            MaintenanceWindowEvent(at=4.0, end=8.0, node="a"),
        ]
        with pytest.raises(ValidationError, match="overlapping maintenance windows"):
            expand_events(events)

    def test_overlapping_link_windows_rejected_either_orientation(self):
        events = [
            MaintenanceWindowEvent(at=1.0, end=5.0,
                                   links=[{"source": "a", "target": "b"}]),
            MaintenanceWindowEvent(at=2.0, end=3.0,
                                   links=[{"source": "b", "target": "a"}]),
        ]
        with pytest.raises(ValidationError, match="overlapping maintenance windows"):
            expand_events(events)

    def test_window_and_manual_churn_on_same_target_rejected(self):
        # a window's guaranteed restore must not resurrect an entity that an
        # independent node_leave declared permanently churned out
        from repro.scenarios import NodeLeaveEvent

        events = [
            NodeLeaveEvent(at=2.0, node="pod1-agg1"),
            MaintenanceWindowEvent(at=3.0, end=6.0, node="pod1-agg1"),
        ]
        with pytest.raises(ValidationError, match="cannot be driven by both"):
            expand_events(events)

    def test_window_and_manual_link_events_on_same_target_rejected(self):
        from repro.scenarios import LinkDownEvent

        events = [
            MaintenanceWindowEvent(at=1.0, end=5.0,
                                   links=[{"source": "a", "target": "b"}]),
            LinkDownEvent(at=7.0, source="b", target="a"),
        ]
        with pytest.raises(ValidationError, match="cannot be driven by both"):
            expand_events(events)

    def test_window_and_srlg_failure_on_same_link_rejected(self):
        # a window's restore must not splice a span that an SRLG failure
        # declared cut with no repair scheduled
        spec = get_scenario("wan-conduit-cut")
        spec.events = [
            SrlgFailureEvent(at=2.0, group="conduit-se-sw"),
            MaintenanceWindowEvent(at=1.0, end=5.0, links=[
                {"source": "pop-5", "target": "pop-6"}]),
        ]
        with pytest.raises(ValidationError, match="cannot be driven by both"):
            replay_scenario(spec)

    def test_back_to_back_windows_allowed(self):
        events = [
            MaintenanceWindowEvent(at=1.0, end=5.0, node="a"),
            MaintenanceWindowEvent(at=5.0, end=8.0, node="a"),
        ]
        assert len(expand_events(events)) == 4

    def test_overlapping_windows_on_distinct_targets_allowed(self):
        # the built-in scenario drains a node and a link bundle concurrently
        timeline = replay_scenario(get_scenario("fattree-maintenance"))
        assert len(timeline.snapshots) == 6

    def test_direct_apply_refused(self):
        window = MaintenanceWindowEvent(at=1.0, end=2.0, node="a")
        with pytest.raises(RuntimeError, match="declarative"):
            window.apply(_bundle_graph(), EngineState())

    def test_window_on_missing_node_rejected_before_replay(self):
        # a typo'd drain target must fail the validation pass — not no-op at
        # the drain and then resurrect a phantom entity at the restore
        spec = get_scenario("fattree-maintenance")
        spec.events[0].node = "pod1-agg9"
        with pytest.raises(ValidationError, match="pod1-agg9"):
            replay_scenario(spec)

    def test_window_on_missing_link_rejected_before_replay(self):
        spec = get_scenario("fattree-maintenance")
        spec.events[1].links[0]["target"] = "core-99"
        with pytest.raises(ValidationError, match="missing from the"):
            replay_scenario(spec)


# ---------------------------------------------------------------------------
# gravity traffic
# ---------------------------------------------------------------------------
class TestGravityTraffic:
    def test_reshapes_by_mass_product_and_scales_total(self):
        graph, state = _bundle_graph(), EngineState()
        GravityTrafficEvent(at=1.0, factor=2.0, keys=("bytes",)).apply(graph, state)
        # weights: a-b = 4, c-d = 4, a-e = 6; prior total 1000, factor 2
        assert graph.edge_attributes("a", "b")["bytes"] == round(2000 * 4 / 14)
        assert graph.edge_attributes("c", "d")["bytes"] == round(2000 * 4 / 14)
        assert graph.edge_attributes("a", "e")["bytes"] == round(2000 * 6 / 14)

    def test_seeds_missing_counters_from_capacity(self):
        graph, state = _bundle_graph(), EngineState()
        for source, target, attrs in graph.edges(data=True):
            del attrs["bytes"]
        GravityTrafficEvent(at=1.0, factor=1.0, keys=("bytes",)).apply(graph, state)
        total = sum(attrs["bytes"] for _, _, attrs in graph.edges(data=True))
        # seeded baseline: 1M bytes per Gbps of capacity (10 + 40 + 10 Gbps)
        assert total == pytest.approx(60_000_000, abs=3)

    def test_regional_hotspot_leaves_other_regions_untouched(self):
        graph, state = _bundle_graph(), EngineState()
        before_cross = graph.edge_attributes("a", "e")["bytes"]
        GravityTrafficEvent(at=1.0, factor=3.0, region="west",
                            keys=("bytes",)).apply(graph, state)
        # only a-b and c-d are fully inside "west"; a-e crosses regions
        assert graph.edge_attributes("a", "e")["bytes"] == before_cross
        west_total = (graph.edge_attributes("a", "b")["bytes"]
                      + graph.edge_attributes("c", "d")["bytes"])
        assert west_total == pytest.approx(3 * 400, abs=2)

    def test_zero_mass_graph_rejected(self):
        graph = _bundle_graph()
        for node in graph.nodes():
            graph.node_attributes(node)["mass"] = 0
        event = GravityTrafficEvent(at=1.0)
        with pytest.raises(ValidationError, match="zero total mass"):
            event.validate_against(graph)

    def test_unknown_region_rejected(self):
        event = GravityTrafficEvent(at=1.0, region="atlantis")
        with pytest.raises(ValidationError, match="atlantis"):
            event.validate_against(_bundle_graph())

    def test_zero_mass_spec_produces_no_timeline(self):
        # fat-tree nodes carry no mass: a gravity event on that family must
        # fail the validation pass, not replay into a corrupted timeline
        spec = ScenarioSpec(name="bad-gravity", family="fat-tree",
                            events=[GravityTrafficEvent(at=1.0)])
        with pytest.raises(ValidationError, match="zero total mass"):
            replay_scenario(spec)

    def test_deterministic_across_replays(self):
        spec = get_scenario("wan-gravity-hotspot")
        assert replay_scenario(spec).digests() == replay_scenario(spec).digests()


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------
class TestSerialization:
    @pytest.mark.parametrize("event", [
        SrlgFailureEvent(at=1.0, group="conduit-9"),
        MaintenanceWindowEvent(at=1.0, end=4.0, node="pop-1"),
        MaintenanceWindowEvent(at=2.0, end=3.0,
                               links=[{"source": "a", "target": "b"}]),
        GravityTrafficEvent(at=5.0, factor=2.5, region="nw", keys=("bytes",)),
        GravityTrafficEvent(at=6.0, mass_attribute="population",
                            region_attribute="metro"),
    ])
    def test_round_trip(self, event):
        rebuilt = event_from_dict(event.to_dict())
        assert type(rebuilt) is type(event)
        assert rebuilt.to_dict() == event.to_dict()

    def test_specs_round_trip_through_json(self):
        for name in CORRELATED_SCENARIOS:
            spec = get_scenario(name)
            rebuilt = ScenarioSpec.from_json(spec.to_json())
            assert rebuilt.to_dict() == spec.to_dict()
            assert replay_scenario(rebuilt).digests() == replay_scenario(spec).digests()

    def test_windows_stay_declarative_in_json(self):
        # the spec JSON keeps the single window event; expansion is replay-time
        spec = get_scenario("fattree-maintenance")
        kinds = [event["kind"] for event in spec.to_dict()["events"]]
        assert kinds.count("maintenance_window") == 2
        assert "link_down" not in kinds and "node_leave" not in kinds


# ---------------------------------------------------------------------------
# built-in scenarios, suites, SRLG declarations
# ---------------------------------------------------------------------------
class TestCorrelatedScenarios:
    def test_builders_declare_srlgs(self):
        from repro.scenarios import build_topology

        fat_tree = graph_srlgs(build_topology("fat-tree", seed=7))
        assert any(name.startswith("chassis-") for name in fat_tree)
        assert any(name.startswith("conduit-pod") for name in fat_tree)
        wan = graph_srlgs(build_topology("wan-backbone", seed=13))
        assert wan and all(name.startswith("conduit-") for name in wan)
        # every declared member is a real link of the built topology
        graph = build_topology("wan-backbone", seed=13)
        for members in wan.values():
            for source, target in members:
                assert graph.has_edge(source, target)

    def test_wan_nodes_carry_region_and_mass(self):
        from repro.scenarios import build_topology

        graph = build_topology("wan-backbone", seed=31)
        for _, attrs in graph.nodes(data=True):
            assert attrs["region"] in ("ne", "nw", "se", "sw")
            assert attrs["mass"] > 0

    def test_correlated_suite_replays(self):
        suite = correlated_suite()
        assert [spec.name for spec in suite.scenarios] == list(CORRELATED_SCENARIOS)
        timelines = suite.replay_all()
        for name, timeline in timelines.items():
            assert len(set(timeline.digests())) > 1, name

    def test_conduit_cut_is_atomic_and_partially_repaired(self):
        timeline = replay_scenario(get_scenario("wan-conduit-cut"))
        assert timeline.snapshots[1].graph.edge_count == timeline.initial_graph.edge_count - 4
        assert timeline.snapshots[2].graph.edge_count == timeline.initial_graph.edge_count - 3
        assert timeline.final_graph.edge_count == timeline.initial_graph.edge_count


# ---------------------------------------------------------------------------
# temporal intents and goldens
# ---------------------------------------------------------------------------
class TestCorrelatedTemporalIntents:
    def test_failed_srlgs_at(self):
        timeline = replay_scenario(get_scenario("wan-conduit-cut"))
        outcome = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-m5").intent)
        assert outcome.value == ["conduit-se-sw"]
        # after the first splice the group is no longer *fully* failed
        after_splice = evaluate_temporal_reference(
            timeline, Intent.create("failed_srlgs_at", at=3.5))
        assert after_splice.value == []

    def test_srlg_links_down_at_tracks_partial_repair(self):
        timeline = replay_scenario(get_scenario("wan-conduit-cut"))
        outcome = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-h5").intent)
        assert len(outcome.value) == 3
        assert ["pop-5", "pop-6"] not in outcome.value  # spliced at t=3

    def test_srlg_links_down_at_unknown_group_raises(self):
        timeline = replay_scenario(get_scenario("wan-conduit-cut"))
        with pytest.raises(ValidationError, match="unknown SRLG"):
            evaluate_temporal_reference(
                timeline, Intent.create("srlg_links_down_at", at=2.0, group="x"))

    def test_drained_links_and_nodes_between(self):
        timeline = replay_scenario(get_scenario("fattree-maintenance"))
        links = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-m6").intent)
        # 2 drained uplinks + the 4 links of the drained chassis
        assert len(links.value) == 6
        nodes = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-h6").intent)
        assert nodes.value == ["pod1-agg1"]

    def test_region_growth_names_the_hotspot(self):
        timeline = replay_scenario(get_scenario("wan-gravity-hotspot"))
        top = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-m7").intent)
        assert top.value == "nw"
        deltas = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-h7").intent)
        assert deltas.value["nw"] > 0
        assert all(delta == 0 for bucket, delta in deltas.value.items()
                   if bucket != "nw")


# ---------------------------------------------------------------------------
# benchmark integration: acceptance byte-identity + CLI
# ---------------------------------------------------------------------------
class TestBenchmarkIntegration:
    def test_every_new_scenario_has_temporal_queries(self):
        for name in CORRELATED_SCENARIOS:
            queries = temporal_queries_for(name)
            assert len(queries) == 3, name

    def test_serial_and_parallel_sweeps_byte_identical(self):
        # acceptance: --temporal over the three new scenarios, serial vs
        # --jobs 2, byte-identical per-snapshot accuracy tables
        serial = BenchmarkRunner(BenchmarkConfig())
        parallel = BenchmarkRunner(BenchmarkConfig(),
                                   policy=ExecutorPolicy.processes(jobs=2))
        report_serial = serial.run_temporal_suite(
            scenarios=list(CORRELATED_SCENARIOS), models=["gpt-4", "bard"])
        report_parallel = parallel.run_temporal_suite(
            scenarios=list(CORRELATED_SCENARIOS), models=["gpt-4", "bard"])
        assert report_serial.render_summary() == report_parallel.render_summary()
        assert (report_serial.render_snapshot_tables()
                == report_parallel.render_snapshot_tables())
        assert (report_serial.logger.to_records()
                == report_parallel.logger.to_records())

    def test_accuracy_reflects_calibration_on_new_scenarios(self):
        report = BenchmarkRunner(BenchmarkConfig()).run_temporal_suite(
            scenarios=list(CORRELATED_SCENARIOS))
        assert len(report.logger) == 4 * 3 * len(CORRELATED_SCENARIOS)
        for record in report.logger.records:
            assert record.passed == record.details["intended_correct"]

    def test_cli_describe_shows_srlg_membership(self, capsys):
        # acceptance: `repro scenarios describe wan-conduit-cut`
        import json

        assert main(["scenarios", "describe", "wan-conduit-cut"]) == 0
        captured = capsys.readouterr()
        assert "Shared-risk link groups" in captured.err
        assert "conduit-se-sw" in captured.err
        assert "pop-5~pop-6" in captured.err
        # stdout stays pure spec JSON (`describe name > spec.json` contract)
        assert json.loads(captured.out)["name"] == "wan-conduit-cut"

    def test_cli_describe_shows_window_schedule(self, capsys):
        import json

        assert main(["scenarios", "describe", "fattree-maintenance"]) == 0
        captured = capsys.readouterr()
        assert "Maintenance windows" in captured.err
        assert "node pod1-agg1" in captured.err
        assert json.loads(captured.out)["family"] == "fat-tree"

    def test_cli_temporal_smoke_over_new_scenarios(self, capsys):
        exit_code = main(["benchmark", "--temporal", "--no-cache",
                          "--models", "gpt-4", "--scenarios",
                          "wan-conduit-cut", "fattree-maintenance",
                          "wan-gravity-hotspot", "--jobs", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        for name in CORRELATED_SCENARIOS:
            assert f"Per-snapshot accuracy — {name}" in out
