"""The shipped scenario corpus must replay to its locked digests.

``scenarios/`` holds one JSON spec per built-in scenario plus
``digests.lock.json``.  Replaying each spec and comparing snapshot digests
against the lockfile catches any regression in the topology generators or
the event engine — a digest only moves if scenario *content* moved.
"""

from pathlib import Path

import pytest

from repro.scenarios.corpus import (
    LOCKFILE_NAME,
    corpus_spec_paths,
    read_lockfile,
    replay_digests,
    verify_corpus,
    write_corpus,
)
from repro.scenarios.engine import replay_scenario
from repro.scenarios.registry import scenario_names
from repro.scenarios.spec import ScenarioSpec

CORPUS_DIR = Path(__file__).resolve().parent.parent / "scenarios"


def test_corpus_exists_and_is_complete():
    assert (CORPUS_DIR / LOCKFILE_NAME).is_file()
    names = sorted(path.stem for path in corpus_spec_paths(CORPUS_DIR))
    # every built-in scenario ships in the corpus
    assert names == scenario_names()


def test_lockfile_covers_exactly_the_corpus():
    lock = read_lockfile(CORPUS_DIR)
    locked = sorted(lock["scenarios"])
    assert locked == sorted(path.stem for path in corpus_spec_paths(CORPUS_DIR))


@pytest.mark.parametrize("spec_path", corpus_spec_paths(CORPUS_DIR),
                         ids=lambda path: path.stem)
def test_each_spec_replays_to_locked_digests(spec_path):
    spec = ScenarioSpec.load(str(spec_path))
    entry = read_lockfile(CORPUS_DIR)["scenarios"][spec.name]
    assert entry["file"] == spec_path.name
    digests = replay_digests(spec)
    assert digests == entry["snapshot_digests"], (
        f"scenario {spec.name!r} replays to different snapshot digests than "
        f"locked — topology or event-engine behaviour changed")
    final = replay_scenario(spec).final_graph
    assert final.node_count == entry["final_nodes"]
    assert final.edge_count == entry["final_edges"]


def test_verify_corpus_passes_on_shipped_corpus():
    assert verify_corpus(CORPUS_DIR) == []


def test_verify_corpus_flags_digest_drift(tmp_path):
    write_corpus(tmp_path)
    # sabotage one spec: a different seed must change its replay digests
    victim = sorted(tmp_path.glob("*.json"))[0]
    if victim.name == LOCKFILE_NAME:
        victim = sorted(tmp_path.glob("*.json"))[1]
    spec = ScenarioSpec.load(str(victim))
    spec.seed += 1
    spec.save(str(victim))
    problems = verify_corpus(tmp_path)
    assert problems and "digests diverged" in problems[0]


def test_verify_corpus_flags_unlocked_and_missing_specs(tmp_path):
    write_corpus(tmp_path)
    spec_paths = [path for path in sorted(tmp_path.glob("*.json"))
                  if path.name != LOCKFILE_NAME]
    extra = ScenarioSpec.load(str(spec_paths[0]))
    extra.name = "not-in-lockfile"
    extra.save(str(tmp_path / "not-in-lockfile.json"))
    spec_paths[1].unlink()
    problems = "\n".join(verify_corpus(tmp_path))
    assert "missing from lockfile" in problems
    assert "not in the corpus" in problems
