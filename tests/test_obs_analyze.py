"""Tests for the observability analysis layer: ``repro.obs.analyze``
(self-time, critical path, noise-banded diffing), ``repro.obs.ledger``
(the per-run record store), ``repro.obs.sample`` (resource gauges), the
``repro obs`` CLI group, and the CI span-regression gate.

The acceptance criteria of the layer live here too: an injected 5x p95
slowdown must flag (nonzero exit) while two identical snapshots stay
inside the noise band (exit 0), and serial vs ``--jobs 2`` results stay
byte-identical with the ledger and the sampler enabled."""

import json
import sys
from pathlib import Path

import pytest

from repro.benchmark import BenchmarkConfig, BenchmarkRunner
from repro.cli.main import main
from repro.exec import ExecutorPolicy
from repro.obs import (
    MetricsRegistry,
    ResourceSampler,
    RunLedger,
    Tracer,
    default_registry,
    diff_metrics,
    disable_sampling,
    enable_sampling,
    sample_now,
    sampling_enabled,
    self_time_table,
    set_default_registry,
    set_tracer,
    spans_from_trace,
    critical_path,
    write_metrics,
    write_trace,
)
from repro.obs.analyze import render_latency_table, render_report
from repro.obs.sample import COUNTER_SAMPLES, GAUGE_CPU_SECONDS, GAUGE_MAX_RSS
from repro.utils.validation import ValidationError

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
from check_span_regression import main as span_gate_main  # noqa: E402


@pytest.fixture(autouse=True)
def fresh_observability():
    """Isolate every test behind fresh tracer/registry/sampling globals."""
    previous_tracer = set_tracer(Tracer())
    previous_registry = set_default_registry(MetricsRegistry())
    try:
        yield
    finally:
        disable_sampling()
        set_tracer(previous_tracer)
        set_default_registry(previous_registry)


# ---------------------------------------------------------------------------
# fixtures: synthetic traces and metrics snapshots
# ---------------------------------------------------------------------------
def _event(name, ts, dur, pid=1, tid=1, span_id=None, parent_id=None):
    args = {}
    if span_id is not None:
        args["span_id"] = span_id
    if parent_id is not None:
        args["parent_id"] = parent_id
    return {"name": name, "ph": "X", "ts": ts, "dur": dur,
            "pid": pid, "tid": tid, "args": args}


def _trace_document():
    """root(100ms) -> work(70ms) -> inner(30ms); plus a 40ms sibling root."""
    return {"traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "main"}},
        _event("root", 0, 100_000, span_id=1),
        _event("work", 5_000, 70_000, span_id=2, parent_id=1),
        _event("inner", 10_000, 30_000, span_id=3, parent_id=2),
        _event("sibling", 0, 40_000, span_id=4),
    ]}


def _histogram_snapshot(p50, p95, p99, count=50):
    return {"count": count, "sum": p50 * count, "min": p50 / 2, "max": p99,
            "mean": p50, "p50": p50, "p95": p95, "p99": p99, "buckets": {}}


def _metrics_snapshot(p95=0.1, extra_histograms=None):
    histograms = {"span.stage.seconds":
                  _histogram_snapshot(p95 / 2, p95, p95 * 1.2)}
    histograms.update(extra_histograms or {})
    return {"counters": {"cache.hits": 3}, "gauges": {"resource.max_rss_bytes": 1e8},
            "histograms": histograms}


# ---------------------------------------------------------------------------
# analyze: span parsing, self time, critical path
# ---------------------------------------------------------------------------
class TestTraceAnalysis:
    def test_spans_from_trace_resolves_lanes_and_links(self):
        spans = spans_from_trace(_trace_document())
        assert [span.name for span in spans] == ["root", "work", "inner", "sibling"]
        assert all(span.process == "main" for span in spans)
        by_name = {span.name: span for span in spans}
        assert by_name["work"].parent_id == 1
        assert by_name["root"].parent_id is None
        assert by_name["inner"].duration_s == pytest.approx(0.030)

    def test_bad_trace_shapes_raise(self):
        with pytest.raises(ValueError):
            spans_from_trace([1, 2, 3])
        with pytest.raises(ValueError):
            spans_from_trace({"no": "traceEvents"})

    def test_self_time_subtracts_direct_children_only(self):
        rows = {row["name"]: row for row in
                self_time_table(spans_from_trace(_trace_document()))}
        # root: 100ms - work's 70ms (inner nests under work, not root)
        assert rows["root"]["self_s"] == pytest.approx(0.030)
        # work: 70ms - inner's 30ms
        assert rows["work"]["self_s"] == pytest.approx(0.040)
        assert rows["inner"]["self_s"] == pytest.approx(0.030)
        assert rows["sibling"]["self_s"] == pytest.approx(0.040)
        assert rows["root"]["total_s"] == pytest.approx(0.100)

    def test_self_time_clamps_overlapping_children_at_zero(self):
        document = {"traceEvents": [
            _event("parent", 0, 10_000, span_id=1),
            _event("threaded-child", 0, 9_000, span_id=2, parent_id=1),
            _event("threaded-child", 0, 9_000, span_id=3, parent_id=1),
        ]}
        rows = {row["name"]: row for row in
                self_time_table(spans_from_trace(document))}
        assert rows["parent"]["self_s"] == 0.0

    def test_critical_path_walks_the_slowest_chain(self):
        path = [span.name for span in
                critical_path(spans_from_trace(_trace_document()))]
        assert path == ["root", "work", "inner"]

    def test_critical_path_of_empty_trace(self):
        assert critical_path([]) == []

    def test_orphaned_span_counts_as_a_root(self):
        document = {"traceEvents": [
            _event("orphan", 0, 50_000, span_id=7, parent_id=999),
        ]}
        assert [span.name for span in
                critical_path(spans_from_trace(document))] == ["orphan"]

    def test_render_report_mentions_bottlenecks_path_and_resources(self):
        text = render_report(spans_from_trace(_trace_document()),
                             _metrics_snapshot())
        assert "bottlenecks by self time" in text
        assert "Critical path" in text
        assert "resource.max_rss_bytes" in text

    def test_render_latency_table_ranks_span_histograms(self):
        text = render_latency_table(_metrics_snapshot())
        assert "span.stage.seconds" in text


# ---------------------------------------------------------------------------
# analyze: noise-banded metrics diffing
# ---------------------------------------------------------------------------
class TestMetricsDiff:
    def test_identical_snapshots_are_within_the_noise_band(self):
        snapshot = _metrics_snapshot()
        diff = diff_metrics(snapshot, snapshot)
        assert diff.ok
        assert not diff.regressions()
        assert "WITHIN NOISE BAND" in diff.render()

    def test_injected_5x_p95_slowdown_regresses(self):
        diff = diff_metrics(_metrics_snapshot(p95=0.1), _metrics_snapshot(p95=0.5))
        assert not diff.ok
        names = [entry.name for entry in diff.regressions()]
        assert names == ["span.stage.seconds"]
        assert "REGRESSION" in diff.render()

    def test_small_wobble_inside_the_band_is_ok(self):
        # +30% is well under the default 2x band
        assert diff_metrics(_metrics_snapshot(p95=0.1),
                            _metrics_snapshot(p95=0.13)).ok

    def test_big_ratio_below_the_absolute_floor_is_ok(self):
        # 5x, but the delta is microseconds — scheduler noise, not a verdict
        assert diff_metrics(_metrics_snapshot(p95=2e-6),
                            _metrics_snapshot(p95=1e-5)).ok

    def test_too_few_observations_never_regress(self):
        base = _metrics_snapshot(p95=0.1)
        current = _metrics_snapshot(p95=5.0)
        current["histograms"]["span.stage.seconds"]["count"] = 2
        diff = diff_metrics(base, current)
        assert diff.ok
        (entry,) = [e for e in diff.entries if e.kind == "histogram"]
        assert "too few observations" in entry.detail

    def test_improvement_is_reported_not_failed(self):
        diff = diff_metrics(_metrics_snapshot(p95=0.5), _metrics_snapshot(p95=0.1))
        assert diff.ok
        assert [e.name for e in diff.by_status("improved")] == ["span.stage.seconds"]

    def test_one_sided_metrics_are_new_or_removed_not_a_crash(self):
        base = _metrics_snapshot(extra_histograms={
            "span.gone.seconds": _histogram_snapshot(0.1, 0.2, 0.3)})
        current = _metrics_snapshot(extra_histograms={
            "span.fresh.seconds": _histogram_snapshot(0.1, 0.2, 0.3)})
        current["counters"]["brand.new.counter"] = 7
        diff = diff_metrics(base, current)
        assert diff.ok                    # new/removed never fail a diff
        assert {e.name for e in diff.by_status("removed")} == {"span.gone.seconds"}
        assert {e.name for e in diff.by_status("new")} == {
            "span.fresh.seconds", "brand.new.counter"}

    def test_counters_and_gauges_are_informational_only(self):
        base, current = _metrics_snapshot(), _metrics_snapshot()
        current["counters"]["cache.hits"] = 9000
        current["gauges"]["resource.max_rss_bytes"] = 1e12
        diff = diff_metrics(base, current)
        assert diff.ok
        counter = next(e for e in diff.entries if e.name == "cache.hits")
        assert counter.status == "ok" and "delta" in counter.detail


# ---------------------------------------------------------------------------
# ledger
# ---------------------------------------------------------------------------
class TestRunLedger:
    def test_record_and_load_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "nested" / "ledger")
        entry = ledger.record("benchmark", _metrics_snapshot(),
                              meta={"jobs": 2}, argv=["benchmark", "--jobs", "2"])
        loaded = ledger.load(entry["id"])
        assert loaded == entry
        assert loaded["meta"]["jobs"] == 2
        assert loaded["metrics"]["counters"]["cache.hits"] == 3
        assert len(ledger) == 1

    def test_record_snapshots_a_registry(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("tasks").inc(5)
        entry = RunLedger(tmp_path).record("cost", registry)
        assert entry["metrics"]["counters"]["tasks"] == 5

    def test_aliases_and_prefix_lookup(self, tmp_path):
        ledger = RunLedger(tmp_path)
        first = ledger.record("benchmark", _metrics_snapshot())
        second = ledger.record("cost", _metrics_snapshot())
        assert ledger.find("latest")["id"] == second["id"]
        assert ledger.find("prev")["id"] == first["id"]
        assert ledger.find(first["id"][:12])["id"] == first["id"]
        assert [entry["id"] for entry in ledger.latest(2)] \
            == [first["id"], second["id"]]

    def test_lookup_failures_are_validation_errors(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with pytest.raises(ValidationError, match="empty"):
            ledger.find("latest")
        ledger.record("benchmark", _metrics_snapshot())
        with pytest.raises(ValidationError, match="cannot resolve"):
            ledger.find("prev")
        with pytest.raises(ValidationError, match="no ledger entry"):
            ledger.find("zzzz")

    def test_non_ledger_json_is_rejected(self, tmp_path):
        (tmp_path / "bogus.json").write_text("{}", encoding="utf-8")
        with pytest.raises(ValidationError, match="format"):
            RunLedger(tmp_path).load("bogus")


# ---------------------------------------------------------------------------
# resource sampling
# ---------------------------------------------------------------------------
class TestResourceSampling:
    def test_sample_now_populates_the_gauges(self):
        sample_now()
        snapshot = default_registry().snapshot()
        assert snapshot["gauges"][GAUGE_MAX_RSS] > 0
        assert snapshot["gauges"][GAUGE_CPU_SECONDS] > 0
        assert snapshot["counters"][COUNTER_SAMPLES] == 1

    def test_gauges_ratchet_upward_under_merge(self):
        registry = MetricsRegistry()
        sample_now(registry)
        peak = registry.gauge(GAUGE_MAX_RSS).value
        # a later, smaller reading cannot erase the recorded peak
        registry.gauge(GAUGE_MAX_RSS).merge(peak / 2)
        assert registry.gauge(GAUGE_MAX_RSS).value == peak

    def test_sampler_start_stop_takes_bracketing_readings(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(interval_s=60.0, registry=registry)
        with sampler:
            assert sampler.running
            assert registry.counter(COUNTER_SAMPLES).value == 1
        assert not sampler.running
        # the interval never elapsed, so exactly start + stop readings
        assert registry.counter(COUNTER_SAMPLES).value == 2
        assert registry.gauge(GAUGE_MAX_RSS).value > 0

    def test_sampler_rejects_nonpositive_interval_and_double_start(self):
        with pytest.raises(ValueError):
            ResourceSampler(interval_s=0)
        sampler = ResourceSampler(registry=MetricsRegistry())
        try:
            sampler.start()
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_sampling_flag_round_trip(self):
        assert not sampling_enabled()
        enable_sampling()
        assert sampling_enabled()
        disable_sampling()
        assert not sampling_enabled()

    def test_workers_sample_when_enabled_and_results_stay_identical(self):
        enable_sampling()
        parallel = BenchmarkRunner(BenchmarkConfig(),
                                   policy=ExecutorPolicy.processes(jobs=2))
        report_parallel = parallel.run_temporal_suite(
            scenarios=["fat-tree-failover"], models=["gpt-4"])
        snapshot = default_registry().snapshot()
        # worker readings merged through the wire obs marker
        assert snapshot["gauges"][GAUGE_MAX_RSS] > 0
        assert snapshot["counters"][COUNTER_SAMPLES] >= 1
        disable_sampling()
        serial = BenchmarkRunner(BenchmarkConfig())
        report_serial = serial.run_temporal_suite(
            scenarios=["fat-tree-failover"], models=["gpt-4"])
        # sampling on (parallel) vs off (serial): results byte-identical
        assert json.dumps(report_parallel.logger.to_records(), sort_keys=True) \
            == json.dumps(report_serial.logger.to_records(), sort_keys=True)
        assert report_parallel.render_summary() == report_serial.render_summary()


# ---------------------------------------------------------------------------
# exporters create parent directories (satellite of this layer)
# ---------------------------------------------------------------------------
class TestExportParentDirectories:
    def test_write_trace_creates_nested_directories(self, tmp_path):
        destination = tmp_path / "deeply" / "nested" / "trace.json"
        write_trace(destination)
        document = json.loads(destination.read_text(encoding="utf-8"))
        assert "traceEvents" in document

    def test_write_metrics_creates_nested_directories(self, tmp_path):
        destination = tmp_path / "a" / "b" / "metrics.json"
        sample_now()
        write_metrics(destination)
        document = json.loads(destination.read_text(encoding="utf-8"))
        assert document["gauges"][GAUGE_MAX_RSS] > 0


# ---------------------------------------------------------------------------
# the repro obs CLI group
# ---------------------------------------------------------------------------
class TestObsCli:
    def _write(self, path, document):
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def test_obs_diff_identical_files_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", _metrics_snapshot())
        current = self._write(tmp_path / "current.json", _metrics_snapshot())
        assert main(["obs", "diff", base, current]) == 0
        assert "WITHIN NOISE BAND" in capsys.readouterr().out

    def test_obs_diff_flags_injected_5x_slowdown(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", _metrics_snapshot(p95=0.1))
        current = self._write(tmp_path / "current.json", _metrics_snapshot(p95=0.5))
        assert main(["obs", "diff", base, current]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_obs_diff_resolves_ledger_aliases(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path)
        ledger.record("benchmark", _metrics_snapshot())
        ledger.record("benchmark", _metrics_snapshot())
        assert main(["obs", "diff", "--ledger-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "base:" in out and "current:" in out

    def test_obs_diff_accepts_a_ledger_entry_file(self, tmp_path, capsys):
        entry = RunLedger(tmp_path).record("benchmark", _metrics_snapshot())
        entry_path = tmp_path / f"{entry['id']}.json"
        metrics_path = self._write(tmp_path / "m.json", _metrics_snapshot())
        assert main(["obs", "diff", str(entry_path), metrics_path]) == 0
        capsys.readouterr()

    def test_obs_diff_empty_ledger_is_a_clean_error(self, tmp_path, capsys):
        assert main(["obs", "diff", "--ledger-dir", str(tmp_path / "none")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_obs_report_from_trace_and_metrics(self, tmp_path, capsys):
        trace = self._write(tmp_path / "trace.json", _trace_document())
        metrics = self._write(tmp_path / "metrics.json", _metrics_snapshot())
        assert main(["obs", "report", "--trace", trace,
                     "--metrics", metrics]) == 0
        out = capsys.readouterr().out
        assert "Critical path" in out and "resource.max_rss_bytes" in out

    def test_obs_report_metrics_only_fallback(self, tmp_path, capsys):
        metrics = self._write(tmp_path / "metrics.json", _metrics_snapshot())
        assert main(["obs", "report", "--metrics", metrics]) == 0
        assert "span.stage.seconds" in capsys.readouterr().out

    def test_obs_report_requires_an_input(self, capsys):
        assert main(["obs", "report"]) == 1
        assert "nothing to report" in capsys.readouterr().err

    def test_obs_ledger_list_and_show(self, tmp_path, capsys):
        entry = RunLedger(tmp_path).record("benchmark", _metrics_snapshot(),
                                           meta={"jobs": 2, "wall_time_s": 1.5})
        assert main(["obs", "ledger", "list", "--dir", str(tmp_path)]) == 0
        assert entry["id"] in capsys.readouterr().out
        assert main(["obs", "ledger", "show", "latest",
                     "--dir", str(tmp_path)]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["id"] == entry["id"]

    def test_sweep_records_a_ledger_entry_automatically(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        assert main(["cost", "--sizes", "40", "--ledger-dir", str(ledger_dir)]) == 0
        capsys.readouterr()
        ledger = RunLedger(ledger_dir)
        assert len(ledger) == 1
        (entry,) = ledger.entries()
        assert entry["command"] == "cost"
        assert entry["meta"]["exit_code"] == 0
        assert entry["meta"]["wall_time_s"] > 0
        assert entry["argv"][0] == "cost"
        assert "span.exec.run_tasks.seconds" in entry["metrics"]["histograms"]

    def test_no_ledger_opts_out(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        assert main(["cost", "--sizes", "40", "--no-ledger",
                     "--ledger-dir", str(ledger_dir)]) == 0
        capsys.readouterr()
        assert not ledger_dir.exists()

    def test_serial_vs_jobs2_output_identical_with_ledger_and_sampler(
            self, tmp_path, capsys):
        """Acceptance: ledger + sampler on, serial and --jobs 2 byte-identical."""
        outputs = []
        for jobs, label in (("1", "serial"), ("2", "parallel")):
            assert main(["cost", "--sizes", "40", "--jobs", jobs,
                         "--no-cache", "--ledger-dir",
                         str(tmp_path / label)]) == 0
            outputs.append(capsys.readouterr().out)
            assert len(RunLedger(tmp_path / label)) == 1
        assert outputs[0] == outputs[1]


# ---------------------------------------------------------------------------
# the CI span-regression gate
# ---------------------------------------------------------------------------
class TestSpanRegressionGate:
    def _write(self, path, document):
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def test_gate_passes_when_spans_match_the_baseline(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", _metrics_snapshot())
        current = self._write(tmp_path / "now.json", _metrics_snapshot())
        assert span_gate_main(["--metrics", current, "--baseline", baseline]) == 0
        assert "within" in capsys.readouterr().out

    def test_gate_fails_on_an_injected_slowdown(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", _metrics_snapshot(p95=0.1))
        current = self._write(tmp_path / "now.json",
                              _metrics_snapshot(p95=0.1 * 10))
        assert span_gate_main(["--metrics", current, "--baseline", baseline]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_new_and_removed_spans_never_fail_the_gate(self, tmp_path, capsys):
        baseline = self._write(
            tmp_path / "base.json", _metrics_snapshot(extra_histograms={
                "span.gone.seconds": _histogram_snapshot(0.1, 0.2, 0.3)}))
        current = self._write(
            tmp_path / "now.json", _metrics_snapshot(extra_histograms={
                "span.fresh.seconds": _histogram_snapshot(0.1, 0.2, 0.3)}))
        assert span_gate_main(["--metrics", current, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "NEW" in out and "REMOVED" in out

    def test_gate_errors_without_span_histograms(self, tmp_path, capsys):
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        baseline = self._write(tmp_path / "base.json", empty)
        current = self._write(tmp_path / "now.json", empty)
        assert span_gate_main(["--metrics", current, "--baseline", baseline]) == 1
        assert "no span histograms" in capsys.readouterr().err

    def test_committed_baseline_has_the_expected_shape(self):
        baseline_path = (Path(__file__).resolve().parent.parent
                         / "benchmarks" / "results" / "obs_baseline.json")
        document = json.loads(baseline_path.read_text(encoding="utf-8"))
        span_histograms = [name for name in document.get("histograms", {})
                           if name.startswith("span.") and name.endswith(".seconds")]
        assert len(span_histograms) >= 5
