"""Bad: a Thread-target path writes a module-level dict without a lock."""

import threading

_RESULTS = {}


def start_collector():
    worker = threading.Thread(target=_collect, daemon=True)
    worker.start()
    return worker


def _collect():
    _publish("latest", 1)


def _publish(key, value):
    _RESULTS[key] = value
