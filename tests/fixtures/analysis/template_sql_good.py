"""GOOD: SQL templates inside the supported sqlengine subset."""

ANALYSIS_LANGUAGE = "sql"

TEMPLATES = {
    "count_nodes": "SELECT COUNT(*) AS node_count FROM nodes",
    "cleanup": "DELETE FROM edges WHERE bytes < 10; "
               "SELECT COUNT(*) AS remaining FROM edges",
}
