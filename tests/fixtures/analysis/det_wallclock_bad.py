"""BAD: worker result depends on the wall clock."""

import time
from datetime import datetime


def run(payload):
    return {"value": payload["x"], "stamp": time.time(),
            "day": datetime.now().isoformat()}
