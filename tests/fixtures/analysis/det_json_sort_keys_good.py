"""GOOD: canonical serialization regardless of dict build order."""

import hashlib
import json


def digest(payload):
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
