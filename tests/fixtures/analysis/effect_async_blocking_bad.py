"""Bad: a serve/ coroutine reaches time.sleep through an indirect call.

The coroutine itself calls a plain helper, which throttles — so the whole
event loop stalls for every connection while one request sleeps.
"""

import time


async def handle_query(request):
    return _answer(request)


def _answer(request):
    _throttle()
    return {"ok": True, "request": request}


def _throttle():
    time.sleep(0.05)
