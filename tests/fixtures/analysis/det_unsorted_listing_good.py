"""GOOD: every directory enumeration is sorted before iteration."""

import os
from pathlib import Path


def entry_names(root):
    return sorted(os.listdir(root))


def pickle_paths(root):
    return iter(sorted(Path(root).glob("*/*.pkl")))
