"""BAD: a template reading a name the sandbox namespace will not provide."""

ANALYSIS_STATIC_NAMESPACE = ("nodes_df", "edges_df")

TEMPLATES = {
    "typo": "result = len(nodes_dff)\n",
    "missing_helper": "result = summarize(edges_df)\n",
}
