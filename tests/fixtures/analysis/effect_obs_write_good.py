"""Good: the obs helper renders bytes; writing them is the CLI's job."""

import json


def render_snapshot(document):
    return _render(document)


def _render(document):
    return json.dumps(document, sort_keys=True)
