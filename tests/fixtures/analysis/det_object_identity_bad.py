"""BAD: per-process object identity leaking into a serialized record."""


def record(node):
    return {"node_key": id(node), "bucket": hash(node.address) % 16}
