"""Good: the blocking helper is dispatched off-loop via run_in_executor.

Handing ``_answer`` to the executor creates no call edge from the
coroutine, so the blocking effect stays on the worker thread where it
belongs.
"""

import time


async def handle_query(loop, pool, request):
    return await loop.run_in_executor(pool, _answer, request)


def _answer(request):
    _throttle()
    return {"ok": True, "request": request}


def _throttle():
    time.sleep(0.05)
