"""GOOD: stable content-derived keys."""

import hashlib


def record(node):
    digest = hashlib.sha256(node.address.encode("utf-8")).hexdigest()
    return {"node_key": node.address, "bucket": int(digest[:2], 16) % 16}
