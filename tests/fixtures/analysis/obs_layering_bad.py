"""BAD: obs-layer module importing the pipeline it observes.

Only ever analyzed with a relpath under ``obs/`` — never imported.
"""

from repro.exec.task import Task
from repro.benchmark import BenchmarkRunner


def describe(task: Task, runner: BenchmarkRunner):
    return {"task": task.key, "runner": type(runner).__name__}
