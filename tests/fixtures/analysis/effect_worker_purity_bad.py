"""Bad: a fabric worker reaches a wall-clock read through a 3-deep chain.

No single function looks suspicious — the worker is pure, the middle helper
is pure — but ``run_cell -> _evaluate -> _stamp -> time.time()`` makes the
worker transitively nondeterministic.
"""

import time

CELL_WORKER = "effect_worker_purity_bad:run_cell"


def run_cell(payload):
    return _evaluate(payload)


def _evaluate(payload):
    return _stamp(dict(payload))


def _stamp(result):
    result["finished_at"] = time.time()
    return result
