"""GOOD: templates inside both the sandbox policy and the namespace."""

ANALYSIS_STATIC_NAMESPACE = ("G",)

TEMPLATES = {
    "count_nodes": "result = G.number_of_nodes()\n",
    "heavy_edges": (
        "import math\n"
        "result = sorted(n for n in G.nodes if not math.isnan(0.0))\n"
    ),
}
