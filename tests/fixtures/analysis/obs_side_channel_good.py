"""GOOD: worker results carry only the result contract fields."""


def run(payload):
    return {"key": payload["key"], "ok": True,
            "value": payload["x"] * 2, "error": None}
