"""BAD: worker draws from the process-global RNG."""

import random


def pick(payload):
    return random.choice(payload["candidates"])
