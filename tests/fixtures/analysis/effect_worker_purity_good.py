"""Good: the timestamp travels in the payload; the worker chain stays pure."""

CELL_WORKER = "effect_worker_purity_good:run_cell"


def run_cell(payload):
    return _evaluate(payload)


def _evaluate(payload):
    return _stamp(dict(payload))


def _stamp(result):
    result["finished_at"] = result.pop("submitted_at")
    return result
