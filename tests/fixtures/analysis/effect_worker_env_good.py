"""Good: environment configuration is resolved by the parent process and
arrives through the payload."""

POINT_WORKER = "effect_worker_env_good:run_point"


def run_point(payload):
    return _configure(payload)


def _configure(payload):
    merged = dict(payload)
    merged["jobs"] = int(merged.get("jobs", 1))
    return merged
