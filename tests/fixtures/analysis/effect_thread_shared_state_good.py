"""Good: the same thread-reachable write, serialized under a module lock."""

import threading

_RESULTS = {}
_RESULTS_LOCK = threading.Lock()


def start_collector():
    worker = threading.Thread(target=_collect, daemon=True)
    worker.start()
    return worker


def _collect():
    _publish("latest", 1)


def _publish(key, value):
    with _RESULTS_LOCK:
        _RESULTS[key] = value
