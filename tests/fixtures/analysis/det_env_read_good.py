"""GOOD: configuration resolved by the parent and shipped in the payload."""


def run(payload):
    mode = payload.get("mode", "fast")
    limit = int(payload.get("limit", 10))
    return {"mode": mode, "values": payload["values"][:limit]}
