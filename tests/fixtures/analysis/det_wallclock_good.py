"""GOOD: monotonic duration for telemetry; any timestamp rides the payload."""

import time


def run(payload):
    started = time.perf_counter()
    value = payload["x"] * 2
    return {"value": value, "stamp": payload["stamp"],
            "duration_s": time.perf_counter() - started}
