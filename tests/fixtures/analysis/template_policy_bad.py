"""BAD: a template whose program violates the sandbox policy."""

ANALYSIS_STATIC_NAMESPACE = ("G",)

TEMPLATES = {
    "leak_file": "result = open('/etc/passwd').read()\n",
    "shell_out": "import subprocess\nresult = subprocess.run(['ls'])\n",
}
