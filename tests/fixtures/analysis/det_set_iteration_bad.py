"""BAD: ordered output derived from set iteration (per-process hash order)."""


def node_labels(payload):
    return [key for key in set(payload)]


def render(edges):
    lines = []
    for pair in {(a, b) for a, b in edges}:
        lines.append(f"{pair[0]} -> {pair[1]}")
    return lines
