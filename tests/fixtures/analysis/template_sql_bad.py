"""BAD: SQL templates the sqlengine cannot parse (or that render nothing)."""

ANALYSIS_LANGUAGE = "sql"

TEMPLATES = {
    "misspelled": "SELEC address FROM nodes",
    "empty": "   ",
}
