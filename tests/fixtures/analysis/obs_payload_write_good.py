"""GOOD: telemetry recorded around the task, never inside it."""

from repro.exec.task import Task
from repro.obs import default_registry, span


def make_task(key):
    with span("sweep.build", attrs={"key": key}):
        task = Task(
            key=key,
            fn="repro.benchmark.tasks:run_benchmark_cell",
            payload={"cell": key})
    default_registry().counter("sweep.tasks").inc()
    return task
