"""BAD: digest material serialized in dict build order."""

import hashlib
import json


def digest(payload):
    blob = json.dumps(payload)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
