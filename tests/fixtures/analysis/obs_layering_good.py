"""GOOD: obs-layer module depending only on the stdlib and repro.utils."""

import json

from repro.utils.validation import ValidationError


def load_entry(text):
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        raise ValidationError(f"bad ledger entry: {error}") from error
