"""BAD: inventing a second obs wire transport outside the sanctioned sites."""


def attach_telemetry(raw, capture):
    raw["obs"] = capture.to_wire()
    return raw
