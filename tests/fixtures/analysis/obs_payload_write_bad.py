"""BAD: telemetry flowing into a task payload (and digest material)."""

from repro.exec.task import Task, canonical_payload
from repro.obs import default_registry


def make_task(key):
    return Task(
        key=key,
        fn="repro.benchmark.tasks:run_benchmark_cell",
        payload={"runs": default_registry().counter("sweep.runs").value})


def digest_material(payload):
    return canonical_payload({"payload": payload,
                              "metrics": default_registry().snapshot()})
