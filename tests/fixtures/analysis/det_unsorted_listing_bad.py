"""BAD: directory enumeration order reaches the caller unsorted."""

import os
from pathlib import Path


def entry_names(root):
    return [name for name in os.listdir(root)]


def pickle_paths(root):
    for path in Path(root).glob("*/*.pkl"):
        yield path
