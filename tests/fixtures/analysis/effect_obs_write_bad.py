"""Bad: an obs helper (outside the exporter files) writes the filesystem."""

import json


def record_snapshot(document, path):
    _flush(document, path)


def _flush(document, path):
    path.write_text(json.dumps(document, sort_keys=True))
