"""GOOD: a seeded RNG derived from payload material."""

import random


def pick(payload):
    rng = random.Random(payload["seed"])
    return rng.choice(payload["candidates"])
