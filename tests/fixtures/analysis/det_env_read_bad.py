"""BAD: worker behaviour depends on the invoking machine's environment."""

import os


def run(payload):
    mode = os.environ.get("REPRO_MODE", "fast")
    limit = int(os.getenv("REPRO_LIMIT", "10"))
    return {"mode": mode, "values": payload["values"][:limit]}
