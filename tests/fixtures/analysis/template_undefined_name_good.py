"""GOOD: templates touching only the namespace, builtins, and local bindings."""

ANALYSIS_STATIC_NAMESPACE = ("nodes_df", "edges_df")

TEMPLATES = {
    "count": "result = len(nodes_df)\n",
    "helper": (
        "def total(frame):\n"
        "    return sum(frame['bytes'].tolist())\n"
        "result = total(edges_df)\n"
    ),
}
