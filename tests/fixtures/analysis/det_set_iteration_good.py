"""GOOD: sets are sorted (or used only for membership) before ordering matters."""


def node_labels(payload):
    return sorted(set(payload))


def render(edges):
    seen = set()
    lines = []
    for a, b in edges:  # insertion order, deduplicated via membership only
        if (a, b) not in seen:
            seen.add((a, b))
            lines.append(f"{a} -> {b}")
    return lines
