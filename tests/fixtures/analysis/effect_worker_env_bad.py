"""Bad: a fabric worker reads the environment through a helper."""

import os

POINT_WORKER = "effect_worker_env_bad:run_point"


def run_point(payload):
    return _configure(payload)


def _configure(payload):
    merged = dict(payload)
    merged["jobs"] = _default_jobs()
    return merged


def _default_jobs():
    return int(os.getenv("REPRO_JOBS", "1"))
