"""Tests for the ``repro.exec`` execution fabric.

Covers the task model, the shard/chunk policy, serial-vs-parallel
equivalence, cache hit/miss/invalidation semantics, and failure surfacing —
both well-behaved worker exceptions and hard worker crashes that kill the
process.
"""

import pytest

from repro.exec import (
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    Task,
    TaskExecutionError,
    TaskSet,
    resolve_worker,
    run_tasks,
    shard_tasks,
)
from repro.utils.validation import ValidationError


def square_tasks(count=8, group_of=None):
    return TaskSet(name="squares", tasks=[
        Task(key=f"sq/{index}", fn="repro.exec.demo:square", payload={"x": index},
             group=group_of(index) if group_of else "")
        for index in range(count)])


# ---------------------------------------------------------------------------
# task model
# ---------------------------------------------------------------------------
class TestTaskModel:
    def test_digest_is_stable_across_calls(self):
        task = Task(key="a", fn="m:f", payload={"x": 1, "y": [1, 2]})
        assert task.digest() == task.digest()

    def test_digest_changes_with_key_fn_and_payload(self):
        base = Task(key="a", fn="m:f", payload={"x": 1})
        assert base.digest() != Task(key="b", fn="m:f", payload={"x": 1}).digest()
        assert base.digest() != Task(key="a", fn="m:g", payload={"x": 1}).digest()
        assert base.digest() != Task(key="a", fn="m:f", payload={"x": 2}).digest()

    def test_digest_ignores_payload_key_order(self):
        left = Task(key="a", fn="m:f", payload={"x": 1, "y": 2})
        right = Task(key="a", fn="m:f", payload={"y": 2, "x": 1})
        assert left.digest() == right.digest()

    def test_task_set_rejects_duplicate_keys(self):
        task_set = TaskSet(name="dupes", tasks=[
            Task(key="same", fn="m:f", payload={}),
            Task(key="same", fn="m:f", payload={}),
        ])
        with pytest.raises(ValidationError):
            task_set.validate()

    def test_fn_must_be_dotted_reference(self):
        with pytest.raises(ValidationError):
            Task(key="a", fn="not-a-reference", payload={}).validate()

    def test_non_json_payload_is_rejected(self):
        # sets stringify non-deterministically across processes; strict JSON
        # canonicalization must refuse them instead of corrupting digests
        with pytest.raises(TypeError):
            Task(key="a", fn="m:f", payload={"tags": {"a", "b"}}).validate()

    def test_package_version_participates_in_digest(self, monkeypatch):
        import repro.exec.task as task_module

        task = Task(key="a", fn="m:f", payload={"x": 1})
        before = task.digest()
        monkeypatch.setattr(task_module, "_PACKAGE_VERSION", "0.0.0-test")
        assert task.digest() != before  # a release boundary invalidates caches

    def test_resolve_worker_errors(self):
        with pytest.raises(ValueError):
            resolve_worker("repro.exec.demo")  # no colon
        with pytest.raises(ValueError):
            resolve_worker("repro.exec.demo:nope")
        assert resolve_worker("repro.exec.demo:square")({"x": 3}) == 9


# ---------------------------------------------------------------------------
# shard/chunk policy
# ---------------------------------------------------------------------------
class TestSharding:
    def test_groups_stay_whole_within_chunks(self):
        task_set = square_tasks(12, group_of=lambda index: f"g{index % 3}")
        chunks = shard_tasks(task_set.tasks, jobs=2, chunk_size=100)
        # every chunk is single-group
        for chunk in chunks:
            assert len({task.group for task in chunk}) == 1
        # all twelve tasks survive sharding exactly once
        keys = [task.key for chunk in chunks for task in chunk]
        assert sorted(keys) == sorted(task_set.keys())

    def test_chunk_size_splits_large_groups(self):
        task_set = square_tasks(10)
        chunks = shard_tasks(task_set.tasks, jobs=2, chunk_size=3)
        assert [len(chunk) for chunk in chunks] == [3, 3, 3, 1]

    def test_auto_chunking_targets_four_chunks_per_worker(self):
        task_set = square_tasks(32)
        chunks = shard_tasks(task_set.tasks, jobs=4, chunk_size=None)
        assert len(chunks) == 16

    def test_empty_task_list(self):
        assert shard_tasks([], jobs=4) == []


# ---------------------------------------------------------------------------
# serial vs parallel equivalence
# ---------------------------------------------------------------------------
class TestEquivalence:
    def test_values_identical_across_executors(self):
        task_set = square_tasks(10, group_of=lambda index: f"g{index % 2}")
        serial = run_tasks(task_set, executor=SerialExecutor())
        parallel = run_tasks(task_set, executor=ParallelExecutor(jobs=3, chunk_size=2))
        assert serial.values() == parallel.values() == [i * i for i in range(10)]

    def test_results_come_back_in_task_order(self):
        task_set = square_tasks(9)
        report = run_tasks(task_set, jobs=3, chunk_size=1)
        assert [result.key for result in report.results] == task_set.keys()

    def test_jobs_one_uses_serial_path(self):
        report = run_tasks(square_tasks(3), jobs=1)
        assert report.jobs == 1 and report.ok

    def test_serial_run_clears_worker_contexts(self):
        from repro.benchmark.runner import BenchmarkConfig
        from repro.exec.workers import _CONTEXT_CACHE

        config = BenchmarkConfig(traffic_node_count=10, traffic_edge_count=10)
        task_set = TaskSet(name="ctx", tasks=[
            Task(key="cell", fn="repro.benchmark.tasks:run_benchmark_cell",
                 payload={
                     "config": config.to_payload(),
                     "app": {"kind": "generated", "application": "traffic_analysis"},
                     "backend": "networkx", "query_id": "ta-e1", "model": "gpt-4",
                 })])
        report = run_tasks(task_set, jobs=1)
        assert report.ok
        # the memoized application must not outlive the serial dispatch
        assert not any(key[0] == "benchmark-application" for key in _CONTEXT_CACHE)


# ---------------------------------------------------------------------------
# the result cache
# ---------------------------------------------------------------------------
class TestCache:
    def test_first_run_misses_second_run_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task_set = square_tasks(6)
        first = run_tasks(task_set, cache=cache)
        second = run_tasks(task_set, cache=cache)
        assert first.cache_hits == 0 and first.executed == 6
        assert second.cache_hits == 6 and second.executed == 0
        assert first.values() == second.values()

    def test_cache_skips_recomputation(self, tmp_path):
        log_path = tmp_path / "executions.log"
        cache = ResultCache(tmp_path / "cache")
        task_set = TaskSet(name="logged", tasks=[
            Task(key="cell", fn="repro.exec.demo:record_and_echo",
                 payload={"value": 42, "log_path": str(log_path)})])
        run_tasks(task_set, cache=cache)
        run_tasks(task_set, cache=cache)
        # one execution despite two runs: the second was served from disk
        assert log_path.read_text().splitlines() == ["42"]

    def test_changed_task_invalidates_naturally(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        original = TaskSet(name="one", tasks=[
            Task(key="cell", fn="repro.exec.demo:square", payload={"x": 3})])
        run_tasks(original, cache=cache)

        changed_payload = TaskSet(name="one", tasks=[
            Task(key="cell", fn="repro.exec.demo:square", payload={"x": 4})])
        report = run_tasks(changed_payload, cache=cache)
        assert report.cache_hits == 0 and report.values() == [16]

        changed_key = TaskSet(name="one", tasks=[
            Task(key="renamed-cell", fn="repro.exec.demo:square", payload={"x": 3})])
        report = run_tasks(changed_key, cache=cache)
        assert report.cache_hits == 0 and report.values() == [9]

    def test_failures_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task_set = TaskSet(name="boom", tasks=[
            Task(key="bad", fn="repro.exec.demo:boom", payload={})])
        run_tasks(task_set, cache=cache)
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = Task(key="cell", fn="repro.exec.demo:square", payload={"x": 5})
        run_tasks(TaskSet(name="one", tasks=[task]), cache=cache)
        cache.entry_path(task.digest()).write_bytes(b"not a pickle")
        report = run_tasks(TaskSet(name="one", tasks=[task]), cache=cache)
        assert report.cache_hits == 0 and report.values() == [25]

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_tasks(square_tasks(4), cache=cache)
        assert len(cache) == 4
        assert cache.clear() == 4
        assert len(cache) == 0

    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "cache", max_entries=3)
        tasks = [Task(key=f"cell-{i}", fn="repro.exec.demo:square",
                      payload={"x": i}) for i in range(3)]
        for index, task in enumerate(tasks):
            run_tasks(TaskSet(name="one", tasks=[task]), cache=cache)
            # spread mtimes so LRU order is unambiguous on coarse filesystems
            os.utime(cache.entry_path(task.digest()), (index, index))
        assert len(cache) == 3

        # touching cell-0 via a hit refreshes its recency past cell-1/cell-2
        hit, value = cache.get(tasks[0].digest())
        assert hit and value == 0

        newcomer = Task(key="cell-9", fn="repro.exec.demo:square",
                        payload={"x": 9})
        run_tasks(TaskSet(name="one", tasks=[newcomer]), cache=cache)
        assert len(cache) == 3
        assert cache.get(tasks[0].digest())[0]        # refreshed: survives
        assert not cache.get(tasks[1].digest())[0]    # stalest: evicted
        assert cache.get(newcomer.digest())[0]

    def test_max_entries_bounds_growth_across_runs(self, tmp_path):
        # the ROADMAP follow-up: a long-lived cache directory swept by many
        # differing configurations must stop growing once it hits the bound
        cache = ResultCache(tmp_path / "cache", max_entries=5)
        for batch in range(4):
            tasks = [Task(key=f"cell-{batch}-{i}", fn="repro.exec.demo:square",
                          payload={"x": batch * 10 + i}) for i in range(4)]
            run_tasks(TaskSet(name=f"run-{batch}", tasks=tasks), cache=cache)
            assert len(cache) <= 5
        assert len(cache) == 5

    def test_max_entries_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="at least 1"):
            ResultCache(tmp_path / "cache", max_entries=0)

    def test_hit_survives_entry_vanishing_before_recency_refresh(
            self, tmp_path, monkeypatch):
        # regression: a concurrent evictor can unlink the entry between the
        # successful pickle load and the os.utime recency refresh; the raised
        # OSError must not crash the hit path, and the hit must still count
        import os

        cache = ResultCache(tmp_path / "cache")
        task = Task(key="cell", fn="repro.exec.demo:square", payload={"x": 6})
        run_tasks(TaskSet(name="one", tasks=[task]), cache=cache)

        def vanished(*args, **kwargs):
            raise OSError("entry evicted concurrently")

        monkeypatch.setattr(os, "utime", vanished)
        hit, value = cache.get(task.digest())
        assert hit and value == 36
        assert cache.hits == 1

    def test_eviction_tie_break_honours_store_order_not_path(self, tmp_path):
        # regression: on 1s-granularity filesystems a burst of stores ties on
        # mtime and a path tie-break made eviction effectively alphabetical;
        # the store sequence stamped into each entry must win instead
        import os

        cache = ResultCache(tmp_path / "cache", max_entries=2)
        # store order deliberately anti-alphabetical: the digest of 'first'
        # sorts *after* the digest of 'second' in the cache directory
        first = Task(key="zz-first", fn="repro.exec.demo:square", payload={"x": 2})
        second = Task(key="aa-second", fn="repro.exec.demo:square", payload={"x": 3})
        ordered = sorted([first, second],
                         key=lambda task: str(cache.entry_path(task.digest())))
        first, second = ordered[-1], ordered[0]
        run_tasks(TaskSet(name="one", tasks=[first]), cache=cache)
        run_tasks(TaskSet(name="one", tasks=[second]), cache=cache)
        # collapse both entries onto one timestamp granule
        for task in (first, second):
            os.utime(cache.entry_path(task.digest()), ns=(1_000_000_000,
                                                          1_000_000_000))
        newcomer = Task(key="mm-third", fn="repro.exec.demo:square", payload={"x": 4})
        run_tasks(TaskSet(name="one", tasks=[newcomer]), cache=cache)
        assert len(cache) == 2
        assert not cache.get(first.digest())[0]   # oldest store: evicted
        assert cache.get(second.digest())[0]      # newer store: survives
        assert cache.get(newcomer.digest())[0]


# ---------------------------------------------------------------------------
# failure surfacing
# ---------------------------------------------------------------------------
class TestFailures:
    def test_worker_exception_is_a_per_task_error(self):
        task_set = TaskSet(name="mixed", tasks=[
            Task(key="bad", fn="repro.exec.demo:boom", payload={"message": "kapow"}),
            Task(key="good", fn="repro.exec.demo:square", payload={"x": 2}),
        ])
        report = run_tasks(task_set, jobs=2, chunk_size=1)
        assert not report.ok
        assert "kapow" in report.results[0].error
        assert report.results[1].ok and report.results[1].value == 4
        with pytest.raises(TaskExecutionError) as excinfo:
            report.values()
        assert "bad" in str(excinfo.value)

    def test_hard_worker_crash_surfaces_not_hangs(self):
        """A worker killed mid-task must yield an error, and innocent tasks
        sharing the (broken) pool must still complete via the isolated retry."""
        task_set = TaskSet(name="crashy", tasks=[
            Task(key="crash", fn="repro.exec.demo:hard_crash", payload={}, group="a"),
            Task(key="ok-1", fn="repro.exec.demo:square", payload={"x": 5}, group="b"),
            Task(key="ok-2", fn="repro.exec.demo:square", payload={"x": 6}, group="c"),
        ])
        report = run_tasks(task_set, jobs=2, chunk_size=1)
        by_key = {result.key: result for result in report.results}
        assert not by_key["crash"].ok
        assert "crashed" in by_key["crash"].error
        assert by_key["ok-1"].value == 25
        assert by_key["ok-2"].value == 36

    def test_serial_executor_also_captures_exceptions(self):
        report = run_tasks(TaskSet(name="boom", tasks=[
            Task(key="bad", fn="repro.exec.demo:boom", payload={})]), jobs=1)
        assert not report.ok and "boom" in report.results[0].error


# ---------------------------------------------------------------------------
# the run report
# ---------------------------------------------------------------------------
class TestRunReport:
    def test_telemetry_fields(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task_set = square_tasks(4)
        run_tasks(task_set, cache=cache)
        report = run_tasks(task_set, cache=cache)
        dumped = report.to_dict()
        assert dumped["tasks"] == 4
        assert dumped["cache_hits"] == 4
        assert dumped["failed"] == 0
        assert len(dumped["results"]) == 4
        assert "squares" in report.summary()

    def test_value_by_key(self):
        report = run_tasks(square_tasks(3))
        assert report.value_by_key() == {"sq/0": 0, "sq/1": 1, "sq/2": 4}
