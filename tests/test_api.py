"""Tests for the :mod:`repro.api` facade and the load-test machinery.

The facade's contract: query resolution accepts corpus ids and free text,
answers come from the exact benchmark workers (so facade verdicts equal
batch-benchmark verdicts cell for cell), batches dedupe and keep request
order, and the Zipf load-test mix plus its CI regression gate are
deterministic functions of their inputs.
"""

import json
import sys
from pathlib import Path

import pytest

from repro import api
from repro.api import QuerySpec, QueryAnswer
from repro.benchmark.queries import temporal_queries_for
from repro.exec import ExecutorPolicy
from repro.serve.loadtest import (
    LoadTestConfig,
    LoadTestReport,
    build_query_mix,
    percentile,
    zipf_weights,
)
from repro.utils.validation import ValidationError

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
from check_loadtest_regression import main as loadtest_gate_main  # noqa: E402


# ---------------------------------------------------------------------------
# scenario corpus + query resolution
# ---------------------------------------------------------------------------
class TestScenarioCorpus:
    def test_list_scenarios_documents_query_corpora(self):
        documents = api.list_scenarios()
        assert documents
        by_name = {doc["name"]: doc for doc in documents}
        failover = by_name["fat-tree-failover"]
        assert failover["queries"]["temporal"]  # tq-* ids
        assert failover["queries"]["static"]    # family corpus ids

    def test_load_scenario_rejects_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown scenario"):
            api.load_scenario("no-such-scenario")


class TestQueryResolution:
    def test_resolves_corpus_id_exactly(self):
        resolved = api.resolve_query("fat-tree-failover", "tq-e1")
        assert resolved.query_id == "tq-e1"

    def test_resolves_natural_language_text(self):
        spec = api.load_scenario("fat-tree-failover")
        canonical = temporal_queries_for(spec.name)[0]
        mangled = canonical.text.upper().rstrip("?") + "?"
        assert api.resolve_query(spec, mangled).query_id == canonical.query_id

    def test_unknown_query_names_the_scenario(self):
        with pytest.raises(ValidationError, match="fat-tree-failover"):
            api.resolve_query("fat-tree-failover", "what is the meaning of life")


# ---------------------------------------------------------------------------
# answers
# ---------------------------------------------------------------------------
class TestAnswers:
    def test_temporal_answer_matches_golden(self):
        answer = api.answer_temporal_query("fat-tree-failover", "tq-e1")
        assert isinstance(answer, QueryAnswer)
        assert answer.kind == "temporal"
        assert answer.backend == "direct"
        assert answer.passed
        assert answer.answer is not None
        assert answer.record is not None and answer.record.passed

    def test_static_answer_through_codegen(self):
        answer = api.answer_query("fat-tree-failover", "ta-e1")
        assert answer.kind == "static"
        assert answer.backend == "networkx"
        assert answer.answer is not None or answer.failure_stage

    def test_answer_matches_batch_benchmark_verdict(self):
        """The facade's verdict IS the benchmark's verdict for the cell."""
        from repro.benchmark.runner import BenchmarkConfig, BenchmarkRunner

        answer = api.answer_temporal_query("fat-tree-failover", "tq-e1",
                                           model="gpt-4")
        report = BenchmarkRunner(BenchmarkConfig()).run_temporal_suite(
            scenarios=["fat-tree-failover"], models=["gpt-4"])
        twin = [record for record in report.logger.records
                if record.query_id == "tq-e1" and record.backend == "direct"]
        assert twin and twin[0].passed == answer.passed

    def test_batch_dedupes_and_preserves_request_order(self):
        requests = [QuerySpec("fat-tree-failover", "tq-e1"),
                    QuerySpec("fat-tree-failover", "tq-h1"),
                    QuerySpec("fat-tree-failover", "tq-e1")]
        answers = api.answer_queries(requests)
        assert [a.query_id for a in answers] == ["tq-e1", "tq-h1", "tq-e1"]
        assert answers[0].answer == answers[2].answer

    def test_batch_is_identical_across_executors(self):
        requests = [QuerySpec("fat-tree-failover", query.query_id)
                    for query in temporal_queries_for("fat-tree-failover")]
        serial = api.answer_queries(requests, policy=ExecutorPolicy.serial())
        threaded = api.answer_queries(requests,
                                      policy=ExecutorPolicy.threads(jobs=3))
        strip = ("duration_s", "cached")
        for left, right in zip(serial, threaded):
            left_doc, right_doc = left.to_document(), right.to_document()
            for key in strip:
                left_doc.pop(key), right_doc.pop(key)
            assert left_doc == right_doc

    def test_temporal_entry_point_rejects_static_queries(self):
        with pytest.raises(ValidationError, match="not a temporal query"):
            api.answer_temporal_query("fat-tree-failover", "ta-e1")

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValidationError):
            api.answer_query("fat-tree-failover", "tq-e1", backend="strawman")

    def test_ask_freeform(self):
        result = api.ask("how many nodes are in the network",
                         nodes=30, edges=30)
        assert result.succeeded
        assert result.result_value == 30


# ---------------------------------------------------------------------------
# the load-test mix
# ---------------------------------------------------------------------------
class TestLoadTestMix:
    def test_mix_is_deterministic(self):
        config = LoadTestConfig(duration_s=5, qps=10, seed=11)
        assert build_query_mix(config) == build_query_mix(config)

    def test_seed_changes_schedule(self):
        base = build_query_mix(LoadTestConfig(duration_s=5, qps=10, seed=1))
        other = build_query_mix(LoadTestConfig(duration_s=5, qps=10, seed=2))
        assert base != other

    def test_zipf_head_dominates(self):
        weights = zipf_weights(10, 1.1)
        assert weights[0] == 1.0
        assert weights == sorted(weights, reverse=True)
        mix = build_query_mix(LoadTestConfig(duration_s=20, qps=10, seed=7))
        counts = {}
        for body in mix:
            key = (body["scenario"], body["query"])
            counts[key] = counts.get(key, 0) + 1
        head = max(counts.values())
        assert head > len(mix) / len(counts)  # heavier than uniform

    def test_scenario_restriction(self):
        mix = build_query_mix(LoadTestConfig(
            duration_s=3, qps=5, scenarios=["fat-tree-failover"]))
        assert {body["scenario"] for body in mix} == {"fat-tree-failover"}

    def test_unknown_scenario_is_an_error(self):
        with pytest.raises(ValidationError):
            build_query_mix(LoadTestConfig(scenarios=["nope"]))

    def test_percentile_nearest_rank(self):
        samples = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert percentile(samples, 0.50) == 0.3
        assert percentile(samples, 0.95) == 0.5
        assert percentile([], 0.5) is None

    def test_report_document_schema(self):
        report = LoadTestReport(target_qps=5, duration_s=2, sent=10,
                                completed=9, failed=1, wall_s=2.0,
                                latencies_s=[0.01] * 9,
                                status_counts={"200": 9, "500": 1})
        document = report.to_document()
        assert document["throughput_qps"] == 4.5
        assert document["latency_s"]["p95"] == 0.01
        assert json.loads(json.dumps(document)) == document


# ---------------------------------------------------------------------------
# the CI gate
# ---------------------------------------------------------------------------
def _report(path, p95=0.010, throughput=8.0, completed=24, failed=0):
    document = {
        "completed": completed, "failed": failed, "sent": completed + failed,
        "throughput_qps": throughput,
        "latency_s": {"p50": p95 / 2, "p95": p95, "p99": p95 * 1.2},
    }
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


class TestLoadTestGate:
    def test_matching_reports_pass(self, tmp_path, capsys):
        base = _report(tmp_path / "base.json")
        current = _report(tmp_path / "cur.json")
        assert loadtest_gate_main(["--report", str(current),
                                   "--baseline", str(base)]) == 0

    def test_p95_regression_fails(self, tmp_path):
        base = _report(tmp_path / "base.json", p95=0.010)
        current = _report(tmp_path / "cur.json", p95=0.080)  # 8x and >floor
        assert loadtest_gate_main(["--report", str(current),
                                   "--baseline", str(base)]) == 1

    def test_abs_floor_shields_fast_paths(self, tmp_path):
        # 10x ratio but only +4.5ms absolute: runner noise, not a regression
        base = _report(tmp_path / "base.json", p95=0.0005)
        current = _report(tmp_path / "cur.json", p95=0.005)
        assert loadtest_gate_main(["--report", str(current),
                                   "--baseline", str(base)]) == 0

    def test_throughput_collapse_fails(self, tmp_path):
        base = _report(tmp_path / "base.json", throughput=10.0)
        current = _report(tmp_path / "cur.json", throughput=1.0)
        assert loadtest_gate_main(["--report", str(current),
                                   "--baseline", str(base)]) == 1

    def test_failed_requests_fail_the_gate(self, tmp_path):
        base = _report(tmp_path / "base.json")
        current = _report(tmp_path / "cur.json", failed=3)
        assert loadtest_gate_main(["--report", str(current),
                                   "--baseline", str(base)]) == 1

    def test_too_few_samples_produce_no_verdict(self, tmp_path, capsys):
        base = _report(tmp_path / "base.json")
        current = _report(tmp_path / "cur.json", completed=3, p95=9.9)
        assert loadtest_gate_main(["--report", str(current),
                                   "--baseline", str(base)]) == 0
        assert "no verdict" in capsys.readouterr().out
