"""Tests for the property-graph substrate (model, diff, serialization, stats, convert)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frames import DataFrame
from repro.graph import (
    GraphError,
    PropertyGraph,
    compute_stats,
    diff_graphs,
    from_networkx,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_edge_list,
    graph_to_json,
    graphs_equal,
    to_frames,
    to_networkx,
    to_sql_database,
)
from repro.graph.convert import from_frames, from_sql_database
from repro.graph.diff import ABSENT
from repro.graph.stats import degree_histogram, top_nodes_by_weight
from repro.utils.validation import ValidationError


def build_sample() -> PropertyGraph:
    graph = PropertyGraph("sample")
    graph.add_node("a", address="10.0.0.1", type="host")
    graph.add_node("b", address="10.0.1.2", type="router")
    graph.add_node("c", address="15.76.0.9", type="host")
    graph.add_edge("a", "b", bytes=100, packets=4)
    graph.add_edge("b", "a", bytes=50, packets=2)
    graph.add_edge("b", "c", bytes=10, packets=1)
    return graph


class TestPropertyGraphBasics:
    def test_add_and_count(self):
        graph = build_sample()
        assert graph.node_count == 3
        assert graph.edge_count == 3
        assert len(graph) == 3
        assert "a" in graph

    def test_node_attribute_merge(self):
        graph = PropertyGraph()
        graph.add_node("x", color="red")
        graph.add_node("x", size=3)
        assert graph.node_attributes("x") == {"color": "red", "size": 3}

    def test_add_edge_autocreates_nodes(self):
        graph = PropertyGraph()
        graph.add_edge("u", "v", weight=1)
        assert graph.has_node("u") and graph.has_node("v")

    def test_remove_node_removes_incident_edges(self):
        graph = build_sample()
        graph.remove_node("b")
        assert graph.edge_count == 0
        assert not graph.has_node("b")

    def test_remove_edge(self):
        graph = build_sample()
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")

    def test_missing_node_raises(self):
        graph = build_sample()
        with pytest.raises(GraphError):
            graph.node_attributes("missing")
        with pytest.raises(GraphError):
            graph.remove_node("missing")

    def test_missing_edge_raises(self):
        graph = build_sample()
        with pytest.raises(GraphError):
            graph.edge_attributes("a", "c")

    def test_degrees(self):
        graph = build_sample()
        assert graph.out_degree("b") == 2
        assert graph.in_degree("b") == 1
        assert graph.degree("b") == 3
        assert graph.out_degree("b", weight="bytes") == 60

    def test_neighbors_union(self):
        graph = build_sample()
        assert set(graph.neighbors("b")) == {"a", "c"}

    def test_find_nodes_and_edges(self):
        graph = build_sample()
        assert graph.find_nodes(type="host") == ["a", "c"]
        assert graph.find_edges(bytes=50) == [("b", "a")]

    def test_subgraph(self):
        graph = build_sample()
        sub = graph.subgraph(["a", "b"])
        assert sub.node_count == 2
        assert sub.edge_count == 2
        # deep copy: mutating the subgraph leaves the original untouched
        sub.node_attributes("a")["type"] = "changed"
        assert graph.node_attributes("a")["type"] == "host"

    def test_subgraph_unknown_node(self):
        with pytest.raises(ValidationError):
            build_sample().subgraph(["a", "zz"])

    def test_copy_is_deep(self):
        graph = build_sample()
        duplicate = graph.copy()
        duplicate.edge_attributes("a", "b")["bytes"] = 999
        assert graph.edge_attributes("a", "b")["bytes"] == 100

    def test_total_edge_weight(self):
        assert build_sample().total_edge_weight("bytes") == 160

    def test_undirected_graph_edge_symmetry(self):
        graph = PropertyGraph(directed=False)
        graph.add_edge("a", "b", weight=1)
        assert graph.has_edge("b", "a")
        assert graph.edge_count == 1

    def test_equality_uses_structure(self):
        graph = build_sample()
        assert graph == build_sample()
        other = build_sample()
        other.set_node_attribute("a", "type", "router")
        assert graph != other


class TestGraphDiff:
    def test_identical_graphs(self):
        diff = diff_graphs(build_sample(), build_sample())
        assert diff.is_empty
        assert diff.summary() == "graphs are identical"

    def test_missing_node_detected(self):
        left = build_sample()
        right = build_sample()
        right.remove_node("c")
        diff = diff_graphs(left, right)
        assert diff.missing_nodes == ["c"]
        assert not diff.is_empty

    def test_extra_edge_detected(self):
        right = build_sample()
        right.add_edge("a", "c", bytes=1)
        diff = diff_graphs(build_sample(), right)
        assert ("a", "c") in diff.extra_edges

    def test_attribute_mismatch_detected(self):
        right = build_sample()
        right.set_edge_attribute("a", "b", "bytes", 101)
        diff = diff_graphs(build_sample(), right)
        assert diff.edge_attribute_mismatches
        assert "bytes" in diff.summary()

    def test_float_tolerance(self):
        left = build_sample()
        right = build_sample()
        right.set_edge_attribute("a", "b", "bytes", 100.0 + 1e-12)
        assert graphs_equal(left, right)

    def test_absent_sentinel_not_confused_with_literal_string(self):
        # regression: the missing-attribute marker used to be the string
        # "<absent>", so an attribute whose *real value* was "<absent>" on
        # one side and missing on the other compared equal and the diff was
        # silently empty
        left = build_sample()
        right = build_sample()
        left.set_node_attribute("a", "marker", "<absent>")
        diff = diff_graphs(left, right)
        assert ("a", "marker", "<absent>", ABSENT) in diff.node_attribute_mismatches
        assert not graphs_equal(left, right)

    def test_absent_sentinel_renders_in_summary(self):
        left = build_sample()
        right = build_sample()
        right.set_node_attribute("a", "extra", 1)
        diff = diff_graphs(left, right)
        assert ("a", "extra", ABSENT, 1) in diff.node_attribute_mismatches
        assert "<absent>" in diff.summary()

    def test_absent_sentinel_is_a_pickle_stable_singleton(self):
        import pickle

        assert pickle.loads(pickle.dumps(ABSENT)) is ABSENT
        assert ABSENT == ABSENT
        assert ABSENT != "<absent>"

    def test_matching_literal_absent_strings_still_equal(self):
        left = build_sample()
        right = build_sample()
        left.set_node_attribute("a", "marker", "<absent>")
        right.set_node_attribute("a", "marker", "<absent>")
        assert graphs_equal(left, right)


class TestSerialization:
    def test_dict_roundtrip(self):
        graph = build_sample()
        assert graphs_equal(graph, graph_from_dict(graph_to_dict(graph)))

    def test_json_roundtrip(self):
        graph = build_sample()
        assert graphs_equal(graph, graph_from_json(graph_to_json(graph)))

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValidationError):
            graph_from_dict({"nodes": [{}]})

    def test_edge_list_projection(self):
        records = graph_to_edge_list(build_sample(), weight_keys=["bytes"])
        assert all(set(record) == {"source", "target", "bytes"} for record in records)
        assert len(records) == 3


class TestStats:
    def test_compute_stats(self):
        stats = compute_stats(build_sample())
        assert stats.node_count == 3
        assert stats.edge_count == 3
        assert stats.node_type_counts == {"host": 2, "router": 1}
        assert stats.edge_weight_totals["bytes"] == 160
        assert stats.isolated_nodes == 0

    def test_degree_histogram(self):
        histogram = degree_histogram(build_sample())
        assert sum(histogram.values()) == 3

    def test_top_nodes_by_weight(self):
        top = top_nodes_by_weight(build_sample(), "bytes", k=1, direction="out")
        assert top[0][0] == "a"
        with pytest.raises(ValueError):
            top_nodes_by_weight(build_sample(), "bytes", direction="sideways")


class TestConversions:
    def test_networkx_roundtrip(self):
        graph = build_sample()
        assert graphs_equal(graph, from_networkx(to_networkx(graph)))

    def test_networkx_has_attributes(self):
        nx_graph = to_networkx(build_sample())
        assert nx_graph.nodes["a"]["address"] == "10.0.0.1"
        assert nx_graph.edges["a", "b"]["bytes"] == 100

    def test_frames_roundtrip(self):
        graph = build_sample()
        nodes_df, edges_df = to_frames(graph)
        assert isinstance(nodes_df, DataFrame)
        assert len(nodes_df) == 3 and len(edges_df) == 3
        assert graphs_equal(graph, from_frames(nodes_df, edges_df))

    def test_sql_roundtrip(self):
        graph = build_sample()
        database = to_sql_database(graph)
        assert database.table("nodes").columns[0] == "id"
        assert graphs_equal(graph, from_sql_database(database))


# ---------------------------------------------------------------------------
# property-based roundtrips
# ---------------------------------------------------------------------------
_node_ids = st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=4),
                     min_size=2, max_size=8, unique=True)


@st.composite
def random_graph(draw):
    ids = draw(_node_ids)
    graph = PropertyGraph("random")
    for node_id in ids:
        graph.add_node(node_id, weight=draw(st.integers(0, 100)))
    edge_count = draw(st.integers(0, min(10, len(ids) * (len(ids) - 1))))
    for _ in range(edge_count):
        source = draw(st.sampled_from(ids))
        target = draw(st.sampled_from(ids))
        if source != target:
            graph.add_edge(source, target, bytes=draw(st.integers(0, 1000)))
    return graph


@settings(max_examples=30, deadline=None)
@given(random_graph())
def test_json_roundtrip_property(graph):
    assert graphs_equal(graph, graph_from_json(graph_to_json(graph)))


@settings(max_examples=30, deadline=None)
@given(random_graph())
def test_frames_roundtrip_property(graph):
    nodes_df, edges_df = to_frames(graph)
    assert graphs_equal(graph, from_frames(nodes_df, edges_df))


@settings(max_examples=30, deadline=None)
@given(random_graph())
def test_networkx_roundtrip_property(graph):
    assert graphs_equal(graph, from_networkx(to_networkx(graph)))


@settings(max_examples=30, deadline=None)
@given(random_graph())
def test_copy_equals_original_property(graph):
    assert graphs_equal(graph, graph.copy())
