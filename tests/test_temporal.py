"""Tests for temporal golden answers over scenario timelines.

Covers the temporal query corpus, the timeline-aware reference semantics,
the content-keyed :class:`TemporalGoldenSelector`, the fabric worker's
payload round-trip, and the end-to-end determinism contract: replaying a
corpus spec twice yields identical goldens and digests, and serial vs
``--jobs 2`` temporal sweeps produce byte-identical tables.
"""

import pytest

from repro.benchmark import (
    BenchmarkConfig,
    BenchmarkRunner,
    TemporalGoldenSelector,
    temporal_queries,
    temporal_queries_for,
    temporal_query_by_id,
    temporal_scenario_names,
)
from repro.benchmark.queries import temporal_bucket_size
from repro.benchmark.tasks import run_temporal_cell, temporal_cell_task
from repro.cli import main
from repro.exec import ExecutorPolicy, ResultCache
from repro.exec.workers import clear_worker_contexts
from repro.scenarios import get_scenario, replay_scenario
from repro.synthesis.reference import (
    evaluate_temporal_reference,
    supported_temporal_intents,
)
from repro.utils.validation import ValidationError


@pytest.fixture(autouse=True)
def _isolate_worker_contexts():
    # temporal workers memoize replayed timelines per process; tests must not
    # observe each other's memos
    clear_worker_contexts()
    yield
    clear_worker_contexts()


# ---------------------------------------------------------------------------
# corpus shape
# ---------------------------------------------------------------------------
class TestTemporalCorpus:
    def test_corpus_size_and_scenario_coverage(self):
        assert len(temporal_queries()) >= 10
        assert len(temporal_scenario_names()) >= 4
        assert temporal_scenario_names() == sorted(
            {q.scenario for q in temporal_queries()})

    def test_query_ids_unique(self):
        ids = [query.query_id for query in temporal_queries()]
        assert len(ids) == len(set(ids))

    def test_every_query_targets_a_registered_scenario(self):
        for query in temporal_queries():
            assert get_scenario(query.scenario).name == query.scenario

    def test_every_intent_has_a_temporal_reference(self):
        supported = set(supported_temporal_intents())
        for query in temporal_queries():
            assert query.intent.name in supported

    def test_difficulty_ranks_are_a_permutation_per_bucket(self):
        for complexity in ("easy", "medium", "hard"):
            ranks = sorted(q.difficulty_rank for q in temporal_queries()
                           if q.complexity == complexity)
            assert ranks == list(range(temporal_bucket_size(complexity)))

    def test_anchor_time_is_latest_referenced_time(self):
        assert temporal_query_by_id("tq-m1").anchor_time == 2.0
        assert temporal_query_by_id("tq-e3").anchor_time is None  # whole timeline

    def test_metadata_carries_calibration_inputs(self):
        metadata = temporal_query_by_id("tq-m1").metadata(bucket_size=4)
        for key in ("application", "complexity", "difficulty_rank",
                    "bucket_size", "scenario", "intent"):
            assert key in metadata

    def test_query_by_id_unknown(self):
        with pytest.raises(KeyError):
            temporal_query_by_id("tq-nope")


# ---------------------------------------------------------------------------
# timeline-aware reference semantics
# ---------------------------------------------------------------------------
class TestTemporalReference:
    def test_failed_links_since_window(self):
        timeline = replay_scenario(get_scenario("fat-tree-failover"))
        query = temporal_query_by_id("tq-m1")
        outcome = evaluate_temporal_reference(timeline, query.intent)
        # the fat-tree fabric is undirected; the pair surfaces in the graph's
        # canonical storage orientation
        assert outcome.value == [["core-0", "pod0-agg0"]]

    def test_failed_links_with_repair_outside_window_is_empty(self):
        # the fat-tree uplink is repaired at t=5, so a window reaching the
        # final snapshot sees no net failure
        from repro.synthesis.intents import Intent

        timeline = replay_scenario(get_scenario("fat-tree-failover"))
        outcome = evaluate_temporal_reference(
            timeline, Intent.create("failed_links_since", since=0.0))
        assert outcome.value == []

    def test_churned_nodes_between(self):
        timeline = replay_scenario(get_scenario("manet-churn"))
        outcome = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-m3").intent)
        assert outcome.value == {"departed": ["mn-0", "mn-5"], "joined": []}

    def test_capacity_drop_is_positive_after_degradation(self):
        timeline = replay_scenario(get_scenario("manet-churn"))
        outcome = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-h3").intent)
        assert outcome.value > 0

    def test_degraded_links_at(self):
        timeline = replay_scenario(get_scenario("fat-tree-failover"))
        outcome = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-h1").intent)
        assert outcome.value  # the t=2 degradation halved pod0-agg0's links
        for source, target in outcome.value:
            assert "pod0-agg0" in (source, target)

    def test_traffic_change_matches_surge_factor(self):
        timeline = replay_scenario(get_scenario("traffic-flashcrowd"))
        outcome = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-h4").intent)
        initial = sum(attrs.get("bytes", 0) for _, _, attrs
                      in timeline.initial_graph.edges(data=True))
        surged = sum(attrs.get("bytes", 0) for _, _, attrs
                     in timeline.graph_at(1.0).edges(data=True))
        assert outcome.value == surged - initial
        assert outcome.value > 0

    def test_peak_traffic_time_is_the_surge(self):
        timeline = replay_scenario(get_scenario("traffic-flashcrowd"))
        outcome = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-e4").intent)
        assert outcome.value == 1.0

    def test_counts_at_snapshot(self):
        timeline = replay_scenario(get_scenario("wan-fiber-cut"))
        outcome = evaluate_temporal_reference(
            timeline, temporal_query_by_id("tq-e2").intent)
        assert outcome.value == 9  # pop-3 is dark at t=4

    def test_unknown_temporal_intent_raises(self):
        from repro.synthesis.intents import Intent

        timeline = replay_scenario(get_scenario("wan-fiber-cut"))
        with pytest.raises(ValidationError):
            evaluate_temporal_reference(timeline, Intent.create("no_such_intent"))


# ---------------------------------------------------------------------------
# the temporal golden selector
# ---------------------------------------------------------------------------
class TestTemporalGoldenSelector:
    def test_goldens_cached_by_timeline_content(self):
        selector = TemporalGoldenSelector()
        query = temporal_query_by_id("tq-m1")
        spec = get_scenario("fat-tree-failover")
        first = selector.golden_for(query, replay_scenario(spec))
        # a *different replay* of the same spec shares the cache entry —
        # the key is the snapshot-digest fingerprint, not object identity
        second = selector.golden_for(query, replay_scenario(spec))
        assert first is second
        assert len(selector) == 1

    def test_different_timelines_get_distinct_entries(self):
        selector = TemporalGoldenSelector()
        query = temporal_query_by_id("tq-m1")
        base = get_scenario("fat-tree-failover")
        selector.golden_for(query, replay_scenario(base))
        reseeded = get_scenario("fat-tree-failover")
        reseeded.seed = 99
        selector.golden_for(query, replay_scenario(reseeded))
        assert len(selector) == 2

    def test_replaying_twice_yields_identical_goldens_and_digests(self):
        # e2e determinism: corpus spec -> timeline -> golden, twice
        for scenario in temporal_scenario_names():
            spec = get_scenario(scenario)
            first, second = replay_scenario(spec), replay_scenario(spec)
            assert first.digests() == second.digests()
            for query in temporal_queries_for(scenario):
                left = TemporalGoldenSelector().golden_for(query, first)
                right = TemporalGoldenSelector().golden_for(query, second)
                assert left.value == right.value
                assert left.kind == "value"


# ---------------------------------------------------------------------------
# fabric integration
# ---------------------------------------------------------------------------
class TestTemporalCells:
    def test_payload_round_trips_and_worker_runs(self):
        config = BenchmarkConfig()
        spec = get_scenario("fat-tree-failover")
        task = temporal_cell_task(config.to_payload(), spec.to_dict(),
                                  "tq-m1", "gpt-4")
        task.validate()          # payload must be canonical-JSON serializable
        assert task.digest() == temporal_cell_task(
            config.to_payload(), spec.to_dict(), "tq-m1", "gpt-4").digest()
        record = run_temporal_cell(task.payload)
        assert record.query_id == "tq-m1"
        assert record.backend == "direct"
        assert record.details["scenario"] == "fat-tree-failover"
        assert record.details["anchor_time"] == 2.0
        assert record.details["snapshot_digest"]

    def test_correct_and_faulty_answers_are_calibrated(self):
        config = BenchmarkConfig()
        # the direct path calibrates against the strawman column: gpt-4's
        # easy strawman reliability passes rank 0, but its hard strawman
        # reliability is zero, so every hard direct cell fails
        passing = run_temporal_cell(temporal_cell_task(
            config.to_payload(), get_scenario("fat-tree-failover").to_dict(),
            "tq-e1", "gpt-4").payload)
        failing = run_temporal_cell(temporal_cell_task(
            config.to_payload(), get_scenario("manet-churn").to_dict(),
            "tq-h3", "gpt-4").payload)
        assert passing.passed and passing.details["intended_correct"]
        assert not failing.details["intended_correct"]
        assert not failing.passed
        assert failing.failure_stage == "compare"
        assert failing.details["expected_value"] != failing.details["actual_value"]

    def test_accuracy_exactly_reflects_calibration(self):
        # a mis-anchored answer that coincides with the golden is not a
        # failure, so the fault model widens its shift until the answer
        # differs — making pass/fail agree with the calibrated decision on
        # every single cell
        runner = BenchmarkRunner(BenchmarkConfig())
        report = runner.run_temporal_suite()
        assert len(report.logger) == 4 * len(temporal_queries())
        for record in report.logger.records:
            assert record.passed == record.details["intended_correct"]

    def test_run_temporal_suite_counts(self):
        runner = BenchmarkRunner(BenchmarkConfig())
        report = runner.run_temporal_suite(models=["gpt-4"])
        assert len(report.logger) == len(temporal_queries())
        assert set(report.scenarios) == set(temporal_scenario_names())
        # every scenario's snapshot table accounts for every one of its cells
        for scenario in report.scenarios:
            rows = report.snapshot_breakdown(scenario)
            assert sum(row["cells"] for row in rows) == len(
                temporal_queries_for(scenario))

    def test_serial_and_parallel_suites_are_byte_identical(self):
        serial = BenchmarkRunner(BenchmarkConfig())
        parallel = BenchmarkRunner(BenchmarkConfig(),
                                   policy=ExecutorPolicy.processes(jobs=2))
        report_serial = serial.run_temporal_suite(models=["gpt-4", "bard"])
        report_parallel = parallel.run_temporal_suite(models=["gpt-4", "bard"])
        assert report_serial.render_summary() == report_parallel.render_summary()
        assert (report_serial.render_snapshot_tables()
                == report_parallel.render_snapshot_tables())
        assert (report_serial.logger.to_records()
                == report_parallel.logger.to_records())
        assert parallel.last_run_report.jobs == 2

    def test_cached_rerun_reproduces_the_tables(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = BenchmarkRunner(BenchmarkConfig(),
                                policy=ExecutorPolicy.serial(cache=cache))
        report_first = first.run_temporal_suite(models=["gpt-4"])
        assert first.last_run_report.cache_hits == 0
        second = BenchmarkRunner(BenchmarkConfig(),
                                 policy=ExecutorPolicy.serial(cache=cache))
        report_second = second.run_temporal_suite(models=["gpt-4"])
        assert second.last_run_report.cache_hits == len(temporal_queries())
        assert report_first.render_summary() == report_second.render_summary()
        assert (report_first.render_snapshot_tables()
                == report_second.render_snapshot_tables())

    def test_unknown_scenario_is_rejected(self):
        runner = BenchmarkRunner(BenchmarkConfig())
        with pytest.raises(ValidationError, match="unknown scenario"):
            runner.run_temporal_suite(scenarios=["no-such-scenario"])
        with pytest.raises(ValidationError, match="no temporal queries"):
            runner.run_temporal_suite(scenarios=["ring-maintenance"])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestTemporalCli:
    def test_benchmark_temporal_smoke(self, capsys):
        exit_code = main(["benchmark", "--temporal", "--no-cache",
                          "--models", "gpt-4",
                          "--scenarios", "fat-tree-failover"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Temporal accuracy by scenario" in captured
        assert "Per-snapshot accuracy — fat-tree-failover" in captured

    def test_queries_listing_includes_temporal(self, capsys):
        assert main(["queries"]) == 0
        captured = capsys.readouterr().out
        assert "tq-m1" in captured
        assert "scenario:fat-tree-failover" in captured
