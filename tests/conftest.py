"""Shared fixtures for the test suite."""

import pytest

from repro.benchmark import BenchmarkConfig
from repro.malt import MaltApplication, MaltTopologyConfig
from repro.traffic import CommunicationGraphConfig, TrafficAnalysisApplication


SMALL_MALT_CONFIG = MaltTopologyConfig(
    datacenters=1, pods_per_datacenter=2, racks_per_pod=2, chassis_per_rack=2,
    switches_per_chassis=4, ports_per_switch=3, control_points=4, port_links=6,
    seed=11)


@pytest.fixture(scope="session")
def traffic_app() -> TrafficAnalysisApplication:
    """A 40-node / 40-edge traffic-analysis application (the benchmark default)."""
    return TrafficAnalysisApplication(config=CommunicationGraphConfig(
        node_count=40, edge_count=40, seed=7))


@pytest.fixture(scope="session")
def malt_app() -> MaltApplication:
    """A small MALT application (hundreds of nodes) for fast tests."""
    return MaltApplication(config=SMALL_MALT_CONFIG)


@pytest.fixture(scope="session")
def small_benchmark_config() -> BenchmarkConfig:
    """Benchmark configuration that uses the small MALT topology."""
    return BenchmarkConfig(malt_config=SMALL_MALT_CONFIG)
