"""The fabric's headline guarantee, end to end.

Serial and parallel executions of the same sweep must produce byte-identical
reports — accuracy tables and cost figures — and a cache-served re-run must
reproduce them again without executing a single cell.
"""

import pytest

from repro.benchmark.runner import BenchmarkConfig, BenchmarkRunner
from repro.cost import CostAnalyzer
from repro.exec import ExecutorPolicy, ResultCache

MODELS = ["gpt-4", "bard"]


def small_config(**overrides):
    return BenchmarkConfig(traffic_node_count=20, traffic_edge_count=20,
                           **overrides)


class TestBenchmarkEquivalence:
    def test_serial_and_parallel_grids_are_byte_identical(self):
        serial = BenchmarkRunner(small_config())
        parallel = BenchmarkRunner(small_config(),
                                   policy=ExecutorPolicy.processes(jobs=2))
        report_serial = serial.run_application(
            "traffic_analysis", backends=("networkx", "pandas"), models=MODELS)
        report_parallel = parallel.run_application(
            "traffic_analysis", backends=("networkx", "pandas"), models=MODELS)

        assert report_serial.render_summary() == report_parallel.render_summary()
        assert report_serial.render_breakdown() == report_parallel.render_breakdown()
        assert report_serial.summary() == report_parallel.summary()
        assert (report_serial.error_type_counts()
                == report_parallel.error_type_counts())
        # the full record logs agree cell by cell, not just in aggregate
        assert (report_serial.logger.to_records()
                == report_parallel.logger.to_records())
        assert parallel.last_run_report.jobs == 2

    def test_scenario_suite_equivalence(self):
        serial = BenchmarkRunner(small_config())
        parallel = BenchmarkRunner(small_config(),
                                   policy=ExecutorPolicy.processes(jobs=2))
        reports_serial = serial.run_scenario_suite(models=["gpt-4"])
        reports_parallel = parallel.run_scenario_suite(models=["gpt-4"])
        assert set(reports_serial) == set(reports_parallel)
        for name in reports_serial:
            assert (reports_serial[name].render_summary()
                    == reports_parallel[name].render_summary())
            assert (reports_serial[name].logger.to_records()
                    == reports_parallel[name].logger.to_records())

    def test_cached_rerun_is_identical_and_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        warm = BenchmarkRunner(small_config(),
                               policy=ExecutorPolicy.processes(jobs=2, cache=cache))
        first = warm.run_application("traffic_analysis", backends=("networkx",),
                                     models=MODELS)
        assert warm.last_run_report.executed == len(warm.last_run_report.results)

        cached = BenchmarkRunner(small_config(),
                                 policy=ExecutorPolicy.serial(cache=cache))
        second = cached.run_application("traffic_analysis", backends=("networkx",),
                                        models=MODELS)
        assert cached.last_run_report.executed == 0
        assert cached.last_run_report.cache_hits == len(cached.last_run_report.results)
        assert first.render_summary() == second.render_summary()
        # the saved log differs only in the `cached` provenance flag — by
        # design: it records where each verdict came from, never what it is
        first_rows = first.logger.to_records()
        second_rows = second.logger.to_records()
        assert all(not row.pop("cached") for row in first_rows)
        assert all(row.pop("cached") for row in second_rows)
        assert first_rows == second_rows

    def test_config_change_invalidates_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        BenchmarkRunner(small_config(),
                        policy=ExecutorPolicy.serial(cache=cache)).run_application(
            "traffic_analysis", backends=("networkx",), models=["gpt-4"])
        resized = BenchmarkRunner(
            BenchmarkConfig(traffic_node_count=24, traffic_edge_count=24),
            policy=ExecutorPolicy.serial(cache=cache))
        resized.run_application("traffic_analysis", backends=("networkx",),
                                models=["gpt-4"])
        # a different graph size is a different computation: no stale reuse
        assert resized.last_run_report.cache_hits == 0


class TestCostEquivalence:
    def test_scalability_sweep_identical(self):
        serial = CostAnalyzer()
        parallel = CostAnalyzer(policy=ExecutorPolicy.processes(jobs=2))
        assert (serial.scalability_sweep(graph_sizes=(40, 80, 120))
                == parallel.scalability_sweep(graph_sizes=(40, 80, 120)))

    def test_scenario_cost_sweep_identical(self):
        serial = CostAnalyzer()
        parallel = CostAnalyzer(policy=ExecutorPolicy.processes(jobs=2))
        assert serial.scenario_cost_sweep() == parallel.scenario_cost_sweep()

    def test_cost_cache_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        warm = CostAnalyzer(policy=ExecutorPolicy.processes(jobs=2, cache=cache))
        points = warm.scenario_cost_sweep()
        replay = CostAnalyzer(policy=ExecutorPolicy.serial(cache=cache))
        assert replay.scenario_cost_sweep() == points
        assert replay.last_run_report.executed == 0


class TestPayloadRoundTrips:
    def test_benchmark_config_round_trip(self):
        from repro.llm.calibration import CalibrationTable
        from repro.malt import MaltTopologyConfig

        config = BenchmarkConfig(
            traffic_node_count=11, traffic_edge_count=13, seed=3,
            malt_config=MaltTopologyConfig(datacenters=1, pods_per_datacenter=2),
            calibration=CalibrationTable(),
            simulated_api_latency_s=0.25)
        rebuilt = BenchmarkConfig.from_payload(config.to_payload())
        assert rebuilt.to_payload() == config.to_payload()
        assert rebuilt.malt_config.vendors == config.malt_config.vendors

    def test_pricing_table_round_trip(self):
        from repro.llm.pricing import DEFAULT_PRICING, PricingTable

        rebuilt = PricingTable.from_dict(DEFAULT_PRICING.to_dict())
        assert rebuilt.to_dict() == DEFAULT_PRICING.to_dict()
        assert rebuilt.cost("gpt-4", 1000, 100) == DEFAULT_PRICING.cost("gpt-4", 1000, 100)

    def test_calibration_round_trip(self):
        from repro.llm.calibration import CalibrationTable

        table = CalibrationTable()
        rebuilt = CalibrationTable.from_dict(table.to_dict())
        assert rebuilt.to_dict() == table.to_dict()
        assert (rebuilt.reliability("gpt-4", "traffic_analysis", "networkx", "hard")
                == table.reliability("gpt-4", "traffic_analysis", "networkx", "hard"))


class TestFailurePropagation:
    def test_cell_error_raises_with_task_key(self, monkeypatch):
        """A failing cell must abort the sweep loudly, naming the cell."""
        from repro.exec.report import TaskExecutionError

        runner = BenchmarkRunner(small_config())
        original_payload = BenchmarkConfig.to_payload

        def broken_payload(self):
            payload = original_payload(self)
            payload["traffic_node_count"] = -5  # invalid: workers will fail
            return payload

        monkeypatch.setattr(BenchmarkConfig, "to_payload", broken_payload)
        with pytest.raises(TaskExecutionError) as excinfo:
            runner.run_application("traffic_analysis", backends=("networkx",),
                                   models=["gpt-4"])
        assert "bench/traffic_analysis/networkx" in str(excinfo.value)
