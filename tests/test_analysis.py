"""Tests for repro.analysis: the invariant-aware static checker."""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    all_rules,
    analyze_file,
    analyze_tree,
    get_rules,
    has_errors,
    render_human,
    render_json,
)
from repro.analysis.effects import clear_effect_cache
from repro.analysis.framework import suppressions
from repro.analysis.templates import clear_template_cache
from repro.utils.validation import ValidationError

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
PACKAGE_ROOT = Path(repro.__file__).parent

#: relpath each rule's fixtures are analyzed under, chosen to land inside
#: the rule's scope (None -> default, any path matches)
FIXTURE_RELPATH = {
    "det-unsorted-listing": "exec/{name}",
    "det-set-iteration": "exec/{name}",
    "det-wallclock": "exec/{name}",
    "det-unseeded-random": "exec/{name}",
    "det-object-identity": "exec/{name}",
    "det-env-read": "exec/{name}",
    "det-json-sort-keys": "exec/{name}",
    "obs-layering": "obs/{name}",
    "effect-obs-write": "obs/{name}",
    "effect-async-blocking": "serve/{name}",
}


def fixture_pair(rule_id):
    stem = rule_id.replace("-", "_")
    return FIXTURES / f"{stem}_bad.py", FIXTURES / f"{stem}_good.py"


def relpath_for(rule_id, path):
    template = FIXTURE_RELPATH.get(rule_id, "{name}")
    return template.format(name=path.name)


def run_rule(rule_id, path):
    clear_template_cache()
    clear_effect_cache()
    rules = get_rules([rule_id])
    return analyze_file(path, rules=rules,
                        relpath=relpath_for(rule_id, path))


class TestFixtureCorpus:
    """The meta-test: every rule fires on its bad fixture, never on its good one."""

    @pytest.mark.parametrize("rule_id", [rule.id for rule in all_rules()])
    def test_rule_fires_on_bad_fixture(self, rule_id):
        bad, _ = fixture_pair(rule_id)
        assert bad.exists(), f"missing bad fixture for {rule_id}"
        findings = run_rule(rule_id, bad)
        assert findings, f"rule {rule_id} produced no findings on {bad.name}"
        assert all(f.rule_id == rule_id for f in findings)

    @pytest.mark.parametrize("rule_id", [rule.id for rule in all_rules()])
    def test_rule_quiet_on_good_fixture(self, rule_id):
        _, good = fixture_pair(rule_id)
        assert good.exists(), f"missing good fixture for {rule_id}"
        findings = run_rule(rule_id, good)
        assert findings == [], (
            f"rule {rule_id} false-positived on {good.name}: {findings}")

    def test_every_rule_has_a_fixture_pair(self):
        for rule in all_rules():
            bad, good = fixture_pair(rule.id)
            assert bad.exists() and good.exists()

    def test_live_tree_is_clean(self):
        clear_template_cache()
        findings = analyze_tree(PACKAGE_ROOT)
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule_id}: {f.message}" for f in findings)


class TestFramework:
    def test_rule_registry_is_sorted_and_nonempty(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) >= 12

    def test_severities_cover_both_levels(self):
        severities = {rule.severity for rule in all_rules()}
        assert severities == {SEVERITY_ERROR, SEVERITY_WARNING}

    def test_get_rules_rejects_unknown_id(self):
        with pytest.raises(ValidationError, match="unknown rule"):
            get_rules(["no-such-rule"])

    def test_suppression_marker_parsing(self):
        lines = [
            "x = 1",
            "y = time.time()  # repro: allow[det-wallclock]",
            "# repro: allow[det-wallclock, det-env-read]",
            "z = os.environ",
        ]
        allowed = suppressions(lines)
        assert allowed[2] == {"det-wallclock"}
        assert allowed[3] == {"det-wallclock", "det-env-read"}
        assert 1 not in allowed

    def test_suppression_silences_finding(self, tmp_path):
        source = (
            "import time\n"
            "def run(payload):\n"
            "    return time.time()  # repro: allow[det-wallclock]\n"
        )
        path = tmp_path / "worker.py"
        path.write_text(source)
        findings = analyze_file(path, rules=get_rules(["det-wallclock"]),
                                relpath="exec/worker.py")
        assert findings == []

    def test_unsuppressed_finding_survives(self, tmp_path):
        path = tmp_path / "worker.py"
        path.write_text("import time\n\ndef run(p):\n    return time.time()\n")
        findings = analyze_file(path, rules=get_rules(["det-wallclock"]),
                                relpath="exec/worker.py")
        assert len(findings) == 1
        assert findings[0].line == 4
        assert findings[0].severity == SEVERITY_ERROR

    def test_scope_excludes_out_of_scope_files(self, tmp_path):
        path = tmp_path / "cli_helper.py"
        path.write_text("import time\nNOW = time.time()\n")
        findings = analyze_file(path, rules=get_rules(["det-wallclock"]),
                                relpath="cli/helper.py")
        assert findings == []

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        findings = analyze_file(path, relpath="exec/broken.py")
        assert len(findings) == 1
        assert findings[0].rule_id == "parse-error"
        assert findings[0].severity == SEVERITY_ERROR


class TestReporters:
    def _findings(self):
        bad, _ = fixture_pair("det-wallclock")
        return run_rule("det-wallclock", bad)

    def test_human_report_lists_location_and_rule(self):
        findings = self._findings()
        text = render_human(findings, get_rules(["det-wallclock"]))
        assert "det_wallclock_bad.py" in text
        assert "[error] det-wallclock" in text
        assert "error(s)" in text

    def test_human_report_fix_suggestions(self):
        findings = self._findings()
        text = render_human(findings, get_rules(["det-wallclock"]),
                            show_suggestions=True)
        assert "fix:" in text
        assert "pure functions of their payload" in text

    def test_json_report_schema(self):
        findings = self._findings()
        document = json.loads(render_json(findings, all_rules()))
        assert document["summary"]["errors"] == len(findings)
        assert document["summary"]["total"] == len(findings)
        entry = document["findings"][0]
        assert {"rule", "severity", "path", "line", "col",
                "message", "suggestion"} >= set(entry)
        assert entry["rule"] == "det-wallclock"
        assert len(document["rules"]) == len(all_rules())

    def test_has_errors_distinguishes_warnings(self):
        bad, _ = fixture_pair("det-env-read")
        warnings_only = run_rule("det-env-read", bad)
        assert warnings_only
        assert not has_errors(warnings_only)
        assert has_errors(self._findings())

    def test_clean_report_says_clean(self):
        text = render_human([], all_rules())
        assert "clean" in text


class TestTemplateValidation:
    """Every checked-in emitter template passes static validation."""

    @pytest.mark.parametrize("emitter", ["networkx_emitter", "frames_emitter",
                                         "sql_emitter"])
    def test_emitter_templates_render_and_pass(self, emitter):
        from repro.analysis.framework import load_context
        from repro.analysis.templates import load_template_module

        clear_template_cache()
        ctx = load_context(PACKAGE_ROOT / "synthesis" / f"{emitter}.py")
        module = load_template_module(ctx)
        assert module.errors == []
        assert len(module.rendered) >= 15
        template_rules = get_rules(["template-policy", "template-sql",
                                    "template-undefined-name"])
        findings = analyze_file(PACKAGE_ROOT / "synthesis" / f"{emitter}.py",
                                rules=template_rules,
                                relpath=f"synthesis/{emitter}.py")
        assert findings == []

    def test_template_counts_cover_both_kinds(self):
        from repro.analysis.framework import load_context
        from repro.analysis.templates import load_template_module

        clear_template_cache()
        ctx = load_context(PACKAGE_ROOT / "synthesis" / "networkx_emitter.py")
        module = load_template_module(ctx)
        kinds = {t.kind for t in module.rendered}
        assert kinds == {"static", "temporal"}

    def test_temporal_namespace_derived_from_synthesis(self):
        from repro.analysis.templates import _temporal_namespace_names

        assert _temporal_namespace_names() == {"snapshots", "deltas"}


class TestAnalyzeCli:
    def test_analyze_clean_tree_exits_zero(self, capsys):
        from repro.cli.main import main

        clear_template_cache()
        assert main(["analyze", str(PACKAGE_ROOT)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_analyze_json_output(self, capsys):
        from repro.cli.main import main

        clear_template_cache()
        assert main(["analyze", "--format", "json", str(PACKAGE_ROOT)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["errors"] == 0

    def test_analyze_bad_file_exits_nonzero(self, capsys, tmp_path):
        from repro.cli.main import main

        bad, _ = fixture_pair("template-policy")
        clear_template_cache()
        assert main(["analyze", "--rules", "template-policy", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "template-policy" in out

    def test_analyze_rules_filter_and_list(self, capsys):
        from repro.cli.main import main

        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_analyze_unknown_rule_fails(self, capsys):
        from repro.cli.main import main

        assert main(["analyze", "--rules", "bogus"]) == 1
        assert "unknown rule" in capsys.readouterr().err


class TestFixedFindings:
    """Regression tests for the true positives the checker surfaced."""

    def test_benchmark_log_save_is_canonical(self, tmp_path):
        # det-json-sort-keys: benchmark/logger.py save() now sorts keys
        from repro.benchmark.evaluator import EvaluationRecord
        from repro.benchmark.logger import ResultsLogger

        results = ResultsLogger()
        results.log(EvaluationRecord(
            query_id="q1", model="gpt-4", backend="networkx",
            complexity="easy", passed=True))
        path = results.save(tmp_path / "log.json")
        keys = list(json.loads(path.read_text())[0])
        assert keys == sorted(keys)

    def test_answer_directly_is_canonical_json(self):
        # det-json-sort-keys: synthesis/engine.py answer_directly now sorts keys
        from repro.synthesis.engine import CodeSynthesisEngine
        from repro.traffic import TrafficAnalysisApplication

        app = TrafficAnalysisApplication()
        answer = CodeSynthesisEngine().answer_directly(
            "How many nodes are in the communication graph?", app.graph)
        payload = json.loads(answer)
        assert list(payload) == sorted(payload)

    def test_cache_recency_stays_out_of_digests(self, tmp_path):
        # det-wallclock is suppressed (allowed) for the LRU recency stamp:
        # prove the stamp cannot perturb digests or cached values
        from repro.exec.cache import ResultCache
        from repro.exec.task import Task

        task = Task(key="cell", fn="m:f", payload={"x": 1})
        cache = ResultCache(tmp_path / "cache")
        cache.put(task.digest(), task.key, {"answer": 42})
        assert task.digest() == Task(key="cell", fn="m:f",
                                     payload={"x": 1}).digest()
        hit, value = cache.get(task.digest())
        assert hit and value == {"answer": 42}
