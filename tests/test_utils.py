"""Tests for repro.utils: hashing, RNG, tables, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    DeterministicRng,
    ValidationError,
    format_markdown_table,
    format_table,
    require,
    require_in,
    require_positive,
    require_type,
    stable_hash,
    stable_unit_interval,
)
from repro.utils.hashing import stable_choice_index
from repro.utils.tables import format_cdf


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("query", "gpt-4") == stable_hash("query", "gpt-4")

    def test_different_inputs_differ(self):
        assert stable_hash("a", "b") != stable_hash("a", "c")

    def test_part_boundaries_matter(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_respects_bit_width(self):
        assert stable_hash("x", bits=8) < 256

    def test_unit_interval_in_range(self):
        value = stable_unit_interval("anything", 42)
        assert 0.0 <= value < 1.0

    def test_choice_index_in_range(self):
        assert 0 <= stable_choice_index(5, "seed") < 5

    def test_choice_index_rejects_empty(self):
        with pytest.raises(ValueError):
            stable_choice_index(0, "seed")

    @given(st.text(), st.text())
    def test_unit_interval_always_valid(self, a, b):
        assert 0.0 <= stable_unit_interval(a, b) < 1.0


class TestDeterministicRng:
    def test_same_seed_same_sequence(self):
        first = DeterministicRng(3)
        second = DeterministicRng(3)
        assert [first.randint(0, 100) for _ in range(5)] == \
               [second.randint(0, 100) for _ in range(5)]

    def test_forked_streams_are_independent(self):
        rng = DeterministicRng(3)
        a1 = rng.fork("a").randint(0, 10**9)
        # drawing from another stream must not perturb stream "a"
        rng.fork("b").randint(0, 10**9)
        a2 = DeterministicRng(3).fork("a").randint(0, 10**9)
        assert a1 == a2

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).choice([])

    def test_shuffle_returns_copy(self):
        rng = DeterministicRng(1)
        original = [1, 2, 3, 4]
        shuffled = rng.shuffle(original)
        assert original == [1, 2, 3, 4]
        assert sorted(shuffled) == original

    def test_partition_sums_to_total(self):
        rng = DeterministicRng(5)
        parts = rng.partition(1000, 7)
        assert len(parts) == 7
        assert sum(parts) == 1000
        assert all(part >= 0 for part in parts)

    def test_partition_rejects_bad_args(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).partition(10, 0)
        with pytest.raises(ValueError):
            DeterministicRng(1).partition(-1, 2)

    def test_zipf_like_in_range(self):
        rng = DeterministicRng(2)
        draws = [rng.zipf_like(10) for _ in range(200)]
        assert all(0 <= draw < 10 for draw in draws)
        # the first index must be the most popular under a Zipf-like skew
        assert draws.count(0) >= draws.count(9)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=20))
    def test_partition_property(self, total, parts):
        result = DeterministicRng(9).partition(total, parts)
        assert sum(result) == total
        assert len(result) == parts


class TestTables:
    def test_format_table_aligns_columns(self):
        rendered = format_table(["name", "value"], [["a", 1], ["long-name", 2]])
        lines = rendered.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_format_table_with_title(self):
        rendered = format_table(["x"], [[1]], title="My Table")
        assert rendered.splitlines()[0] == "My Table"

    def test_markdown_table_shape(self):
        rendered = format_markdown_table(["a", "b"], [[1, 2.5]])
        lines = rendered.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "2.50" in lines[2]

    def test_format_cdf_empty(self):
        assert format_cdf([]) == []

    def test_format_cdf_monotone(self):
        points = format_cdf([5.0, 1.0, 3.0, 2.0, 4.0], num_points=5)
        values = [value for value, _ in points]
        fractions = [fraction for _, fraction in points]
        assert values == sorted(values)
        assert fractions[-1] == 1.0


class TestValidation:
    def test_require_passes(self):
        require(True, "never raised")

    def test_require_raises(self):
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")

    def test_require_type(self):
        require_type(3, int, "count")
        with pytest.raises(ValidationError):
            require_type("3", int, "count")

    def test_require_in(self):
        require_in("a", ["a", "b"], "letter")
        with pytest.raises(ValidationError):
            require_in("z", ["a", "b"], "letter")

    def test_require_positive(self):
        require_positive(1, "n")
        require_positive(0, "n", allow_zero=True)
        with pytest.raises(ValidationError):
            require_positive(0, "n")
        with pytest.raises(ValidationError):
            require_positive(-1, "n", allow_zero=True)
