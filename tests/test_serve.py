"""Tests for :mod:`repro.serve` — the concurrent query-answering daemon.

One server instance (on an OS-assigned port) serves the whole module; the
tests drive it exactly like external clients: fresh connection per request,
JSON over HTTP.  The load-bearing assertions are the concurrency ones — a
storm of parallel POSTs must produce answers identical to the batch facade,
with no cross-request state bleed.
"""

import asyncio
import json

import pytest

from repro import api
from repro.serve import ServerThread, ServiceConfig, request_json
from repro.serve.http import (
    HttpProtocolError,
    HttpRequest,
    error_document,
    render_response,
)
from repro.serve.loadtest import LoadTestConfig, run_loadtest


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServiceConfig(port=0, workers=4, jobs=2)) as running:
        yield running


def call(server, method, path, payload=None):
    return asyncio.run(request_json(server.host, server.port, method, path,
                                    payload))


# ---------------------------------------------------------------------------
# protocol plumbing
# ---------------------------------------------------------------------------
class TestHttpPlumbing:
    def test_render_response_is_canonical_json(self):
        raw = render_response(200, {"b": 1, "a": 2})
        head, body = raw.split(b"\r\n\r\n", 1)
        assert b"HTTP/1.1 200 OK" in head
        assert b"Connection: close" in head
        assert body == b'{"a": 2, "b": 1}\n'

    def test_request_json_rejects_bad_body(self):
        request = HttpRequest(method="POST", path="/query", headers={},
                              body=b"{nope")
        with pytest.raises(HttpProtocolError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_error_document_shape(self):
        assert error_document(404, "gone") == {
            "error": {"status": 404, "message": "gone"}}


# ---------------------------------------------------------------------------
# endpoints
# ---------------------------------------------------------------------------
class TestEndpoints:
    def test_healthz(self, server):
        status, document = call(server, "GET", "/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["workers"] == 4
        assert document["uptime_s"] >= 0

    def test_scenarios_lists_the_corpus(self, server):
        status, document = call(server, "GET", "/scenarios")
        assert status == 200
        names = [entry["name"] for entry in document["scenarios"]]
        assert "fat-tree-failover" in names

    def test_metrics_exposes_request_histogram(self, server):
        call(server, "GET", "/healthz")  # ensure at least one span
        status, document = call(server, "GET", "/metrics")
        assert status == 200
        assert "span.serve.request.seconds" in document["histograms"]

    def test_query_single(self, server):
        status, document = call(server, "POST", "/query",
                                {"scenario": "fat-tree-failover",
                                 "query": "tq-e1"})
        assert status == 200
        assert document["query_id"] == "tq-e1"
        assert document["passed"] is True

    def test_query_batch(self, server):
        status, document = call(server, "POST", "/query", {"requests": [
            {"scenario": "fat-tree-failover", "query": "tq-e1"},
            {"scenario": "fat-tree-failover", "query": "tq-h1"},
        ]})
        assert status == 200
        assert [a["query_id"] for a in document["answers"]] == ["tq-e1", "tq-h1"]

    def test_query_resolves_natural_language(self, server):
        canonical = api.resolve_query("fat-tree-failover", "tq-e1")
        status, document = call(server, "POST", "/query",
                                {"scenario": "fat-tree-failover",
                                 "query": canonical.text.upper()})
        assert status == 200
        assert document["query_id"] == "tq-e1"


class TestErrorPaths:
    def test_unknown_endpoint_404(self, server):
        status, document = call(server, "GET", "/nope")
        assert status == 404
        assert "endpoints" in document["error"]["message"]

    def test_wrong_method_405(self, server):
        status, document = call(server, "GET", "/query")
        assert status == 405

    def test_missing_fields_400(self, server):
        status, document = call(server, "POST", "/query", {"scenario": "x"})
        assert status == 400
        assert "query" in document["error"]["message"]

    def test_unknown_field_400(self, server):
        status, document = call(server, "POST", "/query",
                                {"scenario": "fat-tree-failover",
                                 "query": "tq-e1", "turbo": True})
        assert status == 400
        assert "turbo" in document["error"]["message"]

    def test_unknown_scenario_400(self, server):
        status, document = call(server, "POST", "/query",
                                {"scenario": "atlantis", "query": "tq-e1"})
        assert status == 400

    def test_empty_batch_400(self, server):
        status, _ = call(server, "POST", "/query", {"requests": []})
        assert status == 400

    def test_errors_never_kill_the_server(self, server):
        call(server, "POST", "/query", {"scenario": "atlantis", "query": "x"})
        status, document = call(server, "GET", "/healthz")
        assert status == 200 and document["errors"] >= 1


# ---------------------------------------------------------------------------
# concurrency: the tentpole guarantee
# ---------------------------------------------------------------------------
def _strip(document):
    """Drop per-run telemetry; everything left must be request-determined."""
    return {key: value for key, value in document.items()
            if key not in ("duration_s", "cached")}


class TestConcurrency:
    def test_concurrent_storm_matches_batch_facade(self, server):
        """Parallel clients asking different questions each get exactly the
        answer the batch facade computes for their question — no bleed."""
        from repro.benchmark.queries import temporal_queries_for

        queries = [q.query_id for q in temporal_queries_for("fat-tree-failover")]
        bodies = [{"scenario": "fat-tree-failover", "query": query_id}
                  for query_id in queries * 3]  # 3 copies of each, interleaved

        async def storm():
            return await asyncio.gather(*[
                request_json(server.host, server.port, "POST", "/query", body)
                for body in bodies])

        outcomes = asyncio.run(storm())
        assert all(status == 200 for status, _ in outcomes)

        expected = {answer.query_id: _strip(answer.to_document())
                    for answer in api.answer_queries(
                        [api.QuerySpec("fat-tree-failover", q) for q in queries])}
        for (status, document), body in zip(outcomes, bodies):
            assert _strip(document) == expected[body["query"]]

    def test_repeated_requests_are_stable(self, server):
        """The warm path (kept contexts) answers identically every time."""
        body = {"scenario": "fat-tree-failover", "query": "tq-e1"}
        first = _strip(call(server, "POST", "/query", body)[1])
        for _ in range(3):
            assert _strip(call(server, "POST", "/query", body)[1]) == first


# ---------------------------------------------------------------------------
# the load generator end to end
# ---------------------------------------------------------------------------
class TestLoadTest:
    def test_loadtest_against_live_server(self, server):
        config = LoadTestConfig(host=server.host, port=server.port,
                                duration_s=1.0, qps=6.0,
                                scenarios=["fat-tree-failover"])
        report = run_loadtest(config)
        assert report.sent == 6
        assert report.failed == 0
        assert report.completed == 6
        summary = report.latency_summary()
        assert summary["p50"] is not None and summary["p95"] >= summary["p50"]
        assert report.server_histogram is not None
        assert report.server_histogram["count"] >= 6
        document = report.to_document()
        assert json.loads(json.dumps(document, sort_keys=True)) == document

    def test_loadtest_spawn_mode(self):
        report = run_loadtest(LoadTestConfig(
            duration_s=0.5, qps=4.0, scenarios=["fat-tree-failover"]))
        assert report.completed == report.sent == 2
