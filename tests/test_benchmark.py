"""Tests for the NeMoEval benchmark: corpus, evaluator, error classifier,
logger, and runner (including agreement with the paper's accuracy tables)."""

import math

import pytest

from repro.benchmark import (
    BenchmarkConfig,
    BenchmarkRunner,
    EvaluationRecord,
    GoldenAnswerSelector,
    ResultsLogger,
    classify_error,
    compare_values,
    malt_queries,
    query_by_id,
    traffic_queries,
)
from repro.benchmark.queries import bucket_size, queries_by_complexity
from repro.benchmark.runner import MALT_BACKENDS, TRAFFIC_BACKENDS
from repro.frames import DataFrame
from repro.llm.calibration import DEFAULT_CALIBRATION
from repro.sqlengine import ResultSet
from repro.traffic import TrafficAnalysisApplication


class TestQueryCorpus:
    def test_corpus_sizes_match_paper(self):
        assert len(traffic_queries()) == 24
        assert len(malt_queries()) == 9

    def test_complexity_buckets_match_paper(self):
        assert bucket_size("traffic_analysis", "easy") == 8
        assert bucket_size("traffic_analysis", "medium") == 8
        assert bucket_size("traffic_analysis", "hard") == 8
        for complexity in ("easy", "medium", "hard"):
            assert bucket_size("malt", complexity) == 3

    def test_query_ids_unique(self):
        ids = [query.query_id for query in traffic_queries() + malt_queries()]
        assert len(ids) == len(set(ids))

    def test_difficulty_ranks_are_a_permutation(self):
        for application in ("traffic_analysis", "malt"):
            for complexity, queries in queries_by_complexity(application).items():
                ranks = sorted(query.difficulty_rank for query in queries)
                assert ranks == list(range(len(queries)))

    def test_query_by_id(self):
        query = query_by_id("ta-m5")
        assert query.intent.name == "color_by_prefix16"
        with pytest.raises(KeyError):
            query_by_id("nope")

    def test_metadata_contents(self):
        metadata = query_by_id("ta-e1").metadata(bucket_size=8)
        assert metadata["bucket_size"] == 8
        assert metadata["intent"]["name"] == "count_nodes"


class TestCompareValues:
    def test_scalars_with_tolerance(self):
        assert compare_values(3, 3.0)
        assert compare_values(0.3333333, 1 / 3, float_tolerance=1e-3)
        assert not compare_values(3, 4)

    def test_lists_order_sensitive(self):
        assert compare_values(["a", "b"], ["a", "b"])
        assert not compare_values(["a", "b"], ["b", "a"])

    def test_dict_comparison(self):
        assert compare_values({"a": 1}, {"a": 1.0})
        assert not compare_values({"a": 1}, {"a": 1, "b": 2})

    def test_resultset_against_scalar(self):
        result = ResultSet(["n"], [{"n": 5}])
        assert compare_values(5, result)

    def test_resultset_against_list(self):
        result = ResultSet(["address"], [{"address": "a"}, {"address": "b"}])
        assert compare_values(["a", "b"], result)

    def test_resultset_against_dict(self):
        result = ResultSet(["k", "v"], [{"k": "x", "v": 1}, {"k": "y", "v": 2}])
        assert compare_values({"x": 1, "y": 2}, result)

    def test_single_row_against_flat_list(self):
        result = ResultSet(["src", "dst"], [{"src": "a", "dst": "b"}])
        assert compare_values(["a", "b"], result)

    def test_resultset_against_pair_list(self):
        result = ResultSet(["src", "dst"], [{"src": "a", "dst": "b"},
                                            {"src": "c", "dst": "d"}])
        assert compare_values([["a", "b"], ["c", "d"]], result)

    def test_dataframe_normalization(self):
        frame = DataFrame({"k": ["x"], "v": [3]})
        assert compare_values({"x": 3}, frame)

    def test_tuple_equals_list(self):
        assert compare_values(["a", "b"], ("a", "b"))


class TestGoldenSelector:
    def test_golden_cached(self, traffic_app):
        selector = GoldenAnswerSelector()
        query = query_by_id("ta-e1")
        first = selector.golden_for(query, traffic_app.graph)
        second = selector.golden_for(query, traffic_app.graph)
        assert first is second
        assert first.kind == "value" and first.value == 40

    def test_expected_graph_for_analysis_query(self, traffic_app):
        selector = GoldenAnswerSelector()
        golden = selector.golden_for(query_by_id("ta-e1"), traffic_app.graph)
        assert selector.expected_graph(golden, traffic_app.graph) is traffic_app.graph

    def test_golden_cache_survives_graph_id_reuse(self):
        # regression: the cache keys on id(graph); once a graph is garbage
        # collected its address can be recycled by a different graph, which
        # used to serve a stale golden in multi-scenario sweeps
        import gc

        selector = GoldenAnswerSelector()
        query = query_by_id("ta-e1")
        for size in (10, 20, 30, 40):
            application = TrafficAnalysisApplication.with_size(size, size)
            golden = selector.golden_for(query, application.graph)
            assert golden.value == size
            del application
            gc.collect()

    def test_dead_cache_entries_are_pruned(self):
        # regression: entries whose weakref died were rejected on lookup but
        # never *removed*, so multi-scenario sweeps grew the cache by one
        # entry per (query, graph) pair forever
        import gc

        selector = GoldenAnswerSelector()
        query = query_by_id("ta-e1")
        for size in (10, 20, 30, 40, 50):
            application = TrafficAnalysisApplication.with_size(size, size)
            selector.golden_for(query, application.graph)
            del application
            gc.collect()
        # every prior graph is dead; the miss that inserted the newest entry
        # must have swept the corpses, leaving at most the final entry plus
        # the one inserted after the sweep
        assert len(selector) <= 2

    def test_live_cache_entries_survive_pruning(self):
        selector = GoldenAnswerSelector()
        query = query_by_id("ta-e1")
        applications = [TrafficAnalysisApplication.with_size(size, size)
                        for size in (10, 20, 30)]
        goldens = [selector.golden_for(query, app.graph) for app in applications]
        assert len(selector) == 3
        for application, golden in zip(applications, goldens):
            assert selector.golden_for(query, application.graph) is golden


class TestErrorClassifier:
    def _record(self, stage, reason="", error_type="", message=""):
        record = EvaluationRecord(query_id="q", model="gpt-4", backend="networkx",
                                  complexity="easy", passed=False,
                                  failure_stage=stage, failure_reason=reason)
        if error_type:
            record.details["error_type"] = error_type
        if message:
            record.details["error_message"] = message
        return record

    def test_passed_record_is_unclassified(self):
        record = EvaluationRecord(query_id="q", model="m", backend="networkx",
                                  complexity="easy", passed=True)
        assert classify_error(record) is None

    def test_syntax_error(self):
        assert classify_error(self._record("execute", error_type="SyntaxError")) == "syntax_error"
        assert classify_error(self._record("extract")) == "syntax_error"

    def test_imaginary_attribute(self):
        record = self._record("execute", error_type="KeyError", message="'total_traffic'")
        assert classify_error(record) == "imaginary_graph_attribute"
        record = self._record("execute", error_type="SqlExecutionError",
                              message="unknown column 'total_traffic'")
        assert classify_error(record) == "imaginary_graph_attribute"

    def test_imaginary_function_argument(self):
        record = self._record("execute", error_type="TypeError",
                              message="got an unexpected keyword argument 'weights'")
        assert classify_error(record) == "imaginary_function_argument"

    def test_argument_error(self):
        record = self._record("execute", error_type="TypeError",
                              message="takes 3 positional arguments but 5 were given")
        assert classify_error(record) == "argument_error"

    def test_operation_error(self):
        record = self._record("execute", error_type="TypeError",
                              message="unsupported operand type(s) for +")
        assert classify_error(record) == "operation_error"

    def test_compare_failures(self):
        assert classify_error(self._record("compare", reason="result value does not match")) \
            == "wrong_calculation_logic"
        assert classify_error(self._record("compare", reason="graphs are not identical: x")) \
            == "graphs_not_identical"


class TestResultsLogger:
    def _record(self, passed, model="gpt-4", backend="networkx", cost=0.01,
                stage=None, reason=None):
        return EvaluationRecord(query_id="ta-e1", model=model, backend=backend,
                                complexity="easy", passed=passed, cost_usd=cost,
                                failure_stage=stage, failure_reason=reason)

    def test_accuracy_and_filters(self):
        logger = ResultsLogger()
        logger.log(self._record(True))
        logger.log(self._record(False, stage="compare", reason="result value does not match"))
        logger.log(self._record(True, backend="sql"))
        assert logger.accuracy(backend="networkx") == 0.5
        assert logger.accuracy(backend="sql") == 1.0
        assert len(logger.filtered(passed=True)) == 2

    def test_accuracy_empty_filter_is_nan_not_zero(self):
        """No matching records must read as "no data", never as 0% accuracy."""
        logger = ResultsLogger()
        logger.log(self._record(True))
        assert math.isnan(logger.accuracy(backend="pandas"))
        assert math.isnan(ResultsLogger().accuracy())

    def test_render_summary_prints_na_for_nan(self):
        from repro.benchmark.logger import accuracy_cell
        assert accuracy_cell(float("nan")) == "n/a"
        assert accuracy_cell(0.0) == 0.0
        assert accuracy_cell(0.75) == 0.75

    def test_error_classification_on_log(self):
        logger = ResultsLogger()
        record = logger.log(self._record(False, stage="compare",
                                         reason="result value does not match"))
        assert record.error_type == "wrong_calculation_logic"
        assert logger.error_type_counts() == {"wrong_calculation_logic": 1}

    def test_cost_and_save(self, tmp_path):
        logger = ResultsLogger()
        logger.extend([self._record(True, cost=0.02), self._record(False, cost=0.03,
                                                                   stage="compare",
                                                                   reason="x")])
        assert logger.total_cost() == pytest.approx(0.05)
        path = logger.save(tmp_path / "log.json")
        assert path.exists()
        assert "Benchmark results" in logger.render_summary()


class TestBenchmarkRunner:
    @pytest.fixture(scope="class")
    def traffic_report(self, small_benchmark_config):
        runner = BenchmarkRunner(small_benchmark_config)
        return runner.run_application("traffic_analysis", models=["gpt-4"])

    @pytest.fixture(scope="class")
    def malt_report(self, small_benchmark_config):
        runner = BenchmarkRunner(small_benchmark_config)
        return runner.run_application("malt", models=["gpt-4"])

    def test_traffic_backends(self, traffic_report):
        assert tuple(traffic_report.backends) == TRAFFIC_BACKENDS

    def test_gpt4_networkx_matches_paper_breakdown(self, traffic_report):
        cell = traffic_report.breakdown()["gpt-4"]["networkx"]
        assert cell["easy"] == 1.0
        assert cell["medium"] == 1.0
        assert cell["hard"] == pytest.approx(5 / 8)

    def test_gpt4_strawman_matches_paper_breakdown(self, traffic_report):
        cell = traffic_report.breakdown()["gpt-4"]["strawman"]
        assert cell["easy"] == pytest.approx(4 / 8)
        assert cell["medium"] == pytest.approx(3 / 8)
        assert cell["hard"] == 0.0

    def test_gpt4_summary_close_to_paper(self, traffic_report):
        summary = traffic_report.summary()["gpt-4"]
        assert summary["networkx"] == pytest.approx(0.875, abs=0.01)   # paper: 0.88
        assert summary["strawman"] == pytest.approx(0.29, abs=0.03)    # paper: 0.29

    def test_networkx_beats_other_backends(self, traffic_report):
        summary = traffic_report.summary()["gpt-4"]
        assert summary["networkx"] > summary["pandas"]
        assert summary["networkx"] > summary["sql"]
        assert summary["networkx"] > summary["strawman"]

    def test_malt_backends_exclude_strawman(self, malt_report):
        assert tuple(malt_report.backends) == MALT_BACKENDS

    def test_gpt4_malt_matches_paper_breakdown(self, malt_report):
        breakdown = malt_report.breakdown()["gpt-4"]
        assert breakdown["networkx"] == {"easy": 1.0, "medium": 1.0,
                                         "hard": pytest.approx(1 / 3)}
        assert breakdown["pandas"] == {"easy": pytest.approx(2 / 3),
                                       "medium": pytest.approx(2 / 3),
                                       "hard": pytest.approx(1 / 3)}
        assert breakdown["sql"] == {"easy": pytest.approx(1 / 3), "medium": 0.0, "hard": 0.0}

    def test_failures_are_classified(self, traffic_report):
        failures = traffic_report.logger.filtered(passed=False, backend="networkx")
        assert failures
        assert all(record.error_type for record in failures)

    def test_accuracy_never_exceeds_calibration(self, traffic_report):
        # the simulated model can do no better than its calibrated reliability
        breakdown = traffic_report.breakdown()["gpt-4"]
        for backend in ("sql", "pandas", "networkx", "strawman"):
            for complexity in ("easy", "medium", "hard"):
                ceiling = DEFAULT_CALIBRATION.passing_count(
                    "gpt-4", "traffic_analysis", backend, complexity, 8) / 8
                assert breakdown[backend][complexity] <= ceiling + 1e-9

    def test_render_methods(self, traffic_report):
        assert "Accuracy summary" in traffic_report.render_summary()
        assert "Accuracy by complexity" in traffic_report.render_breakdown()
        assert BenchmarkConfig().traffic_application().graph.node_count == 40

    def test_cached_provenance_threaded_into_records(self, small_benchmark_config,
                                                     tmp_path):
        # regression: saved result logs could not tell cache hits from fresh
        # runs — the runner now stamps each record with the fabric's verdict
        from repro.exec import ExecutorPolicy

        options = ExecutorPolicy.serial(cache=str(tmp_path / "cache"))
        first = BenchmarkRunner(small_benchmark_config, policy=options) \
            .run_application("malt", models=["gpt-4"], backends=["networkx"])
        assert all(not r.cached for r in first.logger.records)

        second = BenchmarkRunner(small_benchmark_config, policy=options) \
            .run_application("malt", models=["gpt-4"], backends=["networkx"])
        assert all(r.cached for r in second.logger.records)
        # the flag is telemetry: verdicts and the saved log's shape agree
        dumped = second.logger.to_records()
        assert all(row["cached"] is True for row in dumped)
        assert [r.passed for r in first.logger.records] \
            == [r.passed for r in second.logger.records]
