"""Tests for the in-memory SQL engine (lexer, parser, executor)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import (
    Database,
    SqlExecutionError,
    SqlSyntaxError,
    Token,
    TokenType,
    parse_statement,
    tokenize,
)
from repro.sqlengine.ast_nodes import SelectStatement, UpdateStatement


def sample_database() -> Database:
    database = Database("test")
    database.create_table("nodes", ["id", "address", "type", "capacity"], [
        {"id": "a", "address": "10.0.0.1", "type": "host", "capacity": 10},
        {"id": "b", "address": "10.0.1.2", "type": "router", "capacity": 40},
        {"id": "c", "address": "15.76.0.9", "type": "host", "capacity": 20},
    ])
    database.create_table("edges", ["source", "target", "bytes"], [
        {"source": "a", "target": "b", "bytes": 100},
        {"source": "b", "target": "a", "bytes": 50},
        {"source": "b", "target": "c", "bytes": 10},
        {"source": "c", "target": "b", "bytes": 30},
    ])
    return database


class TestLexer:
    def test_tokenizes_keywords_and_identifiers(self):
        tokens = tokenize("SELECT id FROM nodes")
        kinds = [token.type for token in tokens]
        assert kinds[:4] == [TokenType.KEYWORD, TokenType.IDENTIFIER,
                             TokenType.KEYWORD, TokenType.IDENTIFIER]
        assert kinds[-1] is TokenType.END

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_numbers(self):
        tokens = tokenize("SELECT 42, 3.5")
        assert tokens[1].value == 42
        assert tokens[3].value == 3.5

    def test_comment_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment\n")
        assert all(token.type is not TokenType.IDENTIFIER for token in tokens)

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT #")

    def test_matches_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.matches_keyword("SELECT", "INSERT")
        assert not token.matches_keyword("UPDATE")


class TestParser:
    def test_select_structure(self):
        statement = parse_statement(
            "SELECT type, COUNT(*) AS n FROM nodes WHERE capacity > 5 "
            "GROUP BY type HAVING COUNT(*) > 0 ORDER BY n DESC LIMIT 3")
        assert isinstance(statement, SelectStatement)
        assert len(statement.items) == 2
        assert statement.where is not None
        assert statement.group_by and statement.having is not None
        assert statement.limit == 3
        assert statement.order_by[0].ascending is False

    def test_join_parsing(self):
        statement = parse_statement(
            "SELECT n.id FROM edges JOIN nodes n ON source = n.id")
        assert len(statement.joins) == 1
        assert statement.joins[0].table.alias == "n"

    def test_update_parsing(self):
        statement = parse_statement("UPDATE nodes SET capacity = 5 WHERE id = 'a'")
        assert isinstance(statement, UpdateStatement)
        assert statement.assignments[0][0] == "capacity"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT 1 GARBAGE TOKENS HERE extra")

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT id FROM nodes WHERE (capacity > 5")

    def test_unsupported_statement_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("CREATE TABLE t (x)")


class TestSelectExecution:
    def test_count_star(self):
        assert sample_database().execute("SELECT COUNT(*) FROM nodes").scalar() == 3

    def test_projection_and_where(self):
        result = sample_database().execute(
            "SELECT id FROM nodes WHERE type = 'host' ORDER BY id")
        assert result.column() == ["a", "c"]

    def test_like(self):
        result = sample_database().execute(
            "SELECT id FROM nodes WHERE address LIKE '10.0%' ORDER BY id")
        assert result.column() == ["a", "b"]

    def test_arithmetic_and_alias(self):
        result = sample_database().execute("SELECT capacity * 2 AS doubled FROM nodes ORDER BY doubled")
        assert result.column("doubled") == [20, 40, 80]

    def test_aggregates(self):
        database = sample_database()
        assert database.execute("SELECT SUM(bytes) FROM edges").scalar() == 190
        assert database.execute("SELECT AVG(capacity) FROM nodes").scalar() == pytest.approx(70 / 3)
        assert database.execute("SELECT MAX(bytes) FROM edges").scalar() == 100
        assert database.execute("SELECT MIN(bytes) FROM edges").scalar() == 10

    def test_group_by_with_order_and_having(self):
        result = sample_database().execute(
            "SELECT source, SUM(bytes) AS total FROM edges GROUP BY source "
            "HAVING SUM(bytes) > 20 ORDER BY total DESC")
        assert result.to_records() == [
            {"source": "a", "total": 100},
            {"source": "b", "total": 60},
            {"source": "c", "total": 30},
        ]

    def test_join_with_qualified_columns(self):
        result = sample_database().execute(
            "SELECT n1.address AS src, n2.address AS dst FROM edges "
            "JOIN nodes n1 ON source = n1.id JOIN nodes n2 ON target = n2.id "
            "WHERE bytes > 40 ORDER BY src")
        assert result.to_records() == [
            {"src": "10.0.0.1", "dst": "10.0.1.2"},
            {"src": "10.0.1.2", "dst": "10.0.0.1"},
        ]

    def test_left_join_produces_nulls(self):
        database = sample_database()
        database.create_table("labels", ["id", "label"], [{"id": "a", "label": "prod"}])
        result = database.execute(
            "SELECT nodes.id AS id, label FROM nodes LEFT JOIN labels ON nodes.id = labels.id "
            "ORDER BY id")
        assert result.to_records()[1]["label"] is None

    def test_distinct_and_in(self):
        result = sample_database().execute(
            "SELECT DISTINCT type FROM nodes WHERE type IN ('host', 'router') ORDER BY type")
        assert result.column() == ["host", "router"]

    def test_between_and_case(self):
        result = sample_database().execute(
            "SELECT id, CASE WHEN capacity BETWEEN 15 AND 45 THEN 'mid' ELSE 'other' END AS bucket "
            "FROM nodes ORDER BY id")
        assert [row["bucket"] for row in result.rows] == ["other", "mid", "mid"]

    def test_select_without_from(self):
        assert sample_database().execute("SELECT 2 + 3 AS v").scalar() == 5

    def test_count_distinct(self):
        assert sample_database().execute("SELECT COUNT(DISTINCT type) FROM nodes").scalar() == 2

    def test_limit_and_order_by_position(self):
        result = sample_database().execute("SELECT id, capacity FROM nodes ORDER BY 2 DESC LIMIT 1")
        assert result.rows[0]["id"] == "b"

    def test_unknown_table(self):
        with pytest.raises(SqlExecutionError):
            sample_database().execute("SELECT * FROM missing")

    def test_unknown_column(self):
        with pytest.raises(SqlExecutionError):
            sample_database().execute("SELECT nonexistent FROM nodes")

    def test_division_by_zero(self):
        with pytest.raises(SqlExecutionError):
            sample_database().execute("SELECT capacity / 0 FROM nodes")

    def test_select_star(self):
        result = sample_database().execute("SELECT * FROM nodes WHERE id = 'a'")
        assert result.rows[0]["address"] == "10.0.0.1"
        assert set(result.columns) == {"id", "address", "type", "capacity"}


class TestMutationStatements:
    def test_insert(self):
        database = sample_database()
        database.execute("INSERT INTO nodes (id, address, type, capacity) "
                         "VALUES ('d', '10.9.9.9', 'switch', 5)")
        assert database.execute("SELECT COUNT(*) FROM nodes").scalar() == 4

    def test_insert_arity_mismatch(self):
        with pytest.raises(SqlExecutionError):
            sample_database().execute("INSERT INTO nodes (id, address) VALUES ('x')")

    def test_update_with_where(self):
        database = sample_database()
        database.execute("UPDATE nodes SET capacity = capacity + 1 WHERE type = 'host'")
        result = database.execute("SELECT capacity FROM nodes WHERE id = 'a'")
        assert result.scalar() == 11

    def test_update_unknown_column(self):
        with pytest.raises(SqlExecutionError):
            sample_database().execute("UPDATE nodes SET nope = 1")

    def test_delete(self):
        database = sample_database()
        database.execute("DELETE FROM edges WHERE bytes < 40")
        assert database.execute("SELECT COUNT(*) FROM edges").scalar() == 2

    def test_delete_all(self):
        database = sample_database()
        database.execute("DELETE FROM edges")
        assert len(database.table("edges")) == 0


class TestDatabaseApi:
    def test_duplicate_table_rejected(self):
        database = sample_database()
        with pytest.raises(SqlExecutionError):
            database.create_table("nodes", ["id"])

    def test_drop_table(self):
        database = sample_database()
        database.drop_table("edges")
        assert not database.has_table("edges")
        with pytest.raises(SqlExecutionError):
            database.drop_table("edges")

    def test_copy_is_independent(self):
        database = sample_database()
        duplicate = database.copy()
        duplicate.execute("DELETE FROM edges")
        assert database.execute("SELECT COUNT(*) FROM edges").scalar() == 4

    def test_insert_rejects_unknown_columns(self):
        with pytest.raises(SqlExecutionError):
            sample_database().table("nodes").insert({"bogus": 1})

    def test_schema_description(self):
        description = sample_database().schema_description()
        assert "TABLE nodes" in description and "TABLE edges" in description

    def test_scalar_requires_1x1(self):
        with pytest.raises(SqlExecutionError):
            sample_database().execute("SELECT id FROM nodes").scalar()


# ---------------------------------------------------------------------------
# property-based: WHERE filtering matches a plain-Python filter
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-100, 100), min_size=1, max_size=30),
       st.integers(-100, 100))
def test_where_filter_matches_python(values, threshold):
    database = Database("prop")
    database.create_table("t", ["v"], [{"v": value} for value in values])
    result = database.execute(f"SELECT v FROM t WHERE v > {threshold}")
    assert sorted(result.column()) == sorted(v for v in values if v > threshold)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=30))
def test_sum_matches_python(values):
    database = Database("prop")
    database.create_table("t", ["v"], [{"v": value} for value in values])
    assert database.execute("SELECT SUM(v) FROM t").scalar() == sum(values)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("xyz"), st.integers(0, 50)),
                min_size=1, max_size=30))
def test_group_by_matches_python(pairs):
    database = Database("prop")
    database.create_table("t", ["k", "v"], [{"k": k, "v": v} for k, v in pairs])
    result = database.execute("SELECT k, SUM(v) AS total FROM t GROUP BY k")
    expected = {}
    for key, value in pairs:
        expected[key] = expected.get(key, 0) + value
    assert {row["k"]: row["total"] for row in result.rows} == expected
