"""Tests for the timeline-aware synthesis backends (codegen-backed temporal
answering).

Covers the timeline serialization contract, the temporal emitters of both
code backends (every corpus intent must reproduce its golden through the
sandbox), the codegen fault taxonomy (mis-anchoring, off-by-one windows,
runtime crashes recorded as faults), the calibration column mapping, the
MALT temporal queries, and the end-to-end determinism contract: serial vs
``--jobs 2`` codegen-temporal sweeps are byte-identical and cached reruns
reproduce the tables.
"""

import pytest

from repro.benchmark import (
    BenchmarkConfig,
    BenchmarkRunner,
    temporal_queries,
    temporal_query_by_id,
)
from repro.benchmark.evaluator import compare_values
from repro.benchmark.tasks import run_temporal_cell, temporal_cell_task
from repro.cli import main
from repro.exec import ExecutorPolicy, ResultCache
from repro.exec.workers import clear_worker_contexts
from repro.llm.calibration import (
    DEFAULT_CALIBRATION,
    TEMPORAL_BACKEND_COLUMNS,
    TEMPORAL_BACKENDS,
)
from repro.llm.faults import TemporalFaultInjector, TemporalFaultType
from repro.scenarios import get_scenario, replay_scenario
from repro.scenarios.engine import timeline_from_dict, timeline_to_dict
from repro.synthesis import (
    TEMPORAL_CODE_BACKENDS,
    TEMPORAL_INTENT_SIGNATURES,
    CodeSynthesisEngine,
    run_temporal_program,
)
from repro.synthesis.reference import (
    evaluate_temporal_reference,
    supported_temporal_intents,
)
from repro.utils.validation import ValidationError


@pytest.fixture(autouse=True)
def _isolate_worker_contexts():
    clear_worker_contexts()
    yield
    clear_worker_contexts()


def _timeline_and_payload(scenario: str):
    timeline = replay_scenario(get_scenario(scenario))
    return timeline, timeline_to_dict(timeline)


# ---------------------------------------------------------------------------
# timeline serialization contract
# ---------------------------------------------------------------------------
class TestTimelineSerialization:
    def test_round_trip_preserves_digests_and_times(self):
        timeline, payload = _timeline_and_payload("fat-tree-failover")
        rebuilt = timeline_from_dict(payload)
        assert rebuilt.scenario_name == timeline.scenario_name
        assert rebuilt.times() == timeline.times()
        assert rebuilt.digests() == timeline.digests()

    def test_payload_is_pure_json(self):
        import json

        _, payload = _timeline_and_payload("wan-conduit-cut")
        assert json.loads(json.dumps(payload)) == json.loads(json.dumps(payload))

    def test_wrong_format_version_is_rejected(self):
        _, payload = _timeline_and_payload("fat-tree-failover")
        payload["format_version"] = 99
        with pytest.raises(ValidationError, match="format_version"):
            timeline_from_dict(payload)
        from repro.synthesis.temporal import parse_timeline_payload

        with pytest.raises(ValidationError, match="format_version"):
            parse_timeline_payload(payload)

    def test_deltas_align_with_snapshots(self):
        _, payload = _timeline_and_payload("manet-churn")
        entries = payload["snapshots"]
        assert entries[0]["delta"] is None
        for entry in entries[1:]:
            assert set(entry["delta"]) >= {"missing_nodes", "extra_nodes",
                                           "missing_edges", "extra_edges"}
        # the t=1 departure of mn-0 must surface in the first delta
        assert "mn-0" in entries[1]["delta"]["missing_nodes"]


# ---------------------------------------------------------------------------
# emitters: every corpus query must reproduce its golden through the sandbox
# ---------------------------------------------------------------------------
class TestTemporalEmitters:
    @pytest.fixture(scope="class")
    def payloads(self):
        cache = {}
        for query in temporal_queries():
            if query.scenario not in cache:
                cache[query.scenario] = _timeline_and_payload(query.scenario)
        return cache

    @pytest.mark.parametrize("backend", TEMPORAL_CODE_BACKENDS)
    @pytest.mark.parametrize(
        "query_id", [query.query_id for query in temporal_queries()])
    def test_generated_program_matches_golden(self, payloads, backend, query_id):
        query = temporal_query_by_id(query_id)
        timeline, payload = payloads[query.scenario]
        golden = evaluate_temporal_reference(timeline, query.intent).value
        program = CodeSynthesisEngine().generate_temporal(query.intent, backend)
        outcome = run_temporal_program(program.code, payload, backend)
        assert outcome.success, outcome.describe_error()
        assert compare_values(golden, outcome.result)

    def test_every_corpus_intent_has_signature_and_templates(self):
        supported = set(supported_temporal_intents())
        for query in temporal_queries():
            assert query.intent.name in supported
            assert query.intent.name in TEMPORAL_INTENT_SIGNATURES
            for key, value in query.intent.params:
                if value is None:
                    continue
                assert key in TEMPORAL_INTENT_SIGNATURES[query.intent.name]
        engine = CodeSynthesisEngine()
        for backend in TEMPORAL_CODE_BACKENDS:
            for query in temporal_queries():
                assert engine.supports_temporal(query.intent, backend)

    def test_unsupported_temporal_intent_raises(self):
        from repro.synthesis import Intent, UnsupportedQueryError

        with pytest.raises(UnsupportedQueryError):
            CodeSynthesisEngine().generate_temporal(
                Intent.create("no_such_intent"), "networkx")


# ---------------------------------------------------------------------------
# MALT temporal coverage (ROADMAP follow-up: malt-chassis-drain)
# ---------------------------------------------------------------------------
class TestMaltTemporalQueries:
    def test_malt_scenario_has_temporal_queries(self):
        from repro.benchmark import temporal_queries_for, temporal_scenario_names

        assert "malt-chassis-drain" in temporal_scenario_names()
        assert len(temporal_queries_for("malt-chassis-drain")) >= 3

    def test_switch_count_drops_during_drain(self):
        from repro.synthesis import Intent

        timeline, _ = _timeline_and_payload("malt-chassis-drain")
        query = temporal_query_by_id("tq-malt-e1")
        outcome = evaluate_temporal_reference(timeline, query.intent)
        baseline = evaluate_temporal_reference(timeline, Intent.create(
            "entity_count_at", entity_type="EK_PACKET_SWITCH", at=0.0))
        assert outcome.value == baseline.value - 1

    def test_capacity_excludes_the_drained_switch(self):
        timeline, _ = _timeline_and_payload("malt-chassis-drain")
        query = temporal_query_by_id("tq-malt-m1")
        during = evaluate_temporal_reference(timeline, query.intent).value
        initial = sum(attrs.get("capacity", 0)
                      for _, attrs in timeline.initial_graph.nodes(data=True)
                      if attrs.get("type") == "EK_PACKET_SWITCH")
        assert during < initial

    def test_orphaned_ports_are_the_drained_switch_ports(self):
        timeline, _ = _timeline_and_payload("malt-chassis-drain")
        query = temporal_query_by_id("tq-malt-h1")
        orphaned = evaluate_temporal_reference(timeline, query.intent).value
        assert orphaned
        assert all(port.startswith("ju1.a1.m1.s1c1.") for port in orphaned)
        # the re-rack at t=4 restores containment
        from repro.synthesis import Intent

        final = evaluate_temporal_reference(
            timeline, Intent.create("orphaned_ports_at", at=4.0))
        assert final.value == []


# ---------------------------------------------------------------------------
# calibration and fault taxonomy
# ---------------------------------------------------------------------------
class TestCodegenCalibration:
    def test_backend_column_mapping(self):
        assert set(TEMPORAL_BACKENDS) == {"direct", "frames", "networkx"}
        assert TEMPORAL_BACKEND_COLUMNS["direct"] == "strawman"
        assert TEMPORAL_BACKEND_COLUMNS["frames"] == "pandas"
        assert TEMPORAL_BACKEND_COLUMNS["networkx"] == "networkx"
        # gpt-4: hard strawman reliability is zero, hard networkx is not
        assert not DEFAULT_CALIBRATION.temporal_passes("gpt-4", "direct",
                                                       "hard", 0, 8)
        assert DEFAULT_CALIBRATION.temporal_passes("gpt-4", "networkx",
                                                   "hard", 0, 8)

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValidationError):
            DEFAULT_CALIBRATION.temporal_passes("gpt-4", "sql", "easy", 0, 8)

    def test_fault_type_draw_is_deterministic(self):
        draws = {DEFAULT_CALIBRATION.temporal_fault_type_for("tq-m1", "gpt-3",
                                                             "frames")
                 for _ in range(5)}
        assert len(draws) == 1
        assert draws.pop() in {fault.value for fault in TemporalFaultType}

    def test_misanchored_intent_shifts_times_earlier(self):
        timeline, _ = _timeline_and_payload("fat-tree-failover")
        query = temporal_query_by_id("tq-m1")  # since=0.5, until=2.0
        shifted = TemporalFaultInjector().misanchored_intent(
            query.intent, timeline.times(), shift=1)
        assert shifted.param("since") < query.intent.param("since")
        assert shifted.param("until") < query.intent.param("until")

    def test_sandbox_failure_is_a_recorded_fault_not_a_crash(self):
        # the runtime-crash fault indexes off the snapshot list; the sandbox
        # captures the IndexError and the evaluator records an execute-stage
        # failure instead of letting the sweep die
        _, payload = _timeline_and_payload("fat-tree-failover")
        code = TemporalFaultInjector().crash_code()
        outcome = run_temporal_program(code, payload, "networkx")
        assert outcome.failed
        assert outcome.error_type == "IndexError"

        from repro.benchmark.evaluator import ResultsEvaluator
        from repro.benchmark.goldens import TemporalGoldenSelector

        timeline = timeline_from_dict(payload)
        query = temporal_query_by_id("tq-m1")
        golden = TemporalGoldenSelector().golden_for(query, timeline)
        record = ResultsEvaluator().evaluate_temporal(
            query, "gpt-3", None, golden, backend="networkx",
            generated_code=code,
            execution_error=(outcome.error_type, outcome.error_message))
        assert not record.passed
        assert record.failure_stage == "execute"
        assert record.details["error_type"] == "IndexError"

    def test_codegen_cells_match_calibration_exactly(self):
        # every backend's pass/fail must agree with the calibrated decision:
        # faults escalate until the emitted program's answer differs
        config = BenchmarkConfig()
        spec = get_scenario("wan-conduit-cut")
        for query_id in ("tq-e5", "tq-m5", "tq-h5"):
            for model in ("gpt-4", "bard"):
                for backend in ("frames", "networkx"):
                    record = run_temporal_cell(temporal_cell_task(
                        config.to_payload(), spec.to_dict(), query_id, model,
                        backend).payload)
                    assert record.passed == record.details["intended_correct"]
                    assert record.backend == backend
                    if not record.passed:
                        assert record.details["fault"]
                        assert record.generated_code


# ---------------------------------------------------------------------------
# end-to-end determinism of the codegen-temporal suite
# ---------------------------------------------------------------------------
class TestCodegenSuite:
    BACKENDS = ("direct", "frames", "networkx")

    def test_accuracy_reflects_calibration_on_every_backend(self):
        runner = BenchmarkRunner(BenchmarkConfig())
        report = runner.run_temporal_suite(models=["gpt-4", "gpt-3"],
                                           backends=list(self.BACKENDS))
        assert len(report.logger) == (2 * len(self.BACKENDS)
                                      * len(temporal_queries()))
        for record in report.logger.records:
            assert record.passed == record.details["intended_correct"]

    def test_codegen_backends_beat_direct(self):
        # the paper's thesis, reproduced over timelines: the richest codegen
        # representation beats answering directly from serialized data
        runner = BenchmarkRunner(BenchmarkConfig())
        report = runner.run_temporal_suite(models=["gpt-4"],
                                           backends=list(self.BACKENDS))
        summary = report.backend_summary()["gpt-4"]
        assert summary["networkx"] > summary["direct"]

    def test_serial_and_parallel_codegen_suites_are_byte_identical(self):
        serial = BenchmarkRunner(BenchmarkConfig())
        parallel = BenchmarkRunner(BenchmarkConfig(),
                                   policy=ExecutorPolicy.processes(jobs=2))
        kwargs = {"models": ["gpt-4", "bard"],
                  "backends": ["frames", "networkx"]}
        report_serial = serial.run_temporal_suite(**kwargs)
        report_parallel = parallel.run_temporal_suite(**kwargs)
        assert report_serial.render_summary() == report_parallel.render_summary()
        assert (report_serial.render_backend_summary()
                == report_parallel.render_backend_summary())
        assert (report_serial.logger.to_records()
                == report_parallel.logger.to_records())
        assert parallel.last_run_report.jobs == 2

    def test_cached_codegen_rerun_reproduces_the_tables(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kwargs = {"models": ["gpt-4"], "backends": ["networkx"],
                  "scenarios": ["fat-tree-failover", "malt-chassis-drain"]}
        first = BenchmarkRunner(BenchmarkConfig(),
                                policy=ExecutorPolicy.serial(cache=cache))
        report_first = first.run_temporal_suite(**kwargs)
        assert first.last_run_report.cache_hits == 0
        clear_worker_contexts()
        second = BenchmarkRunner(BenchmarkConfig(),
                                 policy=ExecutorPolicy.serial(cache=cache))
        report_second = second.run_temporal_suite(**kwargs)
        assert second.last_run_report.cache_hits == len(report_second.logger)
        assert report_first.render_summary() == report_second.render_summary()
        # only the `cached` provenance flag may differ between the runs
        first_rows = report_first.logger.to_records()
        second_rows = report_second.logger.to_records()
        assert all(not row.pop("cached") for row in first_rows)
        assert all(row.pop("cached") for row in second_rows)
        assert first_rows == second_rows

    def test_unknown_backend_is_rejected(self):
        runner = BenchmarkRunner(BenchmarkConfig())
        with pytest.raises(ValidationError, match="temporal backend"):
            runner.run_temporal_suite(backends=["sql"])

    def test_repeated_backend_dedupes_instead_of_duplicate_task_keys(self):
        runner = BenchmarkRunner(BenchmarkConfig())
        report = runner.run_temporal_suite(
            models=["gpt-4"], scenarios=["fat-tree-failover"],
            backends=["networkx", "networkx", "direct"])
        assert list(report.backends) == ["networkx", "direct"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCodegenCli:
    def test_benchmark_temporal_backend_smoke(self, capsys):
        exit_code = main(["benchmark", "--temporal", "--no-cache",
                          "--models", "gpt-4",
                          "--backend", "frames", "--backend", "networkx",
                          "--scenarios", "malt-chassis-drain"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Temporal accuracy by scenario" in captured
        assert "Temporal accuracy by backend" in captured
        assert "direct" in captured and "frames" in captured

    def test_backend_requires_temporal(self, capsys):
        exit_code = main(["benchmark", "--backend", "frames",
                          "--application", "traffic", "--no-cache"])
        assert exit_code == 1
        assert "--temporal" in capsys.readouterr().err
