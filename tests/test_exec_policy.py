"""Tests for :class:`repro.exec.ExecutorPolicy` and the policy-era API.

Covers mode resolution (fixed modes, ``auto`` per task-set profile and
host core count), the thread executor's byte-identity with serial runs on
both the static benchmark and the temporal suite, worker-context retention
(``keep_contexts``), and the one-release deprecation shims for the
pre-policy ``jobs``/``cache``/``chunk_size`` kwargs.
"""

import pytest

from repro.benchmark.runner import BenchmarkConfig, BenchmarkRunner
from repro.cost import CostAnalyzer
from repro.exec import (
    PROFILE_CPU,
    PROFILE_LATENCY,
    ExecutorPolicy,
    ParallelExecutor,
    SerialExecutor,
    Task,
    TaskSet,
    ThreadExecutor,
    run_tasks,
)
from repro.exec.api import ExecutionOptions, run_with_options
from repro.exec.workers import _CONTEXT_CACHE, clear_worker_contexts
from repro.utils.validation import ValidationError


def square_tasks(count=8, profile=PROFILE_CPU):
    return TaskSet(name="squares", profile=profile, tasks=[
        Task(key=f"sq/{index}", fn="repro.exec.demo:square", payload={"x": index})
        for index in range(count)])


def small_config():
    return BenchmarkConfig(traffic_node_count=20, traffic_edge_count=20)


# ---------------------------------------------------------------------------
# mode resolution
# ---------------------------------------------------------------------------
class TestModeResolution:
    def test_jobs_one_always_resolves_serial(self):
        tasks = square_tasks(profile=PROFILE_LATENCY)
        for mode in ("auto", "serial", "threads", "processes"):
            assert ExecutorPolicy(mode=mode, jobs=1).resolve_mode(tasks) == "serial"

    def test_fixed_modes_resolve_to_themselves(self):
        tasks = square_tasks()
        assert ExecutorPolicy(mode="threads", jobs=2).resolve_mode(tasks) == "threads"
        assert ExecutorPolicy(mode="processes", jobs=2).resolve_mode(
            tasks, cpu_count=1) == "processes"

    def test_auto_single_task_never_leaves_the_process(self):
        assert ExecutorPolicy(mode="auto", jobs=4).resolve_mode(
            square_tasks(count=1, profile=PROFILE_LATENCY)) == "serial"

    def test_auto_latency_profile_picks_threads(self):
        assert ExecutorPolicy(mode="auto", jobs=2).resolve_mode(
            square_tasks(profile=PROFILE_LATENCY), cpu_count=1) == "threads"

    def test_auto_cpu_profile_needs_spare_cores(self):
        policy = ExecutorPolicy(mode="auto", jobs=2)
        tasks = square_tasks(profile=PROFILE_CPU)
        assert policy.resolve_mode(tasks, cpu_count=1) == "serial"
        assert policy.resolve_mode(tasks, cpu_count=4) == "processes"

    def test_build_executor_matches_resolution(self):
        tasks = square_tasks(profile=PROFILE_LATENCY)
        assert isinstance(ExecutorPolicy.serial().build_executor(tasks),
                          SerialExecutor)
        assert isinstance(ExecutorPolicy.threads(jobs=2).build_executor(tasks),
                          ThreadExecutor)
        assert isinstance(
            ExecutorPolicy.processes(jobs=2).build_executor(tasks, cpu_count=1),
            ParallelExecutor)
        assert isinstance(
            ExecutorPolicy.auto(jobs=2).build_executor(tasks, cpu_count=1),
            ThreadExecutor)

    def test_from_legacy_is_never_auto(self):
        assert ExecutorPolicy.from_legacy(jobs=1).mode == "serial"
        assert ExecutorPolicy.from_legacy(jobs=4).mode == "processes"

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValidationError):
            ExecutorPolicy(mode="gpu").validate()
        with pytest.raises(ValidationError):
            ExecutorPolicy(jobs=0).validate()
        with pytest.raises(ValidationError):
            ExecutorPolicy(chunk_size=0).validate()

    def test_profile_is_advisory_not_digest_material(self):
        # the same task under differently-profiled sets digests identically:
        # executor choice can never invalidate the cache
        cpu = square_tasks(profile=PROFILE_CPU)
        latency = square_tasks(profile=PROFILE_LATENCY)
        assert [t.digest() for t in cpu] == [t.digest() for t in latency]

    def test_task_set_rejects_unknown_profile(self):
        with pytest.raises(ValidationError):
            square_tasks(profile="gpu").validate()


# ---------------------------------------------------------------------------
# thread-executor byte-identity
# ---------------------------------------------------------------------------
class TestThreadEquivalence:
    def test_threads_match_serial_on_demo_tasks(self):
        tasks = square_tasks(count=13)
        serial = run_tasks(tasks, policy=ExecutorPolicy.serial())
        threaded = run_tasks(tasks, policy=ExecutorPolicy.threads(jobs=3))
        assert serial.values() == threaded.values()
        assert [r.key for r in threaded.results] == [t.key for t in tasks]

    def test_threads_match_serial_on_benchmark_suite(self):
        serial = BenchmarkRunner(small_config())
        threaded = BenchmarkRunner(small_config(),
                                   policy=ExecutorPolicy.threads(jobs=2))
        report_serial = serial.run_application(
            "traffic_analysis", backends=("networkx",), models=["gpt-4"])
        report_threaded = threaded.run_application(
            "traffic_analysis", backends=("networkx",), models=["gpt-4"])
        assert (report_serial.render_summary()
                == report_threaded.render_summary())
        assert (report_serial.logger.to_records()
                == report_threaded.logger.to_records())

    def test_threads_match_serial_on_temporal_suite(self):
        serial = BenchmarkRunner(BenchmarkConfig())
        threaded = BenchmarkRunner(BenchmarkConfig(),
                                   policy=ExecutorPolicy.threads(jobs=2))
        report_serial = serial.run_temporal_suite(
            scenarios=["fat-tree-failover"], models=["gpt-4"])
        report_threaded = threaded.run_temporal_suite(
            scenarios=["fat-tree-failover"], models=["gpt-4"])
        assert (report_serial.render_summary()
                == report_threaded.render_summary())
        assert (report_serial.logger.to_records()
                == report_threaded.logger.to_records())


# ---------------------------------------------------------------------------
# worker-context retention
# ---------------------------------------------------------------------------
class TestContextRetention:
    def test_in_process_runs_clear_contexts_by_default(self):
        BenchmarkRunner(small_config()).run_application(
            "traffic_analysis", backends=("networkx",), models=["gpt-4"])
        assert not _CONTEXT_CACHE

    def test_keep_contexts_retains_memos_across_runs(self):
        runner = BenchmarkRunner(
            small_config(), policy=ExecutorPolicy.serial(keep_contexts=True))
        try:
            runner.run_application("traffic_analysis", backends=("networkx",),
                                   models=["gpt-4"])
            assert _CONTEXT_CACHE  # the warm path the serve layer relies on
        finally:
            clear_worker_contexts()


# ---------------------------------------------------------------------------
# deprecation shims (one release)
# ---------------------------------------------------------------------------
class TestDeprecationShims:
    def test_run_tasks_legacy_kwargs_warn_and_match_policy(self):
        tasks = square_tasks()
        with pytest.warns(DeprecationWarning, match="policy=ExecutorPolicy"):
            legacy = run_tasks(tasks, jobs=2)
        fresh = run_tasks(tasks, policy=ExecutorPolicy.processes(jobs=2))
        assert legacy.values() == fresh.values()

    def test_run_tasks_rejects_policy_plus_legacy_kwargs(self):
        with pytest.raises(ValidationError, match="both policy="):
            run_tasks(square_tasks(), jobs=2, policy=ExecutorPolicy.serial())

    def test_run_with_options_warns_and_matches(self):
        tasks = square_tasks()
        with pytest.warns(DeprecationWarning, match="run_with_options"):
            legacy = run_with_options(tasks, ExecutionOptions(jobs=2))
        assert legacy.values() == run_tasks(tasks).values()

    def test_execution_options_to_policy_mirrors_legacy(self):
        policy = ExecutionOptions(jobs=3, cache="somewhere").to_policy()
        assert policy.mode == "processes"
        assert policy.jobs == 3
        assert policy.cache == "somewhere"

    def test_benchmark_runner_execution_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="policy=ExecutorPolicy"):
            runner = BenchmarkRunner(small_config(),
                                     execution=ExecutionOptions(jobs=2))
        assert runner.policy.mode == "processes"
        with pytest.raises(ValidationError):
            BenchmarkRunner(small_config(), execution=ExecutionOptions(),
                            policy=ExecutorPolicy.serial())

    def test_cost_analyzer_execution_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="policy=ExecutorPolicy"):
            analyzer = CostAnalyzer(execution=ExecutionOptions(jobs=2))
        assert analyzer.policy.mode == "processes"
        with pytest.raises(ValidationError):
            CostAnalyzer(execution=ExecutionOptions(),
                         policy=ExecutorPolicy.serial())
