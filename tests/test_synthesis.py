"""Tests for the synthesis package: intents, reference semantics, and the
correctness of every emitter against the reference semantics.

The emitter tests are the heart of the reproduction's own verification: for
every benchmark query and every backend that supports it, the emitted code is
executed the same way the pipeline executes LLM output, and the outcome must
equal the golden (reference) outcome.
"""

import pytest

from repro.benchmark.evaluator import compare_values
from repro.benchmark.queries import malt_queries, traffic_queries
from repro.graph import graphs_equal
from repro.graph.convert import from_frames, from_networkx, from_sql_database
from repro.sandbox import ExecutionSandbox
from repro.synthesis import (
    CodeSynthesisEngine,
    Intent,
    IntentParseError,
    UnsupportedQueryError,
    parse_query,
)
from repro.synthesis.reference import evaluate_reference, supported_reference_intents
from repro.utils.validation import ValidationError

ENGINE = CodeSynthesisEngine()
ALL_QUERIES = traffic_queries() + malt_queries()


# ---------------------------------------------------------------------------
# intents
# ---------------------------------------------------------------------------
class TestIntentParsing:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.query_id)
    def test_parser_recovers_corpus_intent(self, query):
        assert parse_query(query.text) == query.intent

    def test_unknown_query_raises(self):
        with pytest.raises(IntentParseError):
            parse_query("Translate this network to French")

    def test_intent_param_access(self):
        intent = Intent.create("top_k_talkers", k=3)
        assert intent.param("k") == 3
        assert intent.param("missing", "default") == "default"
        assert intent.as_dict() == {"name": "top_k_talkers", "params": {"k": 3}}

    def test_intent_allows_name_parameter(self):
        intent = Intent.create("add_switch_to_least_loaded_chassis", name="sw", capacity=10)
        assert intent.name == "add_switch_to_least_loaded_chassis"
        assert intent.param("name") == "sw"

    def test_every_corpus_intent_has_reference(self):
        supported = set(supported_reference_intents())
        for query in ALL_QUERIES:
            assert query.intent.name in supported


# ---------------------------------------------------------------------------
# reference semantics sanity checks
# ---------------------------------------------------------------------------
class TestReferenceSemantics:
    def test_count_nodes(self, traffic_app):
        outcome = evaluate_reference(traffic_app.graph, Intent.create("count_nodes"))
        assert outcome.kind == "value"
        assert outcome.value == 40

    def test_label_nodes_does_not_mutate_input(self, traffic_app):
        graph = traffic_app.graph
        before = graph.copy()
        evaluate_reference(graph, Intent.create("label_nodes_by_prefix",
                                                prefix="15.76", key="app", value="production"))
        assert graphs_equal(graph, before)

    def test_label_nodes_only_touches_matching_prefix(self, traffic_app):
        outcome = evaluate_reference(traffic_app.graph, Intent.create(
            "label_nodes_by_prefix", prefix="15.76", key="app", value="production"))
        for node, attrs in outcome.graph.nodes(data=True):
            if attrs.get("address", "").startswith("15.76."):
                assert attrs["app"] == "production"
            else:
                assert "app" not in attrs

    def test_color_by_prefix_assigns_unique_color_per_prefix(self, traffic_app):
        outcome = evaluate_reference(traffic_app.graph, Intent.create("color_by_prefix16"))
        prefix_to_color = {}
        for _, attrs in outcome.graph.nodes(data=True):
            prefix = ".".join(attrs["address"].split(".")[:2])
            prefix_to_color.setdefault(prefix, set()).add(attrs["color"])
        assert all(len(colors) == 1 for colors in prefix_to_color.values())
        all_colors = [next(iter(colors)) for colors in prefix_to_color.values()]
        assert len(set(all_colors)) == len(prefix_to_color)

    def test_top_k_talkers_ordering(self, traffic_app):
        outcome = evaluate_reference(traffic_app.graph, Intent.create("top_k_talkers", k=3))
        graph = traffic_app.graph
        totals = {graph.node_attributes(n)["address"]: graph.out_degree(n, weight="bytes")
                  for n in graph.nodes()}
        values = [totals[address] for address in outcome.value]
        assert values == sorted(values, reverse=True)
        assert len(outcome.value) == 3

    def test_cluster_groups_within_range(self, traffic_app):
        outcome = evaluate_reference(traffic_app.graph,
                                     Intent.create("cluster_nodes_by_total_bytes", clusters=5))
        assert set(outcome.value.values()) <= set(range(5))
        assert len(outcome.value) == 40

    def test_remove_switch_rebalance_preserves_chassis_capacity(self, malt_app):
        graph = malt_app.graph
        chassis = "ju1.a1.m1.c1"
        before = graph.node_attributes(chassis)["capacity"]
        outcome = evaluate_reference(graph, Intent.create(
            "remove_switch_and_rebalance", switch="ju1.a1.m1.s1c1"))
        updated = outcome.graph
        assert not updated.has_node("ju1.a1.m1.s1c1")
        switches = [child for child in updated.successors(chassis)
                    if updated.node_attributes(child).get("type") == "EK_PACKET_SWITCH"]
        total = sum(updated.node_attributes(s)["capacity"] for s in switches)
        assert total == pytest.approx(before)

    def test_add_switch_targets_least_loaded_chassis(self, malt_app):
        graph = malt_app.graph
        least = min(
            (node for node, attrs in graph.nodes(data=True) if attrs.get("type") == "EK_CHASSIS"),
            key=lambda node: (graph.node_attributes(node)["capacity"], node))
        outcome = evaluate_reference(graph, Intent.create(
            "add_switch_to_least_loaded_chassis", name="new-switch-1", capacity=100))
        updated = outcome.graph
        assert updated.has_edge(least, "new-switch-1")
        assert updated.node_attributes(least)["capacity"] == \
            graph.node_attributes(least)["capacity"] + 100

    def test_unknown_intent_rejected(self, traffic_app):
        with pytest.raises(ValidationError):
            evaluate_reference(traffic_app.graph, Intent.create("no_such_intent"))


# ---------------------------------------------------------------------------
# emitter correctness: emitted code must reproduce the reference outcome
# ---------------------------------------------------------------------------
def _application_for(query, traffic_app, malt_app):
    return traffic_app if query.application == "traffic_analysis" else malt_app


def _run_backend(application, query, backend):
    """Execute the emitted code the way the pipeline would, returning
    (result_value, updated_graph)."""
    program = ENGINE.generate(query.intent, backend)
    sandbox = ExecutionSandbox()
    if backend == "networkx":
        namespace = {"G": application.networkx_view()}
        outcome = sandbox.execute(program.code, namespace)
        assert outcome.success, f"{query.query_id}/{backend}: {outcome.describe_error()}"
        return outcome.result, from_networkx(outcome.namespace["G"])
    if backend == "pandas":
        nodes_df, edges_df = application.frame_view()
        namespace = {"nodes_df": nodes_df, "edges_df": edges_df}
        outcome = sandbox.execute(program.code, namespace)
        assert outcome.success, f"{query.query_id}/{backend}: {outcome.describe_error()}"
        return outcome.result, from_frames(outcome.namespace["nodes_df"],
                                           outcome.namespace["edges_df"])
    database = application.sql_view()
    last = None
    for statement in [s.strip() for s in program.code.split(";") if s.strip()]:
        returned = database.execute(statement)
        if returned is not None:
            last = returned
    return last, from_sql_database(database)


def _emitter_cases():
    cases = []
    for query in ALL_QUERIES:
        for backend in ("networkx", "pandas", "sql"):
            if ENGINE.supports(query.intent, backend):
                cases.append(pytest.param(query, backend, id=f"{query.query_id}-{backend}"))
    return cases


class TestEmitterCorrectness:
    @pytest.mark.parametrize("query,backend", _emitter_cases())
    def test_emitted_code_matches_reference(self, query, backend, traffic_app, malt_app):
        application = _application_for(query, traffic_app, malt_app)
        golden = evaluate_reference(application.graph, query.intent)
        result_value, updated_graph = _run_backend(application, query, backend)
        if golden.kind in ("value", "both"):
            assert compare_values(golden.value, result_value), (
                f"{query.query_id}/{backend}: value mismatch\n"
                f"expected={golden.value!r}\nactual={result_value!r}")
        expected_graph = golden.graph if golden.kind in ("graph", "both") else application.graph
        assert graphs_equal(expected_graph, updated_graph), \
            f"{query.query_id}/{backend}: resulting graph differs from the golden graph"

    def test_networkx_supports_every_passing_query(self):
        # every query that any calibrated model can pass with NetworkX must be
        # expressible by the NetworkX emitter (GPT-4 passes ranks 0-4 of the
        # hard bucket, all easy and medium)
        for query in ALL_QUERIES:
            if query.complexity == "hard" and query.difficulty_rank >= 5:
                continue
            assert ENGINE.supports(query.intent, "networkx"), query.query_id

    def test_unsupported_intent_raises(self):
        with pytest.raises(UnsupportedQueryError):
            ENGINE.generate(Intent.create("merge_nodes_by_prefix24"), "sql")
        with pytest.raises(UnsupportedQueryError):
            ENGINE.generate("Translate this network to French", "networkx")

    def test_generated_program_markdown(self):
        program = ENGINE.generate(Intent.create("count_nodes"), "sql")
        assert program.language == "sql"
        assert program.as_markdown().startswith("```sql")


class TestStrawmanAnswers:
    def test_direct_answer_value(self, traffic_app):
        import json

        answer = ENGINE.answer_directly("How many nodes are in the communication graph?",
                                        traffic_app.graph)
        payload = json.loads(answer)
        assert payload["kind"] == "value"
        assert payload["value"] == 40

    def test_direct_answer_graph(self, traffic_app):
        import json

        answer = ENGINE.answer_directly(
            "Add a label app:production to nodes with address prefix 15.76",
            traffic_app.graph)
        payload = json.loads(answer)
        assert payload["kind"] == "graph"
        assert "nodes" in payload["graph"]

    def test_unparseable_query_rejected(self, traffic_app):
        with pytest.raises(UnsupportedQueryError):
            ENGINE.answer_directly("Translate this network to French", traffic_app.graph)
