"""Tests for the ``repro.scenarios`` subsystem.

Covers every topology family, every event kind, spec serialization, replay
determinism (identical snapshot digests across runs), the built-in registry,
the benchmark/cost integrations, and the ``scenarios`` CLI sub-command.
"""

import json

import pytest

from repro.benchmark import BenchmarkConfig, BenchmarkRunner
from repro.benchmark.queries import traffic_queries
from repro.cli import main
from repro.cost import CostAnalyzer
from repro.graph import PropertyGraph
from repro.graph.diff import graphs_equal
from repro.graph.serialization import graph_from_json, graph_to_json
from repro.malt import MaltApplication
from repro.scenarios import (
    CapacityDegradationEvent,
    EngineState,
    EventEngine,
    GravityTrafficEvent,
    LinkDownEvent,
    LinkUpEvent,
    MaintenanceWindowEvent,
    NodeJoinEvent,
    NodeLeaveEvent,
    ScenarioSpec,
    ScenarioSuite,
    ScenarioTimeline,
    SrlgFailureEvent,
    TrafficSurgeEvent,
    build_topology,
    builtin_scenarios,
    default_suite,
    event_from_dict,
    event_kinds,
    family_names,
    get_family,
    get_scenario,
    graph_digest,
    register_scenario,
    replay_scenario,
    scenario_names,
)
from repro.traffic import TrafficAnalysisApplication
from repro.utils.validation import ValidationError


ALL_FAMILIES = ("fat-tree", "wan-backbone", "ring", "star", "mesh",
                "geometric", "random-traffic", "malt")

#: families whose edges carry the physical capacity/latency schema
PHYSICAL_FAMILIES = ("fat-tree", "wan-backbone", "ring", "star", "mesh", "geometric")


# ---------------------------------------------------------------------------
# topology families
# ---------------------------------------------------------------------------
class TestTopologyFamilies:
    def test_registry_lists_every_family(self):
        assert set(family_names()) == set(ALL_FAMILIES)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_every_family_builds_a_nonempty_graph(self, family):
        graph = build_topology(family, seed=7)
        assert isinstance(graph, PropertyGraph)
        assert graph.node_count > 0 and graph.edge_count > 0
        assert graph.graph_attributes["family"] == family
        assert graph.graph_attributes["seed"] == 7

    @pytest.mark.parametrize("family", PHYSICAL_FAMILIES)
    def test_physical_families_carry_capacity_and_latency(self, family):
        graph = build_topology(family, seed=7)
        for _, _, attrs in graph.edges(data=True):
            assert attrs["capacity_gbps"] > 0
            assert attrs["latency_ms"] > 0

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_generation_is_deterministic_in_the_seed(self, family):
        first = build_topology(family, seed=42)
        second = build_topology(family, seed=42)
        assert graph_digest(first) == graph_digest(second)

    def test_different_seeds_differ(self):
        assert graph_digest(build_topology("wan-backbone", seed=1)) != \
            graph_digest(build_topology("wan-backbone", seed=2))

    def test_fat_tree_structure(self):
        graph = build_topology("fat-tree", {"k": 4, "hosts_per_edge": 2})
        roles = [attrs["role"] for _, attrs in graph.nodes(data=True)]
        assert roles.count("core") == 4
        assert roles.count("aggregation") == 8
        assert roles.count("edge") == 8
        assert roles.count("host") == 16
        assert graph.edge_count == 48

    def test_mesh_full_vs_partial(self):
        full = build_topology("mesh", {"node_count": 6, "connectivity": 1.0})
        partial = build_topology("mesh", {"node_count": 6, "connectivity": 0.2})
        assert full.edge_count == 15
        assert partial.edge_count < full.edge_count
        assert partial.edge_count >= 6  # the ring backbone survives

    def test_geometric_capacity_decays_with_distance(self):
        graph = build_topology("geometric", {"node_count": 40, "radius": 0.5})
        capacities = [attrs["capacity_gbps"] for _, _, attrs in graph.edges(data=True)]
        assert min(capacities) < max(capacities)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValidationError, match="unknown topology family"):
            build_topology("torus")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValidationError, match="unknown parameter"):
            build_topology("ring", {"nodes": 5})

    def test_invalid_parameter_value_rejected(self):
        with pytest.raises(ValidationError):
            build_topology("fat-tree", {"k": 3})  # k must be even
        with pytest.raises(ValidationError):
            build_topology("mesh", {"connectivity": 1.5})

    def test_family_description_available(self):
        assert "fat-tree" in get_family("fat-tree").description or \
            "Clos" in get_family("fat-tree").description


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------
def _square_graph() -> PropertyGraph:
    graph = PropertyGraph(name="square", directed=False)
    for i in range(4):
        graph.add_node(f"s{i}", role="switch")
    for i in range(4):
        graph.add_edge(f"s{i}", f"s{(i + 1) % 4}", capacity_gbps=10, latency_ms=1.0,
                       bytes=1000, connections=10, packets=100)
    return graph


class TestEvents:
    def test_link_down_removes_and_remembers(self):
        graph, state = _square_graph(), EngineState()
        LinkDownEvent(at=1.0, source="s0", target="s1").apply(graph, state)
        assert not graph.has_edge("s0", "s1")
        assert state.removed_edges[("s0", "s1")]["capacity_gbps"] == 10

    def test_link_up_restores_remembered_attributes(self):
        graph, state = _square_graph(), EngineState()
        LinkDownEvent(at=1.0, source="s0", target="s1").apply(graph, state)
        LinkUpEvent(at=2.0, source="s0", target="s1").apply(graph, state)
        assert graph.edge_attributes("s0", "s1")["capacity_gbps"] == 10
        assert graph.edge_attributes("s0", "s1")["bytes"] == 1000

    def test_link_up_with_explicit_attributes(self):
        graph, state = _square_graph(), EngineState()
        LinkUpEvent(at=1.0, source="s0", target="s2",
                    attributes={"capacity_gbps": 99}).apply(graph, state)
        assert graph.edge_attributes("s0", "s2")["capacity_gbps"] == 99

    def test_capacity_degradation_single_link(self):
        graph, state = _square_graph(), EngineState()
        CapacityDegradationEvent(at=1.0, factor=0.5, source="s0",
                                 target="s1").apply(graph, state)
        assert graph.edge_attributes("s0", "s1")["capacity_gbps"] == 5
        assert graph.edge_attributes("s1", "s2")["capacity_gbps"] == 10

    def test_capacity_degradation_all_links(self):
        graph, state = _square_graph(), EngineState()
        CapacityDegradationEvent(at=1.0, factor=0.5).apply(graph, state)
        for _, _, attrs in graph.edges(data=True):
            assert attrs["capacity_gbps"] == 5

    def test_node_leave_then_join_restores_links(self):
        graph, state = _square_graph(), EngineState()
        NodeLeaveEvent(at=1.0, node="s0").apply(graph, state)
        assert not graph.has_node("s0")
        assert graph.edge_count == 2
        NodeJoinEvent(at=2.0, node="s0").apply(graph, state)
        assert graph.has_node("s0")
        assert graph.node_attributes("s0")["role"] == "switch"
        assert graph.edge_count == 4

    def test_node_join_brand_new_node_with_links(self):
        graph, state = _square_graph(), EngineState()
        NodeJoinEvent(at=1.0, node="s9", attributes={"role": "probe"},
                      links=[{"peer": "s0"}]).apply(graph, state)
        assert graph.has_edge("s9", "s0")
        assert graph.node_attributes("s9")["role"] == "probe"

    def test_traffic_surge_scales_counters_and_keeps_ints(self):
        graph, state = _square_graph(), EngineState()
        TrafficSurgeEvent(at=1.0, factor=2.5).apply(graph, state)
        attrs = graph.edge_attributes("s0", "s1")
        assert attrs["bytes"] == 2500 and isinstance(attrs["bytes"], int)
        assert attrs["capacity_gbps"] == 10  # capacity untouched

    def test_traffic_surge_scoped_to_a_node(self):
        graph, state = _square_graph(), EngineState()
        TrafficSurgeEvent(at=1.0, factor=2.0, node="s0").apply(graph, state)
        assert graph.edge_attributes("s0", "s1")["bytes"] == 2000
        assert graph.edge_attributes("s1", "s2")["bytes"] == 1000

    def test_events_are_idempotent_on_missing_targets(self):
        graph, state = _square_graph(), EngineState()
        notes = LinkDownEvent(at=1.0, source="s0", target="s2").apply(graph, state)
        assert "already absent" in notes[0]
        notes = NodeLeaveEvent(at=1.0, node="zz").apply(graph, state)
        assert "already absent" in notes[0]

    def test_event_dict_round_trip_for_every_kind(self):
        events = [
            LinkDownEvent(at=1.0, source="a", target="b"),
            LinkUpEvent(at=2.0, source="a", target="b", attributes={"capacity_gbps": 7}),
            CapacityDegradationEvent(at=3.0, factor=0.25, source="a"),
            NodeLeaveEvent(at=4.0, node="a"),
            NodeJoinEvent(at=5.0, node="c", attributes={"role": "r"},
                          links=[{"peer": "b"}]),
            TrafficSurgeEvent(at=6.0, factor=3.0, node="a", keys=("bytes",)),
            SrlgFailureEvent(at=7.0, group="conduit-1"),
            MaintenanceWindowEvent(at=8.0, end=9.0, node="a"),
            GravityTrafficEvent(at=10.0, factor=1.5, region="nw",
                                keys=("bytes",)),
        ]
        assert {event.kind for event in events} == set(event_kinds())
        for event in events:
            rebuilt = event_from_dict(event.to_dict())
            assert type(rebuilt) is type(event)
            assert rebuilt.to_dict() == event.to_dict()

    def test_event_validation(self):
        with pytest.raises(ValidationError):
            event_from_dict({"kind": "meteor_strike", "at": 1.0})
        with pytest.raises(ValidationError, match="unknown field"):
            event_from_dict({"kind": "link_down", "at": 1.0, "src": "a", "target": "b"})
        with pytest.raises(ValidationError):
            event_from_dict({"kind": "link_down", "at": -1.0, "source": "a", "target": "b"})
        with pytest.raises(ValidationError):
            LinkDownEvent(at=1.0).validate()
        with pytest.raises(ValidationError):
            CapacityDegradationEvent(at=1.0, factor=0).validate()


# ---------------------------------------------------------------------------
# scenario specs
# ---------------------------------------------------------------------------
class TestScenarioSpec:
    def test_json_round_trip_preserves_replay(self):
        spec = get_scenario("wan-fiber-cut")
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.to_dict() == spec.to_dict()
        assert replay_scenario(rebuilt).digests() == replay_scenario(spec).digests()

    def test_spec_file_round_trip(self, tmp_path):
        spec = get_scenario("ring-maintenance")
        path = str(tmp_path / "ring.json")
        spec.save(path)
        assert ScenarioSpec.load(path).to_dict() == spec.to_dict()

    def test_unknown_family_rejected(self):
        with pytest.raises(ValidationError, match="unknown topology family"):
            ScenarioSpec(name="bad", family="torus").validate()

    def test_event_kinds_reported(self):
        assert get_scenario("wan-fiber-cut").event_kinds() == {
            "link_down", "link_up", "node_leave", "node_join"}

    def test_sorted_events(self):
        spec = ScenarioSpec(name="s", family="ring", events=[
            LinkUpEvent(at=5.0, source="ring-0", target="ring-1"),
            LinkDownEvent(at=1.0, source="ring-0", target="ring-1"),
        ])
        assert [event.at for event in spec.sorted_events()] == [1.0, 5.0]


# ---------------------------------------------------------------------------
# the event engine
# ---------------------------------------------------------------------------
class TestEventEngine:
    def test_replay_is_deterministic_across_runs(self):
        # acceptance: a spec with >= 3 event kinds replays to identical
        # snapshot digests on two independent runs
        spec = get_scenario("fat-tree-failover")
        assert len(spec.event_kinds()) >= 3
        first = EventEngine(spec).replay()
        second = EventEngine(spec).replay()
        assert first.digests() == second.digests()
        assert len(set(first.digests())) > 1  # events actually change state

    def test_snapshot_per_distinct_event_time(self):
        spec = get_scenario("manet-churn")
        timeline = replay_scenario(spec)
        distinct_times = {event.at for event in spec.events}
        assert len(timeline.snapshots) == 1 + len(distinct_times)
        assert timeline.snapshots[0].diff_from_previous is None

    def test_diffs_track_structural_changes(self):
        timeline = replay_scenario(get_scenario("wan-fiber-cut"))
        down = timeline.snapshots[1].diff_from_previous
        assert down.missing_edges and not down.extra_edges
        leave = timeline.snapshots[2].diff_from_previous
        assert "pop-3" in leave.missing_nodes

    def test_link_restoration_returns_to_initial_state(self):
        timeline = replay_scenario(get_scenario("ring-maintenance"))
        # capacity halved at t=1 never recovers, so final != initial; but the
        # downed span must be back up with its (degraded) attributes
        final = timeline.final_graph
        assert final.has_edge("ring-0", "ring-1")
        assert final.edge_attributes("ring-0", "ring-1")["capacity_gbps"] == 5

    def test_graph_at_time(self):
        timeline = replay_scenario(get_scenario("wan-fiber-cut"))
        assert timeline.graph_at(0.5).edge_count == timeline.initial_graph.edge_count
        assert timeline.graph_at(3.0).node_count == 9  # pop-3 is gone at t in [2, 6)
        assert timeline.graph_at(100.0) is timeline.final_graph

    def test_graph_at_exact_snapshot_time_selects_that_snapshot(self):
        timeline = replay_scenario(get_scenario("wan-fiber-cut"))
        for snapshot in timeline.snapshots:
            assert timeline.graph_at(snapshot.time) is snapshot.graph
            assert timeline.snapshot_at(snapshot.time) is snapshot

    def test_graph_at_before_first_snapshot_raises(self):
        # regression: times before the initial snapshot used to silently
        # clamp to it, making a mistyped negative timestamp look valid
        timeline = replay_scenario(get_scenario("wan-fiber-cut"))
        with pytest.raises(ValueError, match="precedes the first snapshot"):
            timeline.graph_at(-0.1)
        with pytest.raises(ValueError, match="no snapshots"):
            ScenarioTimeline(scenario_name="empty").graph_at(0.0)

    def test_snapshot_digest_computed_once(self):
        # regression/perf: Snapshot.digest used to re-hash the whole graph on
        # every access; it is now computed once and memoized.  Mutating the
        # graph after the first access must not change the stored digest,
        # while a fresh graph_digest() call sees the mutation.
        timeline = replay_scenario(get_scenario("ring-maintenance"))
        snapshot = timeline.snapshots[1]
        first = snapshot.digest
        assert first == graph_digest(snapshot.graph)
        snapshot.graph.add_node("late-mutation")
        assert snapshot.digest == first            # cached value served
        assert graph_digest(snapshot.graph) != first   # the hash itself moved

    def test_snapshots_are_isolated_copies(self):
        timeline = replay_scenario(get_scenario("ring-maintenance"))
        timeline.snapshots[0].graph.add_node("intruder")
        assert not timeline.snapshots[1].graph.has_node("intruder")

    def test_snapshot_serialization_round_trip(self):
        # satellite: event-engine snapshots survive graph serialization
        for snapshot in replay_scenario(get_scenario("mesh-partition")).snapshots:
            rebuilt = graph_from_json(graph_to_json(snapshot.graph))
            assert graphs_equal(snapshot.graph, rebuilt)
            assert graph_digest(rebuilt) == snapshot.digest

    def test_digest_is_insertion_order_independent(self):
        left = PropertyGraph(directed=False)
        left.add_edge("a", "b", w=1)
        left.add_edge("a", "c", w=2)
        right = PropertyGraph(directed=False)
        right.add_edge("a", "c", w=2)
        right.add_edge("a", "b", w=1)
        assert graph_digest(left) == graph_digest(right)

    def test_timeline_summary_renders(self):
        summary = replay_scenario(get_scenario("star-hub-brownout")).summary()
        assert "Scenario timeline" in summary and "digest" in summary


# ---------------------------------------------------------------------------
# registry and suites
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_cover_every_family_and_event_kind(self):
        specs = builtin_scenarios()
        families = {spec.family for spec in specs}
        kinds = set().union(*(spec.event_kinds() for spec in specs))
        assert families == set(ALL_FAMILIES)
        assert kinds == set(event_kinds())

    def test_every_builtin_replays_and_mutates_state(self):
        for spec in builtin_scenarios():
            digests = replay_scenario(spec).digests()
            assert len(set(digests)) > 1, spec.name

    def test_get_scenario_returns_copies(self):
        get_scenario("manet-churn").events.clear()
        assert get_scenario("manet-churn").events

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError, match="unknown scenario"):
            get_scenario("nope")

    def test_register_scenario_refuses_silent_overwrite(self):
        spec = ScenarioSpec(name="custom-ring", family="ring")
        try:
            register_scenario(spec)
            assert "custom-ring" in scenario_names()
            with pytest.raises(ValidationError, match="already registered"):
                register_scenario(spec)
            register_scenario(spec, replace=True)
        finally:
            from repro.scenarios import registry

            registry._REGISTRY.pop("custom-ring", None)

    def test_default_suite_spans_multiple_families(self):
        suite = default_suite()
        suite.validate()
        assert len(suite.families()) >= 3
        timelines = suite.replay_all()
        assert set(timelines) == {spec.name for spec in suite.scenarios}

    def test_suite_validation(self):
        spec = get_scenario("ring-maintenance")
        with pytest.raises(ValidationError, match="duplicate scenario"):
            ScenarioSuite(name="dup", scenarios=[spec, spec]).validate()
        with pytest.raises(ValidationError, match="at least one"):
            ScenarioSuite(name="empty").validate()


# ---------------------------------------------------------------------------
# application / benchmark / cost integrations
# ---------------------------------------------------------------------------
class TestIntegrations:
    def test_traffic_application_from_scenario_has_full_schema(self):
        application = TrafficAnalysisApplication.from_scenario("fat-tree-failover")
        for _, attrs in application.graph.nodes(data=True):
            assert "address" in attrs and "type" in attrs and "name" in attrs
        for _, _, attrs in application.graph.edges(data=True):
            assert attrs["bytes"] > 0 and attrs["connections"] > 0 and attrs["packets"] > 0

    def test_traffic_overlay_pins_benchmark_prefix(self):
        application = TrafficAnalysisApplication.from_scenario("star-hub-brownout")
        prefixes = {".".join(attrs["address"].split(".")[:2])
                    for _, attrs in application.graph.nodes(data=True)}
        assert "15.76" in prefixes

    def test_traffic_overlay_is_deterministic(self):
        first = TrafficAnalysisApplication.from_scenario("ring-maintenance")
        second = TrafficAnalysisApplication.from_scenario("ring-maintenance")
        assert graph_digest(first.graph) == graph_digest(second.graph)

    def test_traffic_application_at_time(self):
        before = TrafficAnalysisApplication.from_scenario("wan-fiber-cut", at_time=0.0)
        during = TrafficAnalysisApplication.from_scenario("wan-fiber-cut", at_time=3.0)
        assert during.graph.node_count == before.graph.node_count - 1

    def test_malt_application_from_scenario(self):
        application = MaltApplication.from_scenario("malt-chassis-drain")
        assert application.graph.has_node("ju1.a1.m1.s1c1")  # re-racked at t=4

    def test_family_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="malt"):
            TrafficAnalysisApplication.from_scenario("malt-chassis-drain")
        with pytest.raises(ValidationError, match="family"):
            MaltApplication.from_scenario("ring-maintenance")

    def test_benchmark_runner_scenario_sweep(self, small_benchmark_config):
        # acceptance: a >= 3-family scenario sweep completes end to end
        runner = BenchmarkRunner(small_benchmark_config)
        suite = default_suite()
        assert len(suite.families()) >= 3
        reports = runner.run_scenario_suite(
            suite, models=["gpt-4"], queries=traffic_queries()[:4])
        assert set(reports) == {spec.name for spec in suite.scenarios}
        for name, report in reports.items():
            assert report.application == f"scenario:{name}"
            records = report.logger.filtered(model="gpt-4", backend="networkx")
            assert len(records) == 4
            assert 0.0 <= report.summary()["gpt-4"]["networkx"] <= 1.0

    def test_benchmark_runner_malt_scenario(self):
        runner = BenchmarkRunner(BenchmarkConfig())
        report = runner.run_scenario("malt-chassis-drain", models=["gpt-4"])
        records = report.logger.filtered(model="gpt-4")
        assert records
        # a MALT-family scenario runs the MALT corpus, not the traffic one
        assert all(record.query_id.startswith("malt-") for record in records)

    def test_cost_scenario_sweep_across_families(self):
        points = CostAnalyzer(model="gpt-4").scenario_cost_sweep()
        assert len({point.family for point in points}) >= 3
        for point in points:
            assert point.codegen_cost_usd > 0
            assert point.graph_size > 0
            if point.strawman_within_limit:
                assert point.strawman_cost_usd > point.codegen_cost_usd

    def test_cost_scenario_sweep_handles_malt_scenarios(self):
        points = CostAnalyzer(model="gpt-4").scenario_cost_sweep(
            scenarios=builtin_scenarios())
        families = {point.family for point in points}
        assert "malt" in families
        assert len(points) == len(builtin_scenarios())

    def test_from_scenario_respects_subclasses(self):
        class CustomTraffic(TrafficAnalysisApplication):
            pass

        class CustomMalt(MaltApplication):
            pass

        assert type(CustomTraffic.from_scenario("ring-maintenance")) is CustomTraffic
        assert type(CustomMalt.from_scenario("malt-chassis-drain")) is CustomMalt


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestScenariosCli:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "fat-tree" in out and "wan-fiber-cut" in out

    def test_scenarios_describe(self, capsys):
        assert main(["scenarios", "describe", "manet-churn"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["family"] == "geometric"
        assert payload["events"]

    def test_scenarios_generate_family(self, capsys):
        # acceptance: `repro scenarios generate --family fat-tree`
        assert main(["scenarios", "generate", "--family", "fat-tree"]) == 0
        out = capsys.readouterr().out
        assert "family: fat-tree" in out and "nodes: 36" in out

    def test_scenarios_generate_json_is_a_valid_graph(self, capsys, tmp_path):
        path = str(tmp_path / "fat-tree.json")
        assert main(["scenarios", "generate", "--family", "fat-tree",
                     "--set", "k=6", "--json", path]) == 0
        graph = graph_from_json(open(path).read())
        assert isinstance(graph, PropertyGraph)
        assert graph.node_count > 0 and graph.edge_count > 0
        assert graph.graph_attributes["params"]["k"] == 6

    def test_scenarios_generate_replay(self, capsys):
        assert main(["scenarios", "generate", "--scenario", "ring-maintenance",
                     "--replay"]) == 0
        out = capsys.readouterr().out
        assert "Scenario timeline" in out and "link down" in out

    def test_scenarios_generate_from_spec_file(self, capsys, tmp_path):
        path = str(tmp_path / "spec.json")
        get_scenario("star-hub-brownout").save(path)
        assert main(["scenarios", "generate", "--spec", path, "--replay"]) == 0
        assert "star-hub-brownout" in capsys.readouterr().out

    def test_scenarios_without_action_shows_usage(self, capsys):
        assert main(["scenarios"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_validation_errors_print_cleanly(self, capsys):
        assert main(["scenarios", "generate", "--family", "torus"]) == 1
        err = capsys.readouterr().err
        assert "error: unknown topology family" in err

    def test_missing_spec_file_prints_cleanly(self, capsys, tmp_path):
        assert main(["scenarios", "generate", "--spec",
                     str(tmp_path / "missing.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_spec_file_prints_cleanly(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(["scenarios", "generate", "--spec", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_generate_scenario_honors_overrides(self, capsys):
        assert main(["scenarios", "generate", "--scenario", "ring-maintenance",
                     "--set", "node_count=20", "--seed", "99"]) == 0
        out = capsys.readouterr().out
        assert "seed: 99" in out and "nodes: 20" in out