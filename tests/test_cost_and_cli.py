"""Tests for the cost/scalability analysis and the command-line interface."""

import pytest

from repro.benchmark.queries import query_by_id
from repro.cli import build_parser, main
from repro.cost import CostAnalyzer
from repro.traffic import TrafficAnalysisApplication
from repro.utils.validation import ValidationError


class TestCostAnalyzer:
    @pytest.fixture(scope="class")
    def analyzer(self):
        return CostAnalyzer(model="gpt-4")

    def test_query_cost_fields(self, analyzer):
        application = TrafficAnalysisApplication.with_size(20, 20)
        cost = analyzer.query_cost(application, query_by_id("ta-m5"), "networkx")
        assert cost.prompt_tokens > 0
        assert cost.cost_usd > 0
        assert cost.within_token_limit

    def test_strawman_costs_more_than_codegen(self, analyzer):
        cdfs = analyzer.cost_cdf(node_count=40, edge_count=40)
        assert cdfs["strawman"].mean > 2 * cdfs["networkx"].mean

    def test_codegen_cost_flat_with_graph_size(self, analyzer):
        sweep = analyzer.scalability_sweep(graph_sizes=(40, 200, 400))
        codegen_costs = [point.codegen_cost_usd for point in sweep.points]
        assert max(codegen_costs) - min(codegen_costs) < 0.01

    def test_strawman_cost_grows_then_exceeds_limit(self, analyzer):
        sweep = analyzer.scalability_sweep(graph_sizes=(40, 80, 120, 160, 300))
        strawman = [p.strawman_cost_usd for p in sweep.points if p.strawman_cost_usd is not None]
        assert strawman == sorted(strawman)          # monotonically growing
        assert len(strawman) >= 2
        limit = sweep.strawman_limit_size()
        assert limit is not None and limit <= 300     # the paper's cliff (~150)

    def test_average_cost_per_task_below_paper_bound(self, analyzer):
        # the paper reports an average cost around $0.1 per task and always < $0.2
        assert analyzer.average_cost_per_task() < 0.2

    def test_cdf_points_monotone(self, analyzer):
        cdf = analyzer.cost_cdf(backends=("networkx",))["networkx"]
        fractions = [fraction for _, fraction in cdf.points()]
        assert fractions == sorted(fractions)
        assert cdf.max >= cdf.mean

    def test_invalid_completion_tokens(self):
        with pytest.raises(ValidationError):
            CostAnalyzer(completion_tokens=0)


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["ask", "How many nodes?", "--backend", "sql"])
        assert args.command == "ask" and args.backend == "sql"
        assert build_parser().parse_args(["queries"]).command == "queries"

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "repro-nemo" in capsys.readouterr().out

    def test_queries_command(self, capsys):
        assert main(["queries"]) == 0
        out = capsys.readouterr().out
        assert "ta-e1" in out and "malt-h3" in out

    def test_ask_command(self, capsys):
        code = main(["ask", "How many nodes are in the communication graph?",
                     "--nodes", "10", "--edges", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "number_of_nodes" in out
        assert "# result:" in out

    def test_ask_malt(self, capsys):
        code = main(["ask", "How many packet switches are in the topology?",
                     "--application", "malt"])
        assert code == 0
        assert "result" in capsys.readouterr().out

    def test_cost_command(self, capsys):
        assert main(["cost", "--sizes", "40", "160"]) == 0
        out = capsys.readouterr().out
        assert "Cost vs graph size" in out

    def test_cache_max_entries_knob_bounds_the_cache(self, capsys, tmp_path,
                                                     monkeypatch):
        from repro.exec import ResultCache

        monkeypatch.chdir(tmp_path)
        code = main(["benchmark", "--temporal", "--models", "gpt-4",
                     "--scenarios", "fat-tree-failover",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--cache-max-entries", "2"])
        assert code == 0
        assert "Temporal accuracy" in capsys.readouterr().out
        # three (query, model) cells ran, but LRU eviction keeps only two
        assert len(ResultCache(tmp_path / "cache")) == 2

    def test_cache_max_entries_must_be_positive(self, capsys):
        assert main(["benchmark", "--temporal", "--cache-max-entries", "0"]) == 1
        assert "--cache-max-entries" in capsys.readouterr().err

    def test_cache_max_entries_conflicts_with_no_cache(self, capsys):
        assert main(["benchmark", "--temporal", "--no-cache",
                     "--cache-max-entries", "5"]) == 1
        assert "mutually exclusive" in capsys.readouterr().err
