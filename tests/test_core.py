"""Tests for the core framework: code extraction, prompt generation, pipeline."""

import pytest

from repro.core import (
    ApplicationPromptGenerator,
    CodeGenPromptGenerator,
    NetworkManagementPipeline,
    QueryRequest,
    extract_code_blocks,
    extract_python_code,
    extract_sql_code,
)
from repro.core.codeblocks import looks_like_python, python_syntax_error
from repro.core.prompts import build_prompt
from repro.llm import create_provider
from repro.llm.base import LlmProvider
from repro.utils.validation import ValidationError


class TestCodeBlocks:
    def test_extract_tagged_python_block(self):
        text = "Here you go:\n```python\nresult = 1\n```\nthanks"
        assert extract_python_code(text) == "result = 1"

    def test_extract_untagged_block(self):
        text = "```\nresult = 2\n```"
        assert extract_python_code(text) == "result = 2"

    def test_multiple_blocks_joined(self):
        text = "```python\na = 1\n```\nand\n```python\nresult = a\n```"
        assert "a = 1" in extract_python_code(text)
        assert "result = a" in extract_python_code(text)

    def test_bare_python_accepted(self):
        assert extract_python_code("result = 40 + 2") == "result = 40 + 2"

    def test_prose_rejected(self):
        assert extract_python_code("I am sorry, I cannot do that.") == ""

    def test_extract_sql(self):
        assert extract_sql_code("```sql\nSELECT 1\n```") == "SELECT 1"
        assert extract_sql_code("SELECT id FROM nodes") == "SELECT id FROM nodes"
        assert extract_sql_code("no sql here") == ""

    def test_extract_code_blocks_language_filter(self):
        text = "```sql\nSELECT 1\n```\n```python\nx=1\n```"
        assert extract_code_blocks(text, language="sql") == ["SELECT 1"]
        assert len(extract_code_blocks(text)) == 2

    def test_syntax_helpers(self):
        assert looks_like_python("x = 1")
        assert not looks_like_python("def broken(:")
        assert python_syntax_error("x = 1") is None
        assert "line" in python_syntax_error("def broken(:")


class TestPromptGeneration:
    def test_application_context_included(self, traffic_app):
        generator = ApplicationPromptGenerator(traffic_app)
        rendered = generator.render_context("How many nodes are there?")
        assert "Network traffic analysis" in rendered
        assert "How many nodes are there?" in rendered

    def test_backend_instructions_differ(self):
        networkx_prompt = CodeGenPromptGenerator("networkx").render_instructions()
        sql_prompt = CodeGenPromptGenerator("sql").render_instructions()
        assert "networkx" in networkx_prompt
        assert "SQL" in sql_prompt
        with pytest.raises(ValidationError):
            CodeGenPromptGenerator("prolog")

    def test_codegen_prompt_excludes_network_data(self, traffic_app):
        bundle = build_prompt(traffic_app, "How many nodes?", "networkx")
        # the privacy argument: no node addresses appear in the prompt
        for _, attrs in traffic_app.graph.nodes(data=True):
            assert attrs["address"] not in bundle.text

    def test_strawman_prompt_embeds_network_data(self, traffic_app):
        bundle = build_prompt(traffic_app, "How many nodes?", "strawman")
        assert "Network data (JSON)" in bundle.text
        some_address = next(iter(traffic_app.graph.nodes(data=True)))[1]["address"]
        assert some_address in bundle.text

    def test_strawman_prompt_is_much_larger(self, traffic_app):
        codegen = build_prompt(traffic_app, "q", "networkx")
        strawman = build_prompt(traffic_app, "q", "strawman")
        assert strawman.character_count > 3 * codegen.character_count

    def test_metadata_propagated(self, traffic_app):
        bundle = build_prompt(traffic_app, "q", "sql", extra_metadata={"query_id": "x"})
        assert bundle.metadata["query_id"] == "x"
        assert bundle.metadata["backend"] == "sql"

    def test_few_shot_block(self):
        generator = CodeGenPromptGenerator("networkx")
        block = generator.few_shot_block([{"query": "count nodes", "code": "result = 1"}])
        assert "count nodes" in block and "result = 1" in block
        assert generator.few_shot_block([]) == ""


class TestPipeline:
    def test_networkx_analysis_query(self, traffic_app):
        pipeline = NetworkManagementPipeline(traffic_app, create_provider("gpt-4"), "networkx")
        result = pipeline.run_query("How many nodes are in the communication graph?")
        assert result.succeeded
        assert result.result_value == 40
        assert result.cost_usd > 0

    def test_pandas_backend(self, traffic_app):
        pipeline = NetworkManagementPipeline(traffic_app, create_provider("gpt-4"), "pandas")
        result = pipeline.run_query("What is the total number of bytes transferred across all edges?")
        assert result.succeeded
        assert result.result_value == traffic_app.graph.total_edge_weight("bytes")

    def test_sql_backend(self, traffic_app):
        pipeline = NetworkManagementPipeline(traffic_app, create_provider("gpt-4"), "sql")
        result = pipeline.run_query("How many edges are in the communication graph?")
        assert result.succeeded
        assert result.result_value.scalar() == 40

    def test_mutation_query_produces_updated_graph(self, traffic_app):
        pipeline = NetworkManagementPipeline(traffic_app, create_provider("gpt-4"), "networkx")
        result = pipeline.run_query(
            "Add a label app:production to nodes with address prefix 15.76")
        assert result.succeeded
        labelled = [n for n, attrs in result.updated_graph.nodes(data=True)
                    if attrs.get("app") == "production"]
        assert labelled
        # the application's own state is untouched until sync_state is called
        assert not any("app" in attrs for _, attrs in traffic_app.graph.nodes(data=True))

    def test_strawman_answers_without_code(self, traffic_app):
        pipeline = NetworkManagementPipeline(traffic_app, create_provider("gpt-4"), "strawman")
        result = pipeline.run_query("How many nodes are in the communication graph?")
        assert result.succeeded
        assert result.code == ""
        assert result.result_value == 40

    def test_strawman_hits_token_limit_on_large_graph(self):
        from repro.traffic import TrafficAnalysisApplication

        application = TrafficAnalysisApplication.with_size(200, 200)
        pipeline = NetworkManagementPipeline(application, create_provider("gpt-4"), "strawman")
        result = pipeline.run_query("How many nodes are in the communication graph?")
        assert not result.succeeded
        assert result.error_stage == "llm"
        assert "token" in result.error_message

    def test_execution_failure_captured(self, traffic_app):
        class BrokenCodeProvider(LlmProvider):
            model_name = "gpt-4"

            def _generate(self, request):
                return "```python\nresult = undefined_variable\n```", {}

        pipeline = NetworkManagementPipeline(traffic_app, BrokenCodeProvider(), "networkx")
        result = pipeline.run_query("whatever")
        assert not result.succeeded
        assert result.error_stage == "execute"
        assert result.execution.error_type == "NameError"

    def test_response_without_code_reported(self, traffic_app):
        class ProseProvider(LlmProvider):
            model_name = "gpt-4"

            def _generate(self, request):
                return "I am unable to help with that request.", {}

        pipeline = NetworkManagementPipeline(traffic_app, ProseProvider(), "networkx")
        result = pipeline.run_query("whatever")
        assert result.error_stage == "extract"

    def test_invalid_backend_rejected(self, traffic_app):
        with pytest.raises(ValidationError):
            NetworkManagementPipeline(traffic_app, create_provider("gpt-4"), "prolog")

    def test_request_object_roundtrip(self, traffic_app):
        pipeline = NetworkManagementPipeline(traffic_app, create_provider("gpt-4"), "networkx")
        request = QueryRequest(query="How many nodes are in the communication graph?",
                               backend="networkx", metadata={"query_id": "ta-e1"})
        result = pipeline.run(request)
        assert result.request is request
        assert result.prompt.metadata["query_id"] == "ta-e1"
