"""Tests for the interprocedural effect engine (callgraph/effects/baseline)."""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    analyze_file,
    baseline_entries,
    compare_baseline,
    get_rules,
    load_baseline,
    write_baseline,
)
from repro.analysis.framework import Finding
from repro.analysis import callgraph, effects
from repro.analysis.effects import clear_effect_cache
from repro.utils.validation import ValidationError

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
PACKAGE_ROOT = Path(repro.__file__).parent


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_effect_cache()
    yield
    clear_effect_cache()


def live_project():
    return effects.project_for_root(PACKAGE_ROOT)


def fixture_project(name):
    return effects.analyze_project(FIXTURES / name, single_relpath=name)


class TestCallGraph:
    def test_worker_roots_are_the_fabric_workers(self):
        graph = live_project().graph
        assert graph.worker_roots == [
            "repro.api:run_api_cell",
            "repro.benchmark.tasks:run_benchmark_cell",
            "repro.benchmark.tasks:run_temporal_cell",
            "repro.cost.tasks:run_scalability_point",
            "repro.cost.tasks:run_scenario_cost_point",
        ]

    def test_thread_roots_cover_executor_and_serve_paths(self):
        graph = live_project().graph
        assert "repro.exec.workers:run_chunk" in graph.thread_roots
        assert "repro.exec.workers:run_task" in graph.thread_roots
        assert "repro.serve.service:ServerThread._run" in graph.thread_roots
        assert ("repro.serve.service:ReproService._handle_connection"
                in graph.thread_roots)
        # the off-loop executor dispatch target counts as a thread entry
        assert ("repro.serve.service:ReproService._answer_documents"
                in graph.thread_roots)

    def test_direct_and_imported_calls_resolve(self, tmp_path):
        (tmp_path / "helpers.py").write_text(
            "def helper():\n    return 1\n")
        (tmp_path / "main.py").write_text(
            "from helpers import helper as h\n"
            "def caller():\n    return h()\n")
        graph = callgraph.build_call_graph(tmp_path)
        caller = graph.functions["main:caller"]
        assert [site.target for site in caller.calls] == ["helpers:helper"]

    def test_module_alias_calls_resolve(self, tmp_path):
        (tmp_path / "util.py").write_text("def f():\n    return 1\n")
        (tmp_path / "main.py").write_text(
            "import util as u\n"
            "def caller():\n    return u.f()\n")
        graph = callgraph.build_call_graph(tmp_path)
        caller = graph.functions["main:caller"]
        assert [site.target for site in caller.calls] == ["util:f"]

    def test_self_method_calls_resolve(self, tmp_path):
        (tmp_path / "svc.py").write_text(
            "class Service:\n"
            "    def outer(self):\n"
            "        return self.inner()\n"
            "    def inner(self):\n"
            "        return 1\n")
        graph = callgraph.build_call_graph(tmp_path)
        outer = graph.functions["svc:Service.outer"]
        assert [site.target for site in outer.calls] == ["svc:Service.inner"]

    def test_nested_defs_attribute_to_enclosing_function(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import time\n"
            "def build():\n"
            "    def stamp():\n"
            "        return time.time()\n"
            "    return stamp\n")
        project = effects.analyze_project(tmp_path)
        assert effects.NONDETERMINISTIC in project.effects["mod:build"]

    def test_unresolvable_dynamic_dispatch_is_conservative(self, tmp_path):
        # two classes define the same method name: no edge may be guessed
        (tmp_path / "mod.py").write_text(
            "class A:\n"
            "    def compute_thing(self):\n        return 1\n"
            "class B:\n"
            "    def compute_thing(self):\n        return 2\n"
            "def caller(x):\n    return x.compute_thing()\n")
        graph = callgraph.build_call_graph(tmp_path)
        assert graph.functions["mod:caller"].calls == []

    def test_worker_ref_string_detection(self):
        project = fixture_project("effect_worker_purity_bad.py")
        assert project.graph.worker_roots == [
            "effect_worker_purity_bad:run_cell"]


class TestEffectInference:
    def test_three_deep_chain_reaches_the_worker(self):
        project = fixture_project("effect_worker_purity_bad.py")
        worker = "effect_worker_purity_bad:run_cell"
        assert effects.NONDETERMINISTIC in project.effects[worker]
        chain = project.effect_chain(worker, effects.NONDETERMINISTIC)
        hops = [step[0].split(":")[1] for step in chain]
        assert hops == ["run_cell", "_evaluate", "_stamp"]
        assert "wall-clock read time.time()" in chain[-1][2]

    def test_explain_renders_the_carrying_chain(self):
        project = fixture_project("effect_worker_purity_bad.py")
        text = effects.render_explain(project, "run_cell")
        assert "nondeterministic:" in text
        for hop in ("run_cell", "_evaluate", "_stamp"):
            assert hop in text
        assert "wall-clock read time.time()" in text

    def test_explain_unknown_function(self):
        project = fixture_project("effect_worker_purity_good.py")
        assert "no function matches" in effects.render_explain(
            project, "nope:nope")

    def test_good_worker_chain_is_pure(self):
        project = fixture_project("effect_worker_purity_good.py")
        worker = "effect_worker_purity_good:run_cell"
        assert effects.NONDETERMINISTIC not in project.effects[worker]

    def test_sorted_wrapping_neutralizes_listing_anywhere_in_subtree(
            self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "def ids(directory):\n"
            "    return sorted(p.stem for p in directory.glob('*.json'))\n")
        project = effects.analyze_project(tmp_path)
        assert effects.NONDETERMINISTIC not in project.effects["mod:ids"]

    def test_run_in_executor_dispatch_creates_no_edge(self):
        project = fixture_project("effect_async_blocking_good.py")
        coroutine = "effect_async_blocking_good:handle_query"
        assert effects.BLOCKING_IO not in project.effects[coroutine]
        # ...but the dispatched callable becomes a thread root
        assert ("effect_async_blocking_good:_answer"
                in project.graph.thread_roots)

    def test_locked_write_sites_are_marked(self):
        project = fixture_project("effect_thread_shared_state_good.py")
        sites = project.mutation_sites[
            "effect_thread_shared_state_good:_publish"]
        assert [site.locked for site in sites] == [True]

    def test_unlocked_write_sites_are_marked(self):
        project = fixture_project("effect_thread_shared_state_bad.py")
        sites = project.mutation_sites[
            "effect_thread_shared_state_bad:_publish"]
        assert [site.locked for site in sites] == [False]
        chain = project.thread_chain("effect_thread_shared_state_bad:_publish")
        assert [hop.split(":")[1] for hop in chain] == [
            "_collect", "_publish"]


class TestEffectRules:
    def run(self, rule_id, name, relpath=None):
        clear_effect_cache()
        return analyze_file(FIXTURES / name, rules=get_rules([rule_id]),
                            relpath=relpath or name)

    def test_finding_message_carries_the_chain(self):
        findings = self.run("effect-worker-purity",
                            "effect_worker_purity_bad.py")
        assert len(findings) == 1
        message = findings[0].message
        assert "run_cell -> _evaluate -> _stamp" in message
        assert "wall-clock read time.time()" in message

    def test_worker_env_is_warning_severity(self):
        findings = self.run("effect-worker-env", "effect_worker_env_bad.py")
        assert [f.severity for f in findings] == [SEVERITY_WARNING]

    def test_async_blocking_names_the_blocking_call(self):
        findings = self.run("effect-async-blocking",
                            "effect_async_blocking_bad.py",
                            relpath="serve/effect_async_blocking_bad.py")
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message

    def test_thread_shared_state_names_root_and_global(self):
        findings = self.run("effect-thread-shared-state",
                            "effect_thread_shared_state_bad.py")
        assert len(findings) == 1
        assert "_RESULTS" in findings[0].message
        assert "_collect -> _publish" in findings[0].message

    def test_obs_write_exempts_exporter_files(self):
        clear_effect_cache()
        findings = analyze_file(
            FIXTURES / "effect_obs_write_bad.py",
            rules=get_rules(["effect-obs-write"]),
            relpath="obs/export.py")
        assert findings == []

    def test_effect_finding_is_suppressible(self, tmp_path):
        (tmp_path / "worker.py").write_text(
            "import time\n"
            "W = 'worker:run'\n"
            "def run(payload):\n"
            "    # the finding anchors where the effect enters the worker\n"
            "    return _stamp(payload)  # repro: allow[effect-worker-purity]\n"
            "def _stamp(p):\n"
            "    return time.time()\n")
        clear_effect_cache()
        findings = analyze_file(tmp_path / "worker.py",
                                rules=get_rules(["effect-worker-purity"]),
                                relpath="worker.py")
        assert findings == []

    def test_effect_rule_ids_match_registry(self):
        rules = get_rules(effects.effect_rule_ids())
        assert [r.id for r in rules] == effects.effect_rule_ids()


class TestBaseline:
    def _warning(self, path="src/x.py", rule_id="det-env-read", line=1):
        return Finding(rule_id=rule_id, severity=SEVERITY_WARNING,
                       path=path, line=line, col=0, message="m")

    def _error(self):
        return Finding(rule_id="det-wallclock", severity=SEVERITY_ERROR,
                       path="src/x.py", line=9, col=0, message="m")

    def test_entries_aggregate_warnings_only(self):
        findings = [self._warning(line=1), self._warning(line=2),
                    self._error()]
        assert baseline_entries(findings) == {"det-env-read|src/x.py": 2}

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self._warning()])
        assert load_baseline(path) == {"det-env-read|src/x.py": 1}
        payload = json.loads(path.read_text())
        assert payload["version"] == 1

    def test_new_warning_fails_the_ratchet(self):
        new, stale = compare_baseline(
            [self._warning(), self._warning(path="src/y.py")],
            {"det-env-read|src/x.py": 1})
        assert len(new) == 1 and "src/y.py" in new[0]
        assert stale == []

    def test_count_increase_fails_the_ratchet(self):
        new, stale = compare_baseline(
            [self._warning(line=1), self._warning(line=2)],
            {"det-env-read|src/x.py": 1})
        assert len(new) == 1 and "1 new det-env-read" in new[0]
        assert stale == []

    def test_stale_entry_forces_ratchet_down(self):
        new, stale = compare_baseline([], {"det-env-read|src/x.py": 1})
        assert new == []
        assert len(stale) == 1
        assert "regenerate" in stale[0]

    def test_exact_match_passes(self):
        new, stale = compare_baseline(
            [self._warning()], {"det-env-read|src/x.py": 1})
        assert (new, stale) == ([], [])

    def test_load_rejects_missing_and_malformed(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            load_baseline(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(ValidationError, match="entries"):
            load_baseline(bad)
        bad.write_text('{"entries": {"k": -1}}')
        with pytest.raises(ValidationError, match="positive"):
            load_baseline(bad)


class TestEffectsCli:
    def test_effects_selection_runs_clean_on_live_tree(self, capsys):
        from repro.cli.main import main

        clear_effect_cache()
        assert main(["analyze", "--effects", str(PACKAGE_ROOT)]) == 0
        assert "clean (5 rules)" in capsys.readouterr().out

    def test_effects_conflicts_with_rules(self, capsys):
        from repro.cli.main import main

        assert main(["analyze", "--effects", "--rules", "det-wallclock"]) == 1
        assert "--effects" in capsys.readouterr().err

    def test_explain_prints_chain_for_live_worker(self, capsys):
        from repro.cli.main import main

        clear_effect_cache()
        assert main(["analyze", "--explain",
                     "repro.benchmark.tasks:run_benchmark_cell",
                     str(PACKAGE_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "repro.benchmark.tasks:run_benchmark_cell" in out
        assert "blocking-io" in out
        assert "thread-reachable via" in out

    def test_baseline_cli_round_trip(self, capsys, tmp_path):
        from repro.cli.main import main

        baseline = tmp_path / "analysis_baseline.json"
        clear_effect_cache()
        assert main(["analyze", "--write-baseline", str(baseline),
                     str(PACKAGE_ROOT)]) == 0
        capsys.readouterr()
        clear_effect_cache()
        assert main(["analyze", "--baseline", str(baseline),
                     str(PACKAGE_ROOT)]) == 0
        assert "baseline: ok" in capsys.readouterr().err

    def test_baseline_cli_flags_new_warning(self, capsys, tmp_path):
        from repro.cli.main import main

        baseline = tmp_path / "analysis_baseline.json"
        write_baseline(baseline, [])
        # named api.py so its relpath lands inside the determinism scope
        source = tmp_path / "api.py"
        source.write_text("import os\nJOBS = os.getenv('J')\n")
        # det-env-read is warning severity: without the ratchet this passes
        clear_effect_cache()
        assert main(["analyze", "--rules", "det-env-read",
                     str(source)]) == 0
        capsys.readouterr()
        clear_effect_cache()
        assert main(["analyze", "--rules", "det-env-read",
                     "--baseline", str(baseline), str(source)]) == 1
        assert "baseline: NEW" in capsys.readouterr().err


class TestLiveTreeContracts:
    """The live tree satisfies every effect contract (regression lock)."""

    def test_no_unlocked_thread_reachable_writes(self):
        project = live_project()
        offenders = []
        for qualname, sites in sorted(project.mutation_sites.items()):
            if qualname not in project.thread_pred:
                continue
            offenders.extend(
                f"{qualname}:{site.lineno} {site.describe()}"
                for site in sites if not site.locked)
        # the two obs install points are serialized under _install_lock
        assert offenders == []

    def test_workers_are_transitively_deterministic(self):
        project = live_project()
        for worker in project.graph.worker_roots:
            assert effects.NONDETERMINISTIC not in project.effects[worker], \
                project.effect_chain(worker, effects.NONDETERMINISTIC)
            assert effects.ENV_READ not in project.effects[worker], \
                project.effect_chain(worker, effects.ENV_READ)

    def test_serve_coroutines_never_block(self):
        project = live_project()
        for node in project.graph.functions.values():
            if not node.is_async or not node.relpath.startswith("serve/"):
                continue
            assert effects.BLOCKING_IO not in project.effects[node.qualname], \
                project.effect_chain(node.qualname, effects.BLOCKING_IO)
