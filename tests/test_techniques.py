"""Tests for complementary synthesis techniques (pass@k, self-debug,
execution-consistency selection, few-shot store, and the Table-6 case study)."""

import pytest

from repro.benchmark import BenchmarkRunner
from repro.benchmark.queries import query_by_id
from repro.llm import create_provider
from repro.techniques import (
    ExecutionConsistencySelector,
    FewShotExampleStore,
    ImprovementCaseStudy,
    PassAtKRunner,
    SelfDebugRunner,
)
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def runner(small_benchmark_config):
    return BenchmarkRunner(small_benchmark_config)


@pytest.fixture(scope="module")
def malt_application(small_benchmark_config):
    return small_benchmark_config.malt_application()


class TestPassAtK:
    def test_passing_query_stops_after_first_attempt(self, runner, malt_application):
        result = PassAtKRunner(runner, k=5).evaluate(
            malt_application, query_by_id("malt-e1"), "bard", "networkx")
        assert result.passed
        assert result.first_passing_attempt == 1
        assert len(result.attempts) == 1

    def test_bard_recovers_on_later_attempt(self, runner, malt_application):
        # malt-m2 fails for Bard at pass@1 but recovers within 5 samples
        result = PassAtKRunner(runner, k=5).evaluate(
            malt_application, query_by_id("malt-m2"), "bard", "networkx")
        assert result.passed
        assert result.first_passing_attempt > 1

    def test_deterministic_model_does_not_recover(self, runner, malt_application):
        # GPT-4 at temperature 0 returns the same faulty answer every time
        result = PassAtKRunner(runner, k=3).evaluate(
            malt_application, query_by_id("malt-h2"), "gpt-4", "networkx")
        assert not result.passed
        assert len(result.attempts) == 3
        assert result.total_cost_usd > 0

    def test_invalid_k_rejected(self, runner):
        with pytest.raises(ValidationError):
            PassAtKRunner(runner, k=0)


class TestSelfDebug:
    def test_fixes_a_recoverable_failure(self, runner, malt_application):
        debugger = SelfDebugRunner(runner, max_rounds=1)
        queries = [query_by_id("malt-m2"), query_by_id("malt-m3"),
                   query_by_id("malt-e3"), query_by_id("malt-h2"), query_by_id("malt-h3")]
        rate = debugger.fix_rate(malt_application, queries, "bard", "networkx")
        assert 0.0 < rate < 1.0

    def test_pass_on_first_round_uses_no_feedback(self, runner, malt_application):
        debugger = SelfDebugRunner(runner, max_rounds=1)
        result = debugger.evaluate(malt_application, query_by_id("malt-e1"),
                                   "bard", "networkx")
        assert result.passed and result.rounds_used == 0

    def test_feedback_mentions_error(self, runner, malt_application):
        debugger = SelfDebugRunner(runner, max_rounds=1)
        record = runner.run_query(malt_application, query_by_id("malt-h2"), "gpt-4", "networkx")
        feedback = debugger._failure_feedback(record)
        assert "failed" in feedback
        assert record.failure_stage in feedback


class TestSelection:
    def test_selects_consistent_answer(self, malt_application):
        selector = ExecutionConsistencySelector(
            malt_application, create_provider("gpt-4"), "networkx", samples=3)
        outcome = selector.select("How many packet switches are in the topology?")
        assert outcome.selected is not None
        assert outcome.agreement == 3
        assert outcome.selected.result_value == 32

    def test_all_samples_failing(self, traffic_app):
        selector = ExecutionConsistencySelector(
            traffic_app, create_provider("gpt-4"), "networkx", samples=2)
        # a query the synthesizer cannot express -> every sample is faulty code
        outcome = selector.select("Translate this network topology into French prose")
        assert outcome.selected is None or outcome.agreement <= 2

    def test_invalid_sample_count(self, traffic_app):
        with pytest.raises(ValidationError):
            ExecutionConsistencySelector(traffic_app, create_provider("gpt-4"),
                                         "networkx", samples=0)


class TestFewShotStore:
    def test_selects_most_similar_example(self):
        store = FewShotExampleStore(max_examples_per_prompt=2)
        store.add("How many nodes are in the graph?", "result = G.number_of_nodes()",
                  "traffic_analysis", "networkx")
        store.add("Remove light edges", "G.remove_edges_from([])",
                  "traffic_analysis", "networkx")
        store.add("irrelevant", "x", "malt", "networkx")
        selected = store.select("How many nodes does the communication graph have?",
                                "traffic_analysis", "networkx")
        assert selected
        assert selected[0].code == "result = G.number_of_nodes()"

    def test_prompt_examples_shape(self):
        store = FewShotExampleStore()
        store.add("count nodes", "result = 1", "traffic_analysis", "networkx")
        examples = store.prompt_examples("count nodes please", "traffic_analysis", "networkx")
        assert examples == [{"query": "count nodes", "code": "result = 1"}]

    def test_backend_isolation(self):
        store = FewShotExampleStore()
        store.add("count nodes", "SELECT COUNT(*) FROM nodes", "traffic_analysis", "sql")
        assert store.select("count nodes", "traffic_analysis", "networkx") == []
        assert len(store) == 1

    def test_invalid_limit(self):
        with pytest.raises(ValidationError):
            FewShotExampleStore(max_examples_per_prompt=0)


class TestImprovementCaseStudy:
    @pytest.fixture(scope="class")
    def study(self, small_benchmark_config):
        return ImprovementCaseStudy(small_benchmark_config, k=5)

    def test_table6_reproduction(self, study):
        overall = study.overall_accuracy_with_techniques("malt", "bard", "networkx")
        assert overall["pass@1"] == pytest.approx(4 / 9)       # paper: 0.44
        assert overall["pass@5"] == pytest.approx(1.0)          # paper: 1.0
        assert overall["self-debug"] == pytest.approx(2 / 3)    # paper: 0.67

    def test_failing_query_study(self, study):
        report = study.run("malt", "bard", "networkx")
        assert report.pass_at_1 == 0.0
        assert report.pass_at_k == 1.0
        assert 0.0 < report.self_debug <= 1.0
        assert report.studied_queries
        assert "Pass@5" in report.render()
