"""Tests for the mini dataframe library (Series, DataFrame, GroupBy)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frames import DataFrame, FrameError, Series, concat


def sample_frame() -> DataFrame:
    return DataFrame({
        "id": ["a", "b", "c", "d"],
        "bytes": [100, 50, 10, 50],
        "type": ["host", "router", "host", "switch"],
        "address": ["10.0.0.1", "10.0.1.2", "15.76.0.9", "10.0.0.7"],
    })


class TestSeries:
    def test_comparison_produces_mask(self):
        series = Series([1, 5, 3])
        mask = series > 2
        assert mask.values == [False, True, True]

    def test_arithmetic(self):
        series = Series([1, 2, 3])
        assert (series + 1).values == [2, 3, 4]
        assert (series * 2).values == [2, 4, 6]
        assert (10 - series).values == [9, 8, 7]

    def test_str_accessor(self):
        series = Series(["10.0.0.1", "15.76.0.9"])
        assert series.str.startswith("15.76").values == [False, True]
        assert series.str.contains("0.0").values == [True, False]
        assert series.str.split(".").values[0] == ["10", "0", "0", "1"]

    def test_aggregations(self):
        series = Series([4, 2, 6])
        assert series.sum() == 12
        assert series.mean() == 4
        assert series.min() == 2
        assert series.max() == 6
        assert series.idxmax() == 2
        assert series.nlargest(2).values == [6, 4]

    def test_empty_aggregation_errors(self):
        with pytest.raises(ValueError):
            Series([]).mean()
        with pytest.raises(ValueError):
            Series([]).max()

    def test_unique_and_value_counts(self):
        series = Series(["a", "b", "a", "c", "a"])
        assert series.unique() == ["a", "b", "c"]
        assert series.nunique() == 3
        counts = series.value_counts()
        assert counts.values[0] == 3
        assert counts.index[0] == "a"

    def test_isin_and_fillna(self):
        series = Series([1, None, 3])
        assert series.isin([1, 3]).values == [True, False, True]
        assert series.fillna(0).values == [1, 0, 3]
        assert series.isna().values == [False, True, False]

    def test_map_and_astype(self):
        series = Series(["1", "2"])
        assert series.astype(int).values == [1, 2]
        assert series.map(lambda v: v * 2).values == ["11", "22"]

    def test_logical_operators(self):
        left = Series([True, False, True])
        right = Series([True, True, False])
        assert (left & right).values == [True, False, False]
        assert (left | right).values == [True, True, True]
        assert (~left).values == [False, True, False]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Series([1, 2]) + Series([1, 2, 3])


class TestDataFrame:
    def test_construction_and_shape(self):
        frame = sample_frame()
        assert frame.shape == (4, 4)
        assert frame.columns == ["id", "bytes", "type", "address"]
        assert not frame.empty

    def test_unequal_columns_rejected(self):
        with pytest.raises(FrameError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_from_records_union_of_keys(self):
        frame = DataFrame.from_records([{"a": 1}, {"b": 2}])
        assert frame.columns == ["a", "b"]
        assert frame.row(0) == {"a": 1, "b": None}

    def test_column_access(self):
        frame = sample_frame()
        assert frame["bytes"].values == [100, 50, 10, 50]
        with pytest.raises(FrameError):
            frame["missing"]

    def test_multi_column_selection(self):
        frame = sample_frame()[["id", "bytes"]]
        assert frame.columns == ["id", "bytes"]

    def test_boolean_mask_selection(self):
        frame = sample_frame()
        heavy = frame[frame["bytes"] >= 50]
        assert len(heavy) == 3
        assert heavy["id"].values == ["a", "b", "d"]

    def test_setitem_scalar_and_series(self):
        frame = sample_frame()
        frame["flag"] = True
        assert frame["flag"].values == [True] * 4
        frame["double"] = frame["bytes"] * 2
        assert frame["double"].values == [200, 100, 20, 100]

    def test_sort_values(self):
        frame = sample_frame().sort_values("bytes", ascending=False)
        assert frame["id"].values == ["a", "b", "d", "c"]

    def test_sort_values_multiple_keys(self):
        frame = sample_frame().sort_values(["bytes", "id"], ascending=[False, True])
        assert frame["id"].values == ["a", "b", "d", "c"]

    def test_sort_unknown_column(self):
        with pytest.raises(FrameError):
            sample_frame().sort_values("nope")

    def test_head_tail_copy(self):
        frame = sample_frame()
        assert len(frame.head(2)) == 2
        assert frame.tail(1)["id"].values == ["d"]
        copied = frame.copy()
        copied["bytes"] = 0
        assert frame["bytes"].values[0] == 100

    def test_drop_and_rename(self):
        frame = sample_frame().drop("address").rename({"bytes": "volume"})
        assert "address" not in frame.columns
        assert "volume" in frame.columns

    def test_assign_with_callable(self):
        frame = sample_frame().assign(kb=lambda f: [b / 1000 for b in f["bytes"].values])
        assert frame["kb"].values[0] == 0.1

    def test_drop_duplicates(self):
        frame = DataFrame({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert len(frame.drop_duplicates()) == 2
        assert len(frame.drop_duplicates(subset=["a"])) == 2

    def test_merge_inner(self):
        left = DataFrame({"key": ["a", "b"], "left_value": [1, 2]})
        right = DataFrame({"key": ["b", "c"], "right_value": [3, 4]})
        merged = left.merge(right, on="key")
        assert len(merged) == 1
        assert merged.row(0) == {"key": "b", "left_value": 2, "right_value": 3}

    def test_merge_left(self):
        left = DataFrame({"key": ["a", "b"], "left_value": [1, 2]})
        right = DataFrame({"key": ["b"], "right_value": [3]})
        merged = left.merge(right, on="key", how="left")
        assert len(merged) == 2
        assert merged.row(0)["right_value"] is None

    def test_merge_overlapping_columns_get_suffixes(self):
        left = DataFrame({"key": ["a"], "value": [1]})
        right = DataFrame({"key": ["a"], "value": [2]})
        merged = left.merge(right, on="key")
        assert set(merged.columns) == {"key", "value_x", "value_y"}

    def test_merge_missing_key_rejected(self):
        with pytest.raises(FrameError):
            DataFrame({"a": [1]}).merge(DataFrame({"b": [1]}), on="a")

    def test_nlargest_nsmallest(self):
        frame = sample_frame()
        assert frame.nlargest(1, "bytes")["id"].values == ["a"]
        assert frame.nsmallest(1, "bytes")["id"].values == ["c"]

    def test_filter_rows_and_apply_rows(self):
        frame = sample_frame().filter_rows(lambda row: row["type"] == "host")
        assert len(frame) == 2
        enriched = frame.apply_rows(lambda row: row["bytes"] * 2, "double")
        assert enriched["double"].values == [200, 20]

    def test_concat(self):
        combined = concat([sample_frame().head(1), sample_frame().tail(1)])
        assert len(combined) == 2

    def test_equals(self):
        assert sample_frame().equals(sample_frame())
        assert not sample_frame().equals(sample_frame().head(2))


class TestGroupBy:
    def test_agg_sum(self):
        frame = sample_frame()
        grouped = frame.groupby("type").agg({"bytes": "sum"})
        as_dict = dict(zip(grouped["type"].values, grouped["bytes"].values))
        assert as_dict == {"host": 110, "router": 50, "switch": 50}

    def test_series_groupby_shortcut(self):
        grouped = sample_frame().groupby("type")["bytes"].sum()
        as_dict = dict(zip(grouped["type"].values, grouped["bytes"].values))
        assert as_dict["host"] == 110

    def test_size(self):
        sizes = sample_frame().groupby("type").size()
        as_dict = dict(zip(sizes["type"].values, sizes["size"].values))
        assert as_dict == {"host": 2, "router": 1, "switch": 1}

    def test_iteration_and_apply(self):
        groups = dict(iter(sample_frame().groupby("type")))
        assert set(groups) == {"host", "router", "switch"}
        applied = sample_frame().groupby("type").apply(len)
        assert applied["host"] == 2

    def test_agg_with_callable(self):
        grouped = sample_frame().groupby("type").agg({"bytes": lambda s: s.max() - s.min()})
        as_dict = dict(zip(grouped["type"].values, grouped["bytes"].values))
        assert as_dict["host"] == 90

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(FrameError):
            sample_frame().groupby("type").agg({"bytes": "median"})

    def test_unknown_column_rejected(self):
        with pytest.raises(FrameError):
            sample_frame().groupby("missing")


# ---------------------------------------------------------------------------
# property-based checks against plain-Python reference implementations
# ---------------------------------------------------------------------------
values_strategy = st.lists(st.integers(-1000, 1000), min_size=1, max_size=50)


@settings(max_examples=50, deadline=None)
@given(values_strategy)
def test_series_sum_matches_python(values):
    assert Series(values).sum() == sum(values)


@settings(max_examples=50, deadline=None)
@given(values_strategy, st.integers(-1000, 1000))
def test_mask_matches_filter(values, threshold):
    frame = DataFrame({"v": values})
    selected = frame[frame["v"] > threshold]["v"].values
    assert selected == [v for v in values if v > threshold]


@settings(max_examples=50, deadline=None)
@given(values_strategy)
def test_sort_values_matches_sorted(values):
    frame = DataFrame({"v": values}).sort_values("v")
    assert frame["v"].values == sorted(values)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 100)),
                min_size=1, max_size=40))
def test_groupby_sum_matches_manual(pairs):
    frame = DataFrame({"key": [k for k, _ in pairs], "value": [v for _, v in pairs]})
    grouped = frame.groupby("key")["value"].sum()
    expected = {}
    for key, value in pairs:
        expected[key] = expected.get(key, 0) + value
    actual = dict(zip(grouped["key"].values, grouped["value"].values))
    assert actual == expected
