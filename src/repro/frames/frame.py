"""The :class:`DataFrame` table type of the mini dataframe library."""

from __future__ import annotations

import copy as _copy
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

from repro.frames.series import Series
from repro.utils.validation import ValidationError


class FrameError(ValidationError):
    """Raised for invalid dataframe operations."""


Record = Dict[str, Any]


class DataFrame:
    """An ordered collection of equally-long named columns.

    Construction accepts either a mapping from column name to values::

        DataFrame({"node": ["a", "b"], "bytes": [10, 20]})

    or a list of record dictionaries via :meth:`from_records`.
    """

    def __init__(self, data: Optional[Mapping[str, Iterable[Any]]] = None,
                 columns: Optional[Sequence[str]] = None) -> None:
        self._columns: Dict[str, List[Any]] = {}
        if data:
            lengths = set()
            for name, values in data.items():
                values = list(values)
                lengths.add(len(values))
                self._columns[str(name)] = values
            if len(lengths) > 1:
                raise FrameError(f"columns have differing lengths: {sorted(lengths)}")
        elif columns:
            for name in columns:
                self._columns[str(name)] = []

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Record],
                     columns: Optional[Sequence[str]] = None) -> "DataFrame":
        """Build a dataframe from a list of dictionaries.

        Missing keys become ``None``; when *columns* is omitted the union of
        keys (in first-seen order) is used.
        """
        records = list(records)
        if columns is None:
            ordered: Dict[str, None] = {}
            for record in records:
                for key in record:
                    ordered.setdefault(str(key), None)
            columns = list(ordered)
        frame = cls(columns=columns)
        for record in records:
            frame._append_record({col: record.get(col) for col in columns})
        return frame

    def _append_record(self, record: Record) -> None:
        for column in self._columns:
            self._columns[column].append(record.get(column))

    # ------------------------------------------------------------------
    # shape and basic access
    # ------------------------------------------------------------------
    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def shape(self) -> tuple:
        return (len(self), len(self._columns))

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataFrame(rows={len(self)}, columns={self.columns})"

    def __getitem__(self, key: Union[str, Sequence[str], Series]) -> Union[Series, "DataFrame"]:
        if isinstance(key, Series):
            return self.mask(key)
        if isinstance(key, str):
            if key not in self._columns:
                raise FrameError(f"unknown column {key!r}; available: {self.columns}")
            return Series(self._columns[key], name=key)
        if isinstance(key, (list, tuple)):
            missing = [c for c in key if c not in self._columns]
            if missing:
                raise FrameError(f"unknown columns {missing!r}; available: {self.columns}")
            return DataFrame({c: list(self._columns[c]) for c in key})
        raise FrameError(f"unsupported selection key: {key!r}")

    def __setitem__(self, column: str, values: Union[Series, Iterable[Any], Any]) -> None:
        if isinstance(values, Series):
            values = list(values.values)
        elif isinstance(values, (list, tuple)):
            values = list(values)
        else:
            values = [values] * max(len(self), 1)
        if self._columns and len(values) != len(self):
            raise FrameError(f"column length {len(values)} does not match frame length {len(self)}")
        self._columns[str(column)] = values

    # ------------------------------------------------------------------
    # row-wise access
    # ------------------------------------------------------------------
    def row(self, index: int) -> Record:
        if index < 0 or index >= len(self):
            raise FrameError(f"row index {index} out of range (0..{len(self) - 1})")
        return {column: values[index] for column, values in self._columns.items()}

    def iterrows(self) -> Iterator[tuple]:
        for index in range(len(self)):
            yield index, self.row(index)

    def to_records(self) -> List[Record]:
        return [self.row(i) for i in range(len(self))]

    to_dict_records = to_records

    # ------------------------------------------------------------------
    # selection / transformation
    # ------------------------------------------------------------------
    def mask(self, predicate: Series) -> "DataFrame":
        """Select rows where the boolean *predicate* series is true."""
        if len(predicate) != len(self):
            raise FrameError("mask length mismatch")
        keep = [bool(v) for v in predicate.values]
        return DataFrame({
            column: [v for v, k in zip(values, keep) if k]
            for column, values in self._columns.items()
        })

    def filter_rows(self, predicate: Callable[[Record], bool]) -> "DataFrame":
        """Select rows for which *predicate(record)* is true."""
        return DataFrame.from_records(
            [record for _, record in self.iterrows() if predicate(record)],
            columns=self.columns,
        )

    def head(self, n: int = 5) -> "DataFrame":
        return DataFrame({column: values[:n] for column, values in self._columns.items()})

    def tail(self, n: int = 5) -> "DataFrame":
        return DataFrame({column: values[-n:] if n else [] for column, values in self._columns.items()})

    def copy(self) -> "DataFrame":
        return DataFrame({column: _copy.deepcopy(values) for column, values in self._columns.items()})

    def drop(self, columns: Union[str, Sequence[str]]) -> "DataFrame":
        if isinstance(columns, str):
            columns = [columns]
        missing = [c for c in columns if c not in self._columns]
        if missing:
            raise FrameError(f"cannot drop unknown columns {missing!r}")
        return DataFrame({c: list(v) for c, v in self._columns.items() if c not in set(columns)})

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        return DataFrame({mapping.get(c, c): list(v) for c, v in self._columns.items()})

    def assign(self, **new_columns: Union[Series, Iterable[Any], Callable[["DataFrame"], Any], Any]) -> "DataFrame":
        """Return a copy with additional or replaced columns (pandas-style)."""
        result = self.copy()
        for name, value in new_columns.items():
            if callable(value) and not isinstance(value, Series):
                value = value(result)
            result[name] = value
        return result

    def sort_values(self, by: Union[str, Sequence[str]], ascending: Union[bool, Sequence[bool]] = True) -> "DataFrame":
        if isinstance(by, str):
            by = [by]
        if isinstance(ascending, bool):
            ascending = [ascending] * len(by)
        if len(ascending) != len(by):
            raise FrameError("ascending must match the number of sort keys")
        for column in by:
            if column not in self._columns:
                raise FrameError(f"unknown sort column {column!r}")
        indices = list(range(len(self)))
        # Stable sort applied from the least-significant key to the most.
        for column, asc in reversed(list(zip(by, ascending))):
            values = self._columns[column]
            indices.sort(key=lambda i: _sort_key(values[i]), reverse=not asc)
        return DataFrame({
            column: [values[i] for i in indices]
            for column, values in self._columns.items()
        })

    def drop_duplicates(self, subset: Optional[Sequence[str]] = None) -> "DataFrame":
        subset = list(subset) if subset else self.columns
        seen = set()
        kept: List[Record] = []
        for _, record in self.iterrows():
            key = tuple(repr(record.get(c)) for c in subset)
            if key not in seen:
                seen.add(key)
                kept.append(record)
        return DataFrame.from_records(kept, columns=self.columns)

    def merge(self, other: "DataFrame", on: Union[str, Sequence[str]],
              how: str = "inner", suffixes: tuple = ("_x", "_y")) -> "DataFrame":
        """Join two frames on equality of the *on* columns (inner/left join)."""
        if how not in ("inner", "left"):
            raise FrameError(f"unsupported join type {how!r}; use 'inner' or 'left'")
        keys = [on] if isinstance(on, str) else list(on)
        for key in keys:
            if key not in self._columns or key not in other._columns:
                raise FrameError(f"join key {key!r} missing from one of the frames")

        other_index: Dict[tuple, List[Record]] = {}
        for _, record in other.iterrows():
            other_index.setdefault(tuple(repr(record[k]) for k in keys), []).append(record)

        overlap = (set(self.columns) & set(other.columns)) - set(keys)
        out_records: List[Record] = []
        for _, left in self.iterrows():
            lookup = tuple(repr(left[k]) for k in keys)
            matches = other_index.get(lookup, [])
            if not matches and how == "left":
                merged = dict(left)
                for column in other.columns:
                    if column in keys:
                        continue
                    name = column + suffixes[1] if column in overlap else column
                    merged[name] = None
                for column in overlap:
                    merged[column + suffixes[0]] = merged.pop(column)
                out_records.append(merged)
                continue
            for right in matches:
                merged = {}
                for column, value in left.items():
                    name = column + suffixes[0] if column in overlap else column
                    merged[name] = value
                for column, value in right.items():
                    if column in keys:
                        continue
                    name = column + suffixes[1] if column in overlap else column
                    merged[name] = value
                out_records.append(merged)
        return DataFrame.from_records(out_records)

    def groupby(self, by: Union[str, Sequence[str]]) -> "GroupBy":
        from repro.frames.groupby import GroupBy  # local import to avoid cycle

        keys = [by] if isinstance(by, str) else list(by)
        for key in keys:
            if key not in self._columns:
                raise FrameError(f"unknown group-by column {key!r}")
        return GroupBy(self, keys)

    def apply_rows(self, func: Callable[[Record], Any], column: str) -> "DataFrame":
        """Return a copy with *column* computed row-wise by *func*."""
        result = self.copy()
        result[column] = [func(record) for _, record in self.iterrows()]
        return result

    # ------------------------------------------------------------------
    # aggregate helpers
    # ------------------------------------------------------------------
    def sum(self) -> Dict[str, float]:
        return {column: Series(values).sum() for column, values in self._columns.items()}

    def nlargest(self, n: int, column: str) -> "DataFrame":
        return self.sort_values(column, ascending=False).head(n)

    def nsmallest(self, n: int, column: str) -> "DataFrame":
        return self.sort_values(column, ascending=True).head(n)

    def equals(self, other: "DataFrame") -> bool:
        """Order-sensitive equality of columns and values."""
        if not isinstance(other, DataFrame):
            return False
        if self.columns != other.columns or len(self) != len(other):
            return False
        return all(self._columns[c] == other._columns[c] for c in self._columns)


def _sort_key(value: Any) -> tuple:
    """Sort key tolerant of mixed types and ``None`` values."""
    if value is None:
        return (0, "", 0)
    if isinstance(value, bool):
        return (1, "", int(value))
    if isinstance(value, (int, float)):
        return (1, "", float(value))
    return (2, str(value), 0)


def concat(frames: Sequence[DataFrame]) -> DataFrame:
    """Row-wise concatenation of frames (union of columns, missing -> None)."""
    records: List[Record] = []
    ordered: Dict[str, None] = {}
    for frame in frames:
        for column in frame.columns:
            ordered.setdefault(column, None)
        records.extend(frame.to_records())
    return DataFrame.from_records(records, columns=list(ordered))
