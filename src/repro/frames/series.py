"""The :class:`Series` column type of the mini dataframe library."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Union


class StringAccessor:
    """Vectorized string operations, mirroring ``pandas.Series.str``."""

    def __init__(self, series: "Series") -> None:
        self._series = series

    def _apply(self, func: Callable[[str], Any]) -> "Series":
        return Series([func(str(v)) if v is not None else None
                       for v in self._series.values],
                      name=self._series.name)

    def startswith(self, prefix: str) -> "Series":
        return self._apply(lambda s: s.startswith(prefix))

    def endswith(self, suffix: str) -> "Series":
        return self._apply(lambda s: s.endswith(suffix))

    def contains(self, needle: str) -> "Series":
        return self._apply(lambda s: needle in s)

    def lower(self) -> "Series":
        return self._apply(str.lower)

    def upper(self) -> "Series":
        return self._apply(str.upper)

    def split(self, sep: str) -> "Series":
        return self._apply(lambda s: s.split(sep))

    def replace(self, old: str, new: str) -> "Series":
        return self._apply(lambda s: s.replace(old, new))

    def len(self) -> "Series":
        return self._apply(len)

    def slice(self, start: Optional[int] = None, stop: Optional[int] = None) -> "Series":
        return self._apply(lambda s: s[start:stop])


def _broadcast(other: Any, length: int) -> List[Any]:
    if isinstance(other, Series):
        if len(other) != length:
            raise ValueError(f"length mismatch: {len(other)} vs {length}")
        return list(other.values)
    if isinstance(other, (list, tuple)):
        if len(other) != length:
            raise ValueError(f"length mismatch: {len(other)} vs {length}")
        return list(other)
    return [other] * length


class Series:
    """A named column of values with pandas-like vectorized behaviour."""

    def __init__(self, values: Iterable[Any], name: Optional[str] = None) -> None:
        self.values: List[Any] = list(values)
        self.name = name

    # -- basic protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __getitem__(self, index: Union[int, slice, "Series"]) -> Any:
        if isinstance(index, Series):
            return self.mask(index)
        if isinstance(index, slice):
            return Series(self.values[index], name=self.name)
        return self.values[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(v) for v in self.values[:8])
        suffix = ", ..." if len(self.values) > 8 else ""
        return f"Series(name={self.name!r}, [{preview}{suffix}])"

    def __eq__(self, other: Any) -> "Series":  # type: ignore[override]
        return self._compare(other, lambda a, b: a == b)

    def __ne__(self, other: Any) -> "Series":  # type: ignore[override]
        return self._compare(other, lambda a, b: a != b)

    def __lt__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a < b)

    def __le__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a <= b)

    def __gt__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a > b)

    def __ge__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a >= b)

    __hash__ = None  # mutable, comparison returns a mask

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: a + b)

    def __radd__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: b + a)

    def __sub__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: a - b)

    def __rsub__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: b - a)

    def __mul__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: a * b)

    def __rmul__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: b * a)

    def __truediv__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: a / b)

    def __and__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: bool(a) and bool(b))

    def __or__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: bool(a) or bool(b))

    def __invert__(self) -> "Series":
        return Series([not bool(v) for v in self.values], name=self.name)

    def _compare(self, other: Any, op: Callable[[Any, Any], Any]) -> "Series":
        other_values = _broadcast(other, len(self.values))
        return Series([op(a, b) for a, b in zip(self.values, other_values)], name=self.name)

    def _binary(self, other: Any, op: Callable[[Any, Any], Any]) -> "Series":
        other_values = _broadcast(other, len(self.values))
        return Series([op(a, b) for a, b in zip(self.values, other_values)], name=self.name)

    # -- accessors --------------------------------------------------------
    @property
    def str(self) -> StringAccessor:
        return StringAccessor(self)

    # -- transformations --------------------------------------------------
    def mask(self, predicate: "Series") -> "Series":
        """Select the values where the boolean *predicate* series is true."""
        if len(predicate) != len(self.values):
            raise ValueError("mask length mismatch")
        return Series([v for v, keep in zip(self.values, predicate.values) if keep],
                      name=self.name)

    def map(self, func: Callable[[Any], Any]) -> "Series":
        return Series([func(v) for v in self.values], name=self.name)

    apply = map

    def astype(self, target_type: Callable[[Any], Any]) -> "Series":
        return Series([target_type(v) if v is not None else None for v in self.values],
                      name=self.name)

    def fillna(self, fill_value: Any) -> "Series":
        return Series([fill_value if v is None else v for v in self.values], name=self.name)

    def isin(self, options: Iterable[Any]) -> "Series":
        option_set = set(options)
        return Series([v in option_set for v in self.values], name=self.name)

    def isna(self) -> "Series":
        return Series([v is None for v in self.values], name=self.name)

    def notna(self) -> "Series":
        return Series([v is not None for v in self.values], name=self.name)

    def unique(self) -> List[Any]:
        seen: dict = {}
        for v in self.values:
            seen.setdefault(v, None)
        return list(seen)

    def nunique(self) -> int:
        return len(self.unique())

    def value_counts(self) -> "Series":
        counts: dict = {}
        for v in self.values:
            counts[v] = counts.get(v, 0) + 1
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
        result = Series([count for _, count in ordered], name=self.name)
        result.index = [key for key, _ in ordered]
        return result

    def sort_values(self, ascending: bool = True) -> "Series":
        return Series(sorted(self.values, reverse=not ascending), name=self.name)

    def tolist(self) -> List[Any]:
        return list(self.values)

    to_list = tolist

    def head(self, n: int = 5) -> "Series":
        return Series(self.values[:n], name=self.name)

    # -- aggregation --------------------------------------------------------
    def _numeric(self) -> List[float]:
        return [v for v in self.values if isinstance(v, (int, float)) and not isinstance(v, bool)]

    def sum(self) -> float:
        return sum(self._numeric()) if self._numeric() else 0

    def mean(self) -> float:
        numeric = self._numeric()
        if not numeric:
            raise ValueError("mean of empty series")
        return sum(numeric) / len(numeric)

    def min(self) -> Any:
        if not self.values:
            raise ValueError("min of empty series")
        return min(self.values)

    def max(self) -> Any:
        if not self.values:
            raise ValueError("max of empty series")
        return max(self.values)

    def count(self) -> int:
        return sum(1 for v in self.values if v is not None)

    def any(self) -> bool:
        return any(bool(v) for v in self.values)

    def all(self) -> bool:
        return all(bool(v) for v in self.values)

    def idxmax(self) -> int:
        if not self.values:
            raise ValueError("idxmax of empty series")
        best_index = 0
        for i, v in enumerate(self.values):
            if v > self.values[best_index]:
                best_index = i
        return best_index

    def idxmin(self) -> int:
        if not self.values:
            raise ValueError("idxmin of empty series")
        best_index = 0
        for i, v in enumerate(self.values):
            if v < self.values[best_index]:
                best_index = i
        return best_index

    def nlargest(self, n: int) -> "Series":
        return Series(sorted(self.values, reverse=True)[:n], name=self.name)

    def nsmallest(self, n: int) -> "Series":
        return Series(sorted(self.values)[:n], name=self.name)
