"""Group-wise aggregation for the mini dataframe library."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple, Union

from repro.frames.frame import DataFrame, FrameError
from repro.frames.series import Series


_AGGREGATIONS: Dict[str, Callable[[Series], Any]] = {
    "sum": lambda s: s.sum(),
    "mean": lambda s: s.mean(),
    "min": lambda s: s.min(),
    "max": lambda s: s.max(),
    "count": lambda s: len(s),
    "nunique": lambda s: s.nunique(),
    "first": lambda s: s.values[0] if len(s) else None,
    "last": lambda s: s.values[-1] if len(s) else None,
}


class SeriesGroupBy:
    """A single column selected from a :class:`GroupBy` (``gb["bytes"]``)."""

    def __init__(self, groups: "GroupBy", column: str) -> None:
        self._groups = groups
        self._column = column

    def _aggregate(self, how: str) -> DataFrame:
        return self._groups.agg({self._column: how})

    def sum(self) -> DataFrame:
        return self._aggregate("sum")

    def mean(self) -> DataFrame:
        return self._aggregate("mean")

    def min(self) -> DataFrame:
        return self._aggregate("min")

    def max(self) -> DataFrame:
        return self._aggregate("max")

    def count(self) -> DataFrame:
        return self._aggregate("count")

    def nunique(self) -> DataFrame:
        return self._aggregate("nunique")


class GroupBy:
    """Grouping of a :class:`DataFrame` by one or more key columns."""

    def __init__(self, frame: DataFrame, keys: Sequence[str]) -> None:
        self._frame = frame
        self._keys = list(keys)
        self._groups: Dict[Tuple[Any, ...], List[int]] = {}
        for index, record in frame.iterrows():
            group_key = tuple(record[k] for k in self._keys)
            self._groups.setdefault(group_key, []).append(index)

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self):
        for key, indices in self._groups.items():
            group_frame = DataFrame.from_records(
                [self._frame.row(i) for i in indices], columns=self._frame.columns)
            yield (key[0] if len(key) == 1 else key), group_frame

    def __getitem__(self, column: str) -> SeriesGroupBy:
        if column not in self._frame.columns:
            raise FrameError(f"unknown column {column!r}")
        return SeriesGroupBy(self, column)

    def groups(self) -> Dict[Tuple[Any, ...], List[int]]:
        """Mapping from group key tuple to row indices."""
        return {key: list(indices) for key, indices in self._groups.items()}

    def size(self) -> DataFrame:
        """Number of rows per group."""
        records = []
        for key, indices in self._groups.items():
            record = dict(zip(self._keys, key))
            record["size"] = len(indices)
            records.append(record)
        return DataFrame.from_records(records, columns=self._keys + ["size"])

    def agg(self, spec: Union[str, Dict[str, Union[str, Callable[[Series], Any]]]]) -> DataFrame:
        """Aggregate columns per group.

        ``spec`` is either a single aggregation name applied to all non-key
        columns, or a mapping ``{column: aggregation}`` where the aggregation
        is a name from ``sum/mean/min/max/count/nunique/first/last`` or a
        callable taking a :class:`Series`.
        """
        if isinstance(spec, str):
            spec = {column: spec for column in self._frame.columns
                    if column not in self._keys}
        resolved: Dict[str, Callable[[Series], Any]] = {}
        for column, how in spec.items():
            if column not in self._frame.columns:
                raise FrameError(f"unknown aggregation column {column!r}")
            if callable(how):
                resolved[column] = how
            elif how in _AGGREGATIONS:
                resolved[column] = _AGGREGATIONS[how]
            else:
                raise FrameError(f"unknown aggregation {how!r}")

        records = []
        for key, indices in self._groups.items():
            record: Dict[str, Any] = dict(zip(self._keys, key))
            for column, func in resolved.items():
                column_values = Series([self._frame.row(i)[column] for i in indices],
                                       name=column)
                record[column] = func(column_values)
            records.append(record)
        return DataFrame.from_records(records, columns=self._keys + list(resolved))

    def apply(self, func: Callable[[DataFrame], Any]) -> Dict[Any, Any]:
        """Apply *func* to each group's sub-frame, returning a dict of results."""
        results: Dict[Any, Any] = {}
        for key, group_frame in self:
            results[key] = func(group_frame)
        return results
