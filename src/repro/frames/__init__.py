"""A small, dependency-free dataframe library.

The paper's *pandas* backend represents the network as two dataframes (a node
table and an edge table) and lets the LLM-generated code use filtering,
sorting, grouping and merging.  pandas itself is not available in this
offline environment, so this package provides the subset of the dataframe API
that the benchmark queries (and their golden answers) actually exercise:

* :class:`~repro.frames.series.Series` — a typed column with vectorized
  comparisons, arithmetic, aggregation and a ``.str`` accessor;
* :class:`~repro.frames.frame.DataFrame` — an ordered collection of equally
  long columns with boolean-mask selection, ``sort_values``, ``groupby``,
  ``merge``, ``assign``, ``head`` and record conversion;
* :class:`~repro.frames.groupby.GroupBy` — group-wise aggregation.

The semantics intentionally mirror pandas so that code written against this
package reads exactly like the pandas code shown in the paper, which is what
keeps the "pandas backend" comparison meaningful.
"""

from repro.frames.series import Series
from repro.frames.frame import DataFrame, FrameError, concat
from repro.frames.groupby import GroupBy

__all__ = ["Series", "DataFrame", "FrameError", "GroupBy", "concat"]
