"""Self-debug: feed the execution error back to the model for another try."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.benchmark.evaluator import EvaluationRecord
from repro.benchmark.queries import BenchmarkQuery
from repro.benchmark.runner import BenchmarkRunner
from repro.core.application import NetworkApplication
from repro.utils.validation import require_positive


@dataclass
class SelfDebugResult:
    """Outcome of one self-debug loop for one query."""

    query_id: str
    model: str
    backend: str
    max_rounds: int
    passed: bool
    rounds_used: int = 0
    records: List[EvaluationRecord] = field(default_factory=list)

    @property
    def total_cost_usd(self) -> float:
        return sum(record.cost_usd for record in self.records)


class SelfDebugRunner:
    """Evaluate queries with an error-feedback repair loop.

    Round 0 is the normal attempt; each subsequent round sends the previous
    round's failure description back to the model (the paper uses a single
    repair round, which is the default here).
    """

    def __init__(self, runner: BenchmarkRunner, max_rounds: int = 1) -> None:
        require_positive(max_rounds, "max_rounds")
        self.runner = runner
        self.max_rounds = max_rounds

    def _failure_feedback(self, record: EvaluationRecord) -> str:
        """Render the error message the operator would paste back to the LLM."""
        parts = [f"The previous code failed at the {record.failure_stage} stage."]
        if record.failure_reason:
            parts.append(f"Error: {record.failure_reason}")
        error_message = record.details.get("error_message")
        if error_message:
            parts.append(f"Exception: {error_message}")
        parts.append("Please fix the code and answer the original request again.")
        return " ".join(parts)

    def evaluate(self, application: NetworkApplication, query: BenchmarkQuery,
                 model: str, backend: str) -> SelfDebugResult:
        """Run one query with up to ``max_rounds`` repair rounds."""
        result = SelfDebugResult(query_id=query.query_id, model=model, backend=backend,
                                 max_rounds=self.max_rounds, passed=False)
        record = self.runner.run_query(application, query, model, backend)
        result.records.append(record)
        if record.passed:
            result.passed = True
            return result
        feedback: Optional[str] = self._failure_feedback(record)
        for round_index in range(1, self.max_rounds + 1):
            record = self.runner.run_query(application, query, model, backend,
                                           feedback=feedback)
            result.records.append(record)
            result.rounds_used = round_index
            if record.passed:
                result.passed = True
                return result
            feedback = self._failure_feedback(record)
        return result

    def fix_rate(self, application: NetworkApplication,
                 queries: List[BenchmarkQuery], model: str, backend: str) -> float:
        """Fraction of *queries* that pass after the self-debug loop."""
        if not queries:
            return 0.0
        results = [self.evaluate(application, query, model, backend) for query in queries]
        return sum(1 for result in results if result.passed) / len(results)
