"""Few-shot example store.

The paper's framework records approved (query, code) pairs so future prompts
can include worked examples ("record the input/output for future prompt
enhancements").  The store keeps examples per (application, backend), ranks
them by simple lexical overlap with the incoming query, and renders the block
the prompt generator appends.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.utils.validation import require_positive


_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def _tokens(text: str) -> set:
    return set(_TOKEN_PATTERN.findall(text.lower()))


@dataclass(frozen=True)
class StoredExample:
    """One approved (query, code) pair."""

    query: str
    code: str
    application: str
    backend: str


class FewShotExampleStore:
    """Keep approved examples and select the most relevant ones for a query."""

    def __init__(self, max_examples_per_prompt: int = 3) -> None:
        require_positive(max_examples_per_prompt, "max_examples_per_prompt")
        self.max_examples_per_prompt = max_examples_per_prompt
        self._examples: List[StoredExample] = []

    # ------------------------------------------------------------------
    def add(self, query: str, code: str, application: str, backend: str) -> StoredExample:
        """Record one approved example."""
        example = StoredExample(query=query, code=code, application=application,
                                backend=backend)
        self._examples.append(example)
        return example

    def __len__(self) -> int:
        return len(self._examples)

    def examples_for(self, application: str, backend: str) -> List[StoredExample]:
        """All stored examples for one application/backend pair."""
        return [example for example in self._examples
                if example.application == application and example.backend == backend]

    # ------------------------------------------------------------------
    def _similarity(self, query: str, example: StoredExample) -> float:
        query_tokens = _tokens(query)
        example_tokens = _tokens(example.query)
        if not query_tokens or not example_tokens:
            return 0.0
        overlap = len(query_tokens & example_tokens)
        return overlap / len(query_tokens | example_tokens)

    def select(self, query: str, application: str, backend: str) -> List[StoredExample]:
        """The most relevant stored examples for *query* (highest overlap first)."""
        candidates = self.examples_for(application, backend)
        scored: List[Tuple[float, int, StoredExample]] = [
            (self._similarity(query, example), index, example)
            for index, example in enumerate(candidates)]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [example for score, _, example in scored[: self.max_examples_per_prompt]
                if score > 0]

    def prompt_examples(self, query: str, application: str, backend: str) -> List[Dict[str, str]]:
        """Selected examples in the shape the prompt generator expects."""
        return [{"query": example.query, "code": example.code}
                for example in self.select(query, application, backend)]
