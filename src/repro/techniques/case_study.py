"""The Table-6 improvement case study.

The paper takes the network-lifecycle (MALT) queries that Bard fails with the
NetworkX backend and measures how much two complementary techniques help:
pass@5 sampling and a single self-debug round.  This module reproduces that
study for any model/backend pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.benchmark.queries import BenchmarkQuery, queries_for
from repro.benchmark.runner import BenchmarkConfig, BenchmarkRunner
from repro.techniques.passk import PassAtKRunner
from repro.techniques.selfdebug import SelfDebugRunner
from repro.utils.tables import format_table


@dataclass
class CaseStudyReport:
    """Accuracy of the base model vs the two improvement techniques."""

    model: str
    backend: str
    application: str
    studied_queries: List[str] = field(default_factory=list)
    pass_at_1: float = 0.0
    pass_at_k: float = 0.0
    self_debug: float = 0.0
    k: int = 5

    def as_row(self) -> List[object]:
        return [f"{self.model} ({self.backend})", self.pass_at_1, self.pass_at_k,
                self.self_debug]

    def render(self) -> str:
        headers = ["configuration", "Pass@1", f"Pass@{self.k}", "Self-debug"]
        return format_table(headers, [self.as_row()],
                            title=f"Improvement case study — {self.application}")


class ImprovementCaseStudy:
    """Reproduce the paper's Table 6 for a chosen model and backend."""

    def __init__(self, config: Optional[BenchmarkConfig] = None, k: int = 5,
                 self_debug_rounds: int = 1) -> None:
        self.runner = BenchmarkRunner(config)
        self.k = k
        self.self_debug_rounds = self_debug_rounds

    # ------------------------------------------------------------------
    def failing_queries(self, application: str, model: str,
                        backend: str) -> List[BenchmarkQuery]:
        """The queries the base model fails at pass@1 (the study population)."""
        if application == "malt":
            app = self.runner.config.malt_application()
        else:
            app = self.runner.config.traffic_application()
        failing = []
        for query in queries_for(application):
            record = self.runner.run_query(app, query, model, backend)
            if not record.passed:
                failing.append(query)
        return failing

    # ------------------------------------------------------------------
    def run(self, application: str = "malt", model: str = "bard",
            backend: str = "networkx",
            queries: Optional[List[BenchmarkQuery]] = None) -> CaseStudyReport:
        """Measure pass@1, pass@k, and self-debug on the failing queries.

        By construction the studied queries all fail at pass@1, so
        ``pass_at_1`` is 0.0 on them (the paper's 0.44 in Table 6 is the
        accuracy over *all* MALT queries; both views are reported by the
        benchmark harness).
        """
        if application == "malt":
            app = self.runner.config.malt_application()
        else:
            app = self.runner.config.traffic_application()
        if queries is None:
            queries = self.failing_queries(application, model, backend)

        report = CaseStudyReport(model=model, backend=backend, application=application,
                                 studied_queries=[q.query_id for q in queries], k=self.k)
        if not queries:
            return report

        base_passes = 0
        for query in queries:
            record = self.runner.run_query(app, query, model, backend)
            if record.passed:
                base_passes += 1
        report.pass_at_1 = base_passes / len(queries)

        passk = PassAtKRunner(self.runner, k=self.k)
        report.pass_at_k = passk.pass_rate(app, queries, model, backend)

        selfdebug = SelfDebugRunner(self.runner, max_rounds=self.self_debug_rounds)
        report.self_debug = selfdebug.fix_rate(app, queries, model, backend)
        return report

    # ------------------------------------------------------------------
    def overall_accuracy_with_techniques(self, application: str, model: str,
                                         backend: str) -> Dict[str, float]:
        """Accuracy over *all* queries of the application (the Table-6 view).

        Returns pass@1 / pass@k / self-debug accuracy across the full query
        set, which is directly comparable to the paper's Table 6 row.
        """
        if application == "malt":
            app = self.runner.config.malt_application()
        else:
            app = self.runner.config.traffic_application()
        queries = queries_for(application)

        base = sum(1 for query in queries
                   if self.runner.run_query(app, query, model, backend).passed)
        passk = PassAtKRunner(self.runner, k=self.k)
        at_k = passk.pass_rate(app, queries, model, backend)
        selfdebug = SelfDebugRunner(self.runner, max_rounds=self.self_debug_rounds)
        debugged = selfdebug.fix_rate(app, queries, model, backend)
        return {
            "pass@1": base / len(queries) if queries else 0.0,
            f"pass@{self.k}": at_k,
            "self-debug": debugged,
        }
