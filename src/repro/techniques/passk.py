"""pass@k: sample the model k times and accept if any sample passes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.benchmark.evaluator import EvaluationRecord
from repro.benchmark.queries import BenchmarkQuery
from repro.benchmark.runner import BenchmarkRunner
from repro.core.application import NetworkApplication
from repro.utils.validation import require_positive


@dataclass
class PassAtKResult:
    """Outcome of a pass@k evaluation for one query."""

    query_id: str
    model: str
    backend: str
    k: int
    passed: bool
    first_passing_attempt: Optional[int] = None    # 1-based
    attempts: List[EvaluationRecord] = field(default_factory=list)

    @property
    def total_cost_usd(self) -> float:
        return sum(record.cost_usd for record in self.attempts)


class PassAtKRunner:
    """Evaluate queries under the pass@k acceptance criterion.

    Deterministic (temperature-0) models return the same answer every time,
    so their pass@k equals pass@1; non-deterministic models (Bard) can
    recover on later samples, which is what the paper observed.
    """

    def __init__(self, runner: BenchmarkRunner, k: int = 5) -> None:
        require_positive(k, "k")
        self.runner = runner
        self.k = k

    def evaluate(self, application: NetworkApplication, query: BenchmarkQuery,
                 model: str, backend: str) -> PassAtKResult:
        """Run one query up to k times; stop at the first passing sample."""
        result = PassAtKResult(query_id=query.query_id, model=model, backend=backend,
                               k=self.k, passed=False)
        for attempt in range(self.k):
            record = self.runner.run_query(application, query, model, backend,
                                           attempt=attempt)
            result.attempts.append(record)
            if record.passed:
                result.passed = True
                result.first_passing_attempt = attempt + 1
                break
        return result

    def pass_rate(self, application: NetworkApplication,
                  queries: List[BenchmarkQuery], model: str, backend: str) -> float:
        """Fraction of *queries* that pass within k samples."""
        if not queries:
            return 0.0
        results = [self.evaluate(application, query, model, backend) for query in queries]
        return sum(1 for result in results if result.passed) / len(results)
