"""Execution-consistency code selection.

Generate several samples, execute each one, and return the answer that the
largest number of samples agree on — the "code selection by execution
consistency" technique the paper cites from the program-synthesis literature.
This module complements pass@k: pass@k needs a golden answer to accept a
sample, whereas selection works without ground truth and is therefore usable
in production.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.application import NetworkApplication
from repro.core.pipeline import NetworkManagementPipeline, PipelineResult, QueryRequest
from repro.graph.serialization import graph_to_dict
from repro.llm.base import LlmProvider
from repro.utils.validation import require_positive


def _canonical_signature(result: PipelineResult) -> Optional[str]:
    """A hashable signature of one sample's outcome (value + resulting graph)."""
    if not result.succeeded:
        return None
    payload: Dict[str, Any] = {"value": result.result_value}
    if result.updated_graph is not None:
        payload["graph"] = graph_to_dict(result.updated_graph)
    try:
        return json.dumps(payload, sort_keys=True, default=str)
    except (TypeError, ValueError):
        return repr(payload)


@dataclass
class SelectionResult:
    """Outcome of execution-consistency selection for one query."""

    query: str
    backend: str
    samples: int
    selected: Optional[PipelineResult] = None
    agreement: int = 0
    failed_samples: int = 0
    all_samples: List[PipelineResult] = field(default_factory=list)

    @property
    def selected_code(self) -> str:
        return self.selected.code if self.selected else ""


class ExecutionConsistencySelector:
    """Pick the most self-consistent sample out of *samples* generations."""

    def __init__(self, application: NetworkApplication, provider: LlmProvider,
                 backend: str, samples: int = 5) -> None:
        require_positive(samples, "samples")
        self.pipeline = NetworkManagementPipeline(application, provider, backend)
        self.samples = samples
        self.backend = backend

    def select(self, query: str, metadata: Optional[Dict[str, Any]] = None) -> SelectionResult:
        """Generate, execute, and vote over ``samples`` independent samples."""
        outcome = SelectionResult(query=query, backend=self.backend, samples=self.samples)
        signatures: Dict[str, List[PipelineResult]] = {}
        for attempt in range(self.samples):
            request = QueryRequest(query=query, backend=self.backend,
                                   metadata=dict(metadata or {}), attempt=attempt)
            result = self.pipeline.run(request)
            outcome.all_samples.append(result)
            signature = _canonical_signature(result)
            if signature is None:
                outcome.failed_samples += 1
                continue
            signatures.setdefault(signature, []).append(result)
        if not signatures:
            return outcome
        votes = Counter({signature: len(results) for signature, results in signatures.items()})
        best_signature, best_count = votes.most_common(1)[0]
        outcome.selected = signatures[best_signature][0]
        outcome.agreement = best_count
        return outcome
