"""Complementary program-synthesis techniques (paper §2.2 and §4.4).

The paper studies whether techniques from the general program-synthesis
literature can recover queries the base model fails:

* **pass@k** — sample the model k times and accept if any sample's code
  passes (:mod:`repro.techniques.passk`);
* **self-debug** — feed the execution error back to the model and ask it to
  fix its answer (:mod:`repro.techniques.selfdebug`);
* **execution-consistency selection** — generate several samples and pick the
  answer the largest number of samples agree on
  (:mod:`repro.techniques.selection`);
* **few-shot examples** — keep a store of previously approved (query, code)
  pairs to include in future prompts (:mod:`repro.techniques.fewshot`).

The Table-6 case study (Bard on the failed MALT queries) is reproduced by
:mod:`repro.techniques.case_study`.
"""

from repro.techniques.passk import PassAtKRunner, PassAtKResult
from repro.techniques.selfdebug import SelfDebugRunner, SelfDebugResult
from repro.techniques.selection import ExecutionConsistencySelector, SelectionResult
from repro.techniques.fewshot import FewShotExampleStore
from repro.techniques.case_study import ImprovementCaseStudy, CaseStudyReport

__all__ = [
    "PassAtKRunner",
    "PassAtKResult",
    "SelfDebugRunner",
    "SelfDebugResult",
    "ExecutionConsistencySelector",
    "SelectionResult",
    "FewShotExampleStore",
    "ImprovementCaseStudy",
    "CaseStudyReport",
]
