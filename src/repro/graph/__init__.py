"""Property-graph substrate.

All network state in this reproduction — communication graphs for traffic
analysis and MALT topologies for lifecycle management — is held in a
:class:`~repro.graph.model.PropertyGraph`: a directed graph whose nodes and
edges carry arbitrary attribute dictionaries.  The package also provides
serialization, conversions to the three code-generation backends (NetworkX,
dataframes, SQL tables), graph comparison for the benchmark evaluator, and
summary statistics.
"""

from repro.graph.model import PropertyGraph, GraphError, NodeView, EdgeView
from repro.graph.diff import GraphDiff, graphs_equal, diff_graphs
from repro.graph.serialization import (
    graph_to_dict,
    graph_from_dict,
    graph_to_json,
    graph_from_json,
    graph_to_edge_list,
)
from repro.graph.convert import (
    to_networkx,
    from_networkx,
    to_frames,
    from_frames,
    to_sql_database,
)
from repro.graph.stats import GraphStats, compute_stats

__all__ = [
    "PropertyGraph",
    "GraphError",
    "NodeView",
    "EdgeView",
    "GraphDiff",
    "graphs_equal",
    "diff_graphs",
    "graph_to_dict",
    "graph_from_dict",
    "graph_to_json",
    "graph_from_json",
    "graph_to_edge_list",
    "to_networkx",
    "from_networkx",
    "to_frames",
    "from_frames",
    "to_sql_database",
    "GraphStats",
    "compute_stats",
]
