"""Conversions from :class:`PropertyGraph` to the three code-gen backends.

The paper evaluates three representations of the same network state:

* a **NetworkX** graph (``networkx.DiGraph`` / ``networkx.Graph``),
* two **dataframes** (a node table and an edge table), and
* a relational **SQL database** with ``nodes`` and ``edges`` tables.

Each application wrapper builds a :class:`PropertyGraph` once and converts it
to whichever representation the selected backend requires, so the generated
code for every backend runs on exactly the same underlying network state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import networkx as nx

from repro.frames import DataFrame
from repro.graph.model import PropertyGraph
from repro.sqlengine import Database


NODE_ID_COLUMN = "id"
EDGE_SOURCE_COLUMN = "source"
EDGE_TARGET_COLUMN = "target"


# ---------------------------------------------------------------------------
# NetworkX
# ---------------------------------------------------------------------------
def to_networkx(graph: PropertyGraph, force_directed: bool = False):
    """Convert to ``networkx.DiGraph`` (or ``Graph`` for undirected graphs).

    With *force_directed* an undirected graph is also exposed as a
    ``DiGraph`` holding exactly the stored edge orientation — used by the
    timeline-aware synthesis namespace, where snapshot diffs are defined
    over raw stored tuples.
    """
    nx_graph = nx.DiGraph() if (graph.directed or force_directed) else nx.Graph()
    nx_graph.graph.update(graph.graph_attributes)
    nx_graph.graph["name"] = graph.name
    for node_id, attrs in graph.nodes(data=True):
        nx_graph.add_node(node_id, **dict(attrs))
    for source, target, attrs in graph.edges(data=True):
        nx_graph.add_edge(source, target, **dict(attrs))
    return nx_graph


def from_networkx(nx_graph) -> PropertyGraph:
    """Convert a NetworkX graph back into a :class:`PropertyGraph`."""
    directed = nx_graph.is_directed()
    graph = PropertyGraph(name=nx_graph.graph.get("name", "graph"), directed=directed)
    graph.graph_attributes.update(
        {k: v for k, v in nx_graph.graph.items() if k != "name"})
    for node_id, attrs in nx_graph.nodes(data=True):
        graph.add_node(node_id, **dict(attrs))
    for source, target, attrs in nx_graph.edges(data=True):
        graph.add_edge(source, target, **dict(attrs))
    return graph


# ---------------------------------------------------------------------------
# dataframes
# ---------------------------------------------------------------------------
def _collect_attribute_keys(items: List[Tuple[Any, Dict[str, Any]]]) -> List[str]:
    ordered: Dict[str, None] = {}
    for _, attrs in items:
        for key in attrs:
            ordered.setdefault(key, None)
    return list(ordered)


def to_frames(graph: PropertyGraph) -> Tuple[DataFrame, DataFrame]:
    """Convert into ``(node_frame, edge_frame)``.

    The node frame has an ``id`` column plus one column per node attribute;
    the edge frame has ``source``/``target`` columns plus one column per edge
    attribute — the same schema the paper's pandas backend uses.
    """
    node_items = graph.nodes(data=True)
    node_keys = _collect_attribute_keys(node_items)
    node_records = []
    for node_id, attrs in node_items:
        record = {NODE_ID_COLUMN: node_id}
        for key in node_keys:
            record[key] = attrs.get(key)
        node_records.append(record)
    node_frame = DataFrame.from_records(node_records,
                                        columns=[NODE_ID_COLUMN] + node_keys)

    edge_items = [((source, target), attrs)
                  for source, target, attrs in graph.edges(data=True)]
    edge_keys = _collect_attribute_keys(edge_items)
    edge_records = []
    for (source, target), attrs in edge_items:
        record = {EDGE_SOURCE_COLUMN: source, EDGE_TARGET_COLUMN: target}
        for key in edge_keys:
            record[key] = attrs.get(key)
        edge_records.append(record)
    edge_frame = DataFrame.from_records(
        edge_records, columns=[EDGE_SOURCE_COLUMN, EDGE_TARGET_COLUMN] + edge_keys)
    return node_frame, edge_frame


def from_frames(node_frame: DataFrame, edge_frame: DataFrame,
                name: str = "graph", directed: bool = True) -> PropertyGraph:
    """Rebuild a graph from node/edge frames produced by :func:`to_frames`."""
    graph = PropertyGraph(name=name, directed=directed)
    for _, record in node_frame.iterrows():
        node_id = record[NODE_ID_COLUMN]
        attrs = {k: v for k, v in record.items() if k != NODE_ID_COLUMN and v is not None}
        graph.add_node(node_id, **attrs)
    for _, record in edge_frame.iterrows():
        source = record[EDGE_SOURCE_COLUMN]
        target = record[EDGE_TARGET_COLUMN]
        attrs = {k: v for k, v in record.items()
                 if k not in (EDGE_SOURCE_COLUMN, EDGE_TARGET_COLUMN) and v is not None}
        graph.add_edge(source, target, **attrs)
    return graph


# ---------------------------------------------------------------------------
# SQL
# ---------------------------------------------------------------------------
def to_sql_database(graph: PropertyGraph, name: Optional[str] = None) -> Database:
    """Convert into a :class:`~repro.sqlengine.Database` with node/edge tables."""
    database = Database(name or graph.name)
    node_frame, edge_frame = to_frames(graph)
    database.create_table("nodes", node_frame.columns, node_frame.to_records())
    database.create_table("edges", edge_frame.columns, edge_frame.to_records())
    return database


def from_sql_database(database: Database, name: str = "graph",
                      directed: bool = True) -> PropertyGraph:
    """Rebuild a graph from a database produced by :func:`to_sql_database`."""
    node_table = database.table("nodes")
    edge_table = database.table("edges")
    node_frame = DataFrame.from_records(node_table.rows, columns=node_table.columns)
    edge_frame = DataFrame.from_records(edge_table.rows, columns=edge_table.columns)
    return from_frames(node_frame, edge_frame, name=name, directed=directed)
