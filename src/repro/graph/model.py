"""The :class:`PropertyGraph` directed attributed graph.

This is the single in-memory representation that every application wrapper in
the reproduction produces (Figure 2,  1  in the paper): nodes carry attribute
dictionaries (IP address, device type, capacity, ...), directed edges carry
attribute dictionaries (bytes, connections, packets, relationship kind, ...).

The class intentionally mirrors a small, explicit subset of the NetworkX
``DiGraph`` API (``add_node``, ``add_edge``, ``nodes``, ``edges``,
``neighbors``), because the LLM-generated code in the NetworkX backend runs
against a real ``networkx.DiGraph`` obtained through
:func:`repro.graph.convert.to_networkx`.  Keeping the two shapes close makes
conversions loss-free and easy to reason about.
"""

from __future__ import annotations

import copy as _copy
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.utils.validation import ValidationError, require


class GraphError(ValidationError):
    """Raised for structurally invalid graph operations."""


NodeId = Any
EdgeKey = Tuple[NodeId, NodeId]
AttrDict = Dict[str, Any]


class NodeView:
    """Read-mostly view of a node and its attributes."""

    __slots__ = ("node_id", "attributes")

    def __init__(self, node_id: NodeId, attributes: AttrDict) -> None:
        self.node_id = node_id
        self.attributes = attributes

    def get(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.attributes[key]

    def __contains__(self, key: str) -> bool:
        return key in self.attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeView({self.node_id!r}, {self.attributes!r})"


class EdgeView:
    """Read-mostly view of a directed edge and its attributes."""

    __slots__ = ("source", "target", "attributes")

    def __init__(self, source: NodeId, target: NodeId, attributes: AttrDict) -> None:
        self.source = source
        self.target = target
        self.attributes = attributes

    def get(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.attributes[key]

    def __contains__(self, key: str) -> bool:
        return key in self.attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeView({self.source!r} -> {self.target!r}, {self.attributes!r})"


class PropertyGraph:
    """A directed graph whose nodes and edges carry attribute dictionaries.

    Parameters
    ----------
    name:
        Human-readable name recorded in serialized output.
    directed:
        When ``False`` the graph stores a single undirected edge per pair
        (kept for communication graphs that are naturally symmetric).  The
        default is directed, matching both applications in the paper.
    """

    def __init__(self, name: str = "graph", directed: bool = True) -> None:
        self.name = name
        self.directed = bool(directed)
        self._nodes: Dict[NodeId, AttrDict] = {}
        self._succ: Dict[NodeId, Dict[NodeId, AttrDict]] = {}
        self._pred: Dict[NodeId, Dict[NodeId, AttrDict]] = {}
        self.graph_attributes: AttrDict = {}

    # ------------------------------------------------------------------
    # node operations
    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId, **attributes: Any) -> None:
        """Add a node (or merge attributes into an existing node)."""
        if node_id not in self._nodes:
            self._nodes[node_id] = {}
            self._succ[node_id] = {}
            self._pred[node_id] = {}
        self._nodes[node_id].update(attributes)

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node and every edge incident to it."""
        self._require_node(node_id)
        for target in list(self._succ[node_id]):
            del self._pred[target][node_id]
        for source in list(self._pred[node_id]):
            del self._succ[source][node_id]
        del self._succ[node_id]
        del self._pred[node_id]
        del self._nodes[node_id]

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def node(self, node_id: NodeId) -> NodeView:
        self._require_node(node_id)
        return NodeView(node_id, self._nodes[node_id])

    def node_attributes(self, node_id: NodeId) -> AttrDict:
        self._require_node(node_id)
        return self._nodes[node_id]

    def set_node_attribute(self, node_id: NodeId, key: str, value: Any) -> None:
        self._require_node(node_id)
        self._nodes[node_id][key] = value

    def nodes(self, data: bool = False) -> List:
        """Return node ids, or ``(id, attrs)`` pairs when ``data`` is true."""
        if data:
            return [(nid, attrs) for nid, attrs in self._nodes.items()]
        return list(self._nodes)

    def iter_nodes(self) -> Iterator[NodeView]:
        for nid, attrs in self._nodes.items():
            yield NodeView(nid, attrs)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # edge operations
    # ------------------------------------------------------------------
    def add_edge(self, source: NodeId, target: NodeId, **attributes: Any) -> None:
        """Add a directed edge (auto-creating endpoints), merging attributes."""
        if source not in self._nodes:
            self.add_node(source)
        if target not in self._nodes:
            self.add_node(target)
        existing = self._succ[source].get(target)
        if existing is None:
            existing = {}
            self._succ[source][target] = existing
            self._pred[target][source] = existing
            if not self.directed:
                self._succ[target][source] = existing
                self._pred[source][target] = existing
        existing.update(attributes)

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        self._require_edge(source, target)
        del self._succ[source][target]
        del self._pred[target][source]
        if not self.directed and source != target:
            del self._succ[target][source]
            del self._pred[source][target]

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        return source in self._succ and target in self._succ[source]

    def edge(self, source: NodeId, target: NodeId) -> EdgeView:
        self._require_edge(source, target)
        return EdgeView(source, target, self._succ[source][target])

    def edge_attributes(self, source: NodeId, target: NodeId) -> AttrDict:
        self._require_edge(source, target)
        return self._succ[source][target]

    def set_edge_attribute(self, source: NodeId, target: NodeId, key: str, value: Any) -> None:
        self._require_edge(source, target)
        self._succ[source][target][key] = value

    def edges(self, data: bool = False) -> List:
        """Return ``(u, v)`` tuples, or ``(u, v, attrs)`` when ``data`` is true."""
        result = []
        seen = set()
        for source, targets in self._succ.items():
            for target, attrs in targets.items():
                if not self.directed:
                    key = frozenset((source, target))
                    if key in seen:
                        continue
                    seen.add(key)
                if data:
                    result.append((source, target, attrs))
                else:
                    result.append((source, target))
        return result

    def iter_edges(self) -> Iterator[EdgeView]:
        for source, target, attrs in self.edges(data=True):
            yield EdgeView(source, target, attrs)

    @property
    def edge_count(self) -> int:
        return len(self.edges())

    # ------------------------------------------------------------------
    # adjacency queries
    # ------------------------------------------------------------------
    def successors(self, node_id: NodeId) -> List[NodeId]:
        self._require_node(node_id)
        return list(self._succ[node_id])

    def predecessors(self, node_id: NodeId) -> List[NodeId]:
        self._require_node(node_id)
        return list(self._pred[node_id])

    def neighbors(self, node_id: NodeId) -> List[NodeId]:
        """Union of successors and predecessors (order-stable, deduplicated)."""
        self._require_node(node_id)
        combined: Dict[NodeId, None] = {}
        for other in self._succ[node_id]:
            combined[other] = None
        for other in self._pred[node_id]:
            combined[other] = None
        return list(combined)

    def out_degree(self, node_id: NodeId, weight: Optional[str] = None) -> float:
        self._require_node(node_id)
        if weight is None:
            return len(self._succ[node_id])
        return sum(attrs.get(weight, 0) for attrs in self._succ[node_id].values())

    def in_degree(self, node_id: NodeId, weight: Optional[str] = None) -> float:
        self._require_node(node_id)
        if weight is None:
            return len(self._pred[node_id])
        return sum(attrs.get(weight, 0) for attrs in self._pred[node_id].values())

    def degree(self, node_id: NodeId, weight: Optional[str] = None) -> float:
        return self.out_degree(node_id, weight) + self.in_degree(node_id, weight)

    # ------------------------------------------------------------------
    # bulk helpers
    # ------------------------------------------------------------------
    def find_nodes(self, **conditions: Any) -> List[NodeId]:
        """Return ids of nodes whose attributes equal every given condition."""
        matches = []
        for nid, attrs in self._nodes.items():
            if all(attrs.get(key) == value for key, value in conditions.items()):
                matches.append(nid)
        return matches

    def find_edges(self, **conditions: Any) -> List[EdgeKey]:
        """Return ``(u, v)`` pairs whose attributes equal every given condition."""
        matches = []
        for source, target, attrs in self.edges(data=True):
            if all(attrs.get(key) == value for key, value in conditions.items()):
                matches.append((source, target))
        return matches

    def subgraph(self, node_ids: Iterable[NodeId]) -> "PropertyGraph":
        """Return a deep-copied subgraph induced on *node_ids*."""
        keep = set(node_ids)
        missing = keep - set(self._nodes)
        require(not missing, f"subgraph references unknown nodes: {sorted(map(str, missing))}")
        sub = PropertyGraph(name=f"{self.name}.subgraph", directed=self.directed)
        for nid in keep:
            sub.add_node(nid, **_copy.deepcopy(self._nodes[nid]))
        for source, target, attrs in self.edges(data=True):
            if source in keep and target in keep:
                sub.add_edge(source, target, **_copy.deepcopy(attrs))
        sub.graph_attributes = _copy.deepcopy(self.graph_attributes)
        return sub

    def copy(self) -> "PropertyGraph":
        """Deep copy of the graph (attribute dictionaries are not shared)."""
        duplicate = PropertyGraph(name=self.name, directed=self.directed)
        for nid, attrs in self._nodes.items():
            duplicate.add_node(nid, **_copy.deepcopy(attrs))
        for source, target, attrs in self.edges(data=True):
            duplicate.add_edge(source, target, **_copy.deepcopy(attrs))
        duplicate.graph_attributes = _copy.deepcopy(self.graph_attributes)
        return duplicate

    def total_edge_weight(self, key: str) -> float:
        """Sum an edge attribute over all edges, treating missing values as 0."""
        return sum(attrs.get(key, 0) for _, _, attrs in self.edges(data=True))

    def node_attribute_values(self, key: str) -> Dict[NodeId, Any]:
        """Mapping from node id to attribute value, skipping nodes without it."""
        return {nid: attrs[key] for nid, attrs in self._nodes.items() if key in attrs}

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        return (f"PropertyGraph(name={self.name!r}, {kind}, "
                f"nodes={self.node_count}, edges={self.edge_count})")

    def __eq__(self, other: object) -> bool:
        from repro.graph.diff import graphs_equal  # local import to avoid cycle

        if not isinstance(other, PropertyGraph):
            return NotImplemented
        return graphs_equal(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # mutable container

    # ------------------------------------------------------------------
    # internal checks
    # ------------------------------------------------------------------
    def _require_node(self, node_id: NodeId) -> None:
        if node_id not in self._nodes:
            raise GraphError(f"node {node_id!r} is not in the graph")

    def _require_edge(self, source: NodeId, target: NodeId) -> None:
        if source not in self._succ or target not in self._succ[source]:
            raise GraphError(f"edge {source!r} -> {target!r} is not in the graph")
