"""Graph comparison used by the benchmark evaluator.

The paper's "Results Evaluator" compares the outcome of executing the
LLM-generated code against the golden answer's outcome.  When the outcome is
an updated graph (e.g. "Remove packet switch P1 from Chassis 4"), the
comparison must be structural *and* attribute-aware — Table 5 even includes a
dedicated failure class, "Graphs are not identical".  :func:`diff_graphs`
returns a precise description of how two graphs differ so the results logger
can record it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.graph.model import PropertyGraph


class _AbsentType:
    """Singleton marking an attribute that one side does not have at all.

    A plain string sentinel ("<absent>") is ambiguous: an attribute whose
    *real value* is that string would silently compare equal to a missing
    one.  The singleton is only ever equal to itself, renders as
    ``<absent>`` in diff summaries, and keeps its identity across pickling
    (diff tuples travel through the execution fabric's result cache).
    """

    _instance: "_AbsentType" = None

    def __new__(cls) -> "_AbsentType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<absent>"

    def __reduce__(self):
        return (_AbsentType, ())


#: the unique missing-attribute marker used in attribute-mismatch tuples
ABSENT = _AbsentType()


@dataclass
class GraphDiff:
    """Structured difference between two graphs."""

    missing_nodes: List[Any] = field(default_factory=list)
    extra_nodes: List[Any] = field(default_factory=list)
    missing_edges: List[Tuple[Any, Any]] = field(default_factory=list)
    extra_edges: List[Tuple[Any, Any]] = field(default_factory=list)
    node_attribute_mismatches: List[Tuple[Any, str, Any, Any]] = field(default_factory=list)
    edge_attribute_mismatches: List[Tuple[Tuple[Any, Any], str, Any, Any]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.missing_nodes or self.extra_nodes or self.missing_edges
                    or self.extra_edges or self.node_attribute_mismatches
                    or self.edge_attribute_mismatches)

    def summary(self, limit: int = 5) -> str:
        """Human-readable summary (truncated to *limit* items per category)."""
        if self.is_empty:
            return "graphs are identical"
        parts = []
        if self.missing_nodes:
            parts.append(f"missing nodes: {self.missing_nodes[:limit]}")
        if self.extra_nodes:
            parts.append(f"extra nodes: {self.extra_nodes[:limit]}")
        if self.missing_edges:
            parts.append(f"missing edges: {self.missing_edges[:limit]}")
        if self.extra_edges:
            parts.append(f"extra edges: {self.extra_edges[:limit]}")
        if self.node_attribute_mismatches:
            parts.append(f"node attribute mismatches: {self.node_attribute_mismatches[:limit]}")
        if self.edge_attribute_mismatches:
            parts.append(f"edge attribute mismatches: {self.edge_attribute_mismatches[:limit]}")
        return "; ".join(parts)


def values_equal(left: Any, right: Any, float_tolerance: float = 1e-9) -> bool:
    """Compare attribute values with float tolerance and container recursion."""
    if isinstance(left, float) or isinstance(right, float):
        try:
            return math.isclose(float(left), float(right), rel_tol=float_tolerance,
                                abs_tol=float_tolerance)
        except (TypeError, ValueError):
            return False
    if isinstance(left, dict) and isinstance(right, dict):
        if set(left) != set(right):
            return False
        return all(values_equal(left[k], right[k], float_tolerance) for k in left)
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        if len(left) != len(right):
            return False
        return all(values_equal(a, b, float_tolerance) for a, b in zip(left, right))
    return left == right


def _diff_attrs(left: Dict[str, Any], right: Dict[str, Any],
                float_tolerance: float) -> List[Tuple[str, Any, Any]]:
    mismatches = []
    for key in sorted(set(left) | set(right), key=str):
        left_value = left.get(key, ABSENT)
        right_value = right.get(key, ABSENT)
        if left_value is ABSENT and right_value is ABSENT:
            continue
        if left_value is ABSENT or right_value is ABSENT:
            mismatches.append((key, left_value, right_value))
            continue
        if not values_equal(left_value, right_value, float_tolerance):
            mismatches.append((key, left_value, right_value))
    return mismatches


def diff_graphs(expected: PropertyGraph, actual: PropertyGraph,
                float_tolerance: float = 1e-9) -> GraphDiff:
    """Return the full structural/attribute diff between two graphs."""
    diff = GraphDiff()
    expected_nodes = set(expected.nodes())
    actual_nodes = set(actual.nodes())
    diff.missing_nodes = sorted(expected_nodes - actual_nodes, key=str)
    diff.extra_nodes = sorted(actual_nodes - expected_nodes, key=str)

    expected_edges = set(expected.edges())
    actual_edges = set(actual.edges())
    diff.missing_edges = sorted(expected_edges - actual_edges, key=str)
    diff.extra_edges = sorted(actual_edges - expected_edges, key=str)

    for node_id in sorted(expected_nodes & actual_nodes, key=str):
        for key, left, right in _diff_attrs(expected.node_attributes(node_id),
                                            actual.node_attributes(node_id),
                                            float_tolerance):
            diff.node_attribute_mismatches.append((node_id, key, left, right))

    for edge in sorted(expected_edges & actual_edges, key=str):
        source, target = edge
        for key, left, right in _diff_attrs(expected.edge_attributes(source, target),
                                            actual.edge_attributes(source, target),
                                            float_tolerance):
            diff.edge_attribute_mismatches.append((edge, key, left, right))
    return diff


def graphs_equal(expected: PropertyGraph, actual: PropertyGraph,
                 float_tolerance: float = 1e-9) -> bool:
    """True when the two graphs have identical structure and attributes."""
    return diff_graphs(expected, actual, float_tolerance).is_empty
