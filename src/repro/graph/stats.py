"""Summary statistics for property graphs.

Used by the application wrappers to describe the network to the prompt
generator ("the communication graph has N nodes and M edges, edge weights
are bytes/connections/packets, ...") and by a few golden answers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.graph.model import PropertyGraph


@dataclass
class GraphStats:
    """Aggregate description of a property graph."""

    node_count: int
    edge_count: int
    directed: bool
    node_attribute_keys: List[str]
    edge_attribute_keys: List[str]
    max_out_degree: int
    max_in_degree: int
    isolated_nodes: int
    node_type_counts: Dict[str, int] = field(default_factory=dict)
    edge_weight_totals: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "directed": self.directed,
            "node_attribute_keys": list(self.node_attribute_keys),
            "edge_attribute_keys": list(self.edge_attribute_keys),
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "isolated_nodes": self.isolated_nodes,
            "node_type_counts": dict(self.node_type_counts),
            "edge_weight_totals": dict(self.edge_weight_totals),
        }


def compute_stats(graph: PropertyGraph, type_key: str = "type",
                  weight_keys: Optional[List[str]] = None) -> GraphStats:
    """Compute :class:`GraphStats` for *graph*.

    Parameters
    ----------
    graph:
        The graph to summarize.
    type_key:
        Node attribute used to build the per-type node counts (MALT uses
        entity kinds stored under ``type``).
    weight_keys:
        Edge attributes summed into ``edge_weight_totals``.  When omitted,
        all numeric edge attributes found on the first pass are used.
    """
    node_keys: set = set()
    type_counter: Counter = Counter()
    for _, attrs in graph.nodes(data=True):
        node_keys.update(attrs.keys())
        if type_key in attrs:
            type_counter[str(attrs[type_key])] += 1

    edge_keys: set = set()
    numeric_keys: set = set()
    for _, _, attrs in graph.edges(data=True):
        edge_keys.update(attrs.keys())
        for key, value in attrs.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                numeric_keys.add(key)

    if weight_keys is None:
        weight_keys = sorted(numeric_keys)

    weight_totals = {key: float(graph.total_edge_weight(key)) for key in weight_keys}

    out_degrees = [graph.out_degree(n) for n in graph.nodes()]
    in_degrees = [graph.in_degree(n) for n in graph.nodes()]
    isolated = sum(1 for n in graph.nodes() if graph.degree(n) == 0)

    return GraphStats(
        node_count=graph.node_count,
        edge_count=graph.edge_count,
        directed=graph.directed,
        node_attribute_keys=sorted(node_keys),
        edge_attribute_keys=sorted(edge_keys),
        max_out_degree=max(out_degrees) if out_degrees else 0,
        max_in_degree=max(in_degrees) if in_degrees else 0,
        isolated_nodes=isolated,
        node_type_counts=dict(type_counter),
        edge_weight_totals=weight_totals,
    )


def degree_histogram(graph: PropertyGraph) -> Dict[int, int]:
    """Return a mapping from total degree to the number of nodes with it."""
    counter: Counter = Counter(graph.degree(n) for n in graph.nodes())
    return dict(sorted(counter.items()))


def top_nodes_by_weight(graph: PropertyGraph, weight_key: str, k: int = 5,
                        direction: str = "total") -> List[tuple]:
    """Return the *k* nodes with the largest weighted degree.

    ``direction`` selects ``"in"``, ``"out"`` or ``"total"`` weighted degree.
    """
    selector = {
        "in": lambda n: graph.in_degree(n, weight=weight_key),
        "out": lambda n: graph.out_degree(n, weight=weight_key),
        "total": lambda n: graph.degree(n, weight=weight_key),
    }
    if direction not in selector:
        raise ValueError(f"direction must be in/out/total, got {direction!r}")
    scored = [(node, selector[direction](node)) for node in graph.nodes()]
    scored.sort(key=lambda item: (-item[1], str(item[0])))
    return scored[:k]
