"""Serialization of :class:`~repro.graph.model.PropertyGraph`.

Two formats are supported:

* a node-link dictionary / JSON document (the format the *strawman* baseline
  pastes into the LLM prompt, so its size directly drives the token-cost
  analysis of Figure 4), and
* a flat edge list used by a few golden answers and by the CLI export.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.graph.model import PropertyGraph
from repro.utils.validation import require


FORMAT_VERSION = 1


def graph_to_dict(graph: PropertyGraph) -> Dict[str, Any]:
    """Convert a graph into a JSON-serializable node-link dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "directed": graph.directed,
        "graph_attributes": dict(graph.graph_attributes),
        "nodes": [
            {"id": node_id, "attributes": dict(attrs)}
            for node_id, attrs in graph.nodes(data=True)
        ],
        "edges": [
            {"source": source, "target": target, "attributes": dict(attrs)}
            for source, target, attrs in graph.edges(data=True)
        ],
    }


def graph_from_dict(payload: Dict[str, Any]) -> PropertyGraph:
    """Rebuild a graph from the dictionary produced by :func:`graph_to_dict`."""
    require(isinstance(payload, dict), "graph payload must be a dictionary")
    require("nodes" in payload and "edges" in payload,
            "graph payload must contain 'nodes' and 'edges'")
    graph = PropertyGraph(
        name=payload.get("name", "graph"),
        directed=payload.get("directed", True),
    )
    graph.graph_attributes.update(payload.get("graph_attributes", {}))
    for node in payload["nodes"]:
        require("id" in node, "every node entry must contain an 'id'")
        graph.add_node(node["id"], **node.get("attributes", {}))
    for edge in payload["edges"]:
        require("source" in edge and "target" in edge,
                "every edge entry must contain 'source' and 'target'")
        graph.add_edge(edge["source"], edge["target"], **edge.get("attributes", {}))
    return graph


def graph_to_json(graph: PropertyGraph, indent: Optional[int] = None) -> str:
    """Serialize a graph to a JSON string (the strawman prompt payload)."""
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=True, default=str)


def graph_from_json(text: str) -> PropertyGraph:
    """Parse a JSON string produced by :func:`graph_to_json`."""
    return graph_from_dict(json.loads(text))


def graph_to_edge_list(graph: PropertyGraph,
                       weight_keys: Optional[List[str]] = None) -> List[Dict[str, Any]]:
    """Flatten the graph into a list of edge records.

    Each record contains ``source``, ``target`` and, when *weight_keys* is
    given, only those attribute columns; otherwise all edge attributes are
    included.
    """
    records = []
    for source, target, attrs in graph.edges(data=True):
        record: Dict[str, Any] = {"source": source, "target": target}
        if weight_keys is None:
            record.update(attrs)
        else:
            for key in weight_keys:
                record[key] = attrs.get(key)
        records.append(record)
    return records
