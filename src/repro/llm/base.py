"""Provider-neutral request/response interface for LLM completions."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.llm.pricing import DEFAULT_PRICING, PricingTable
from repro.llm.tokenizer import ApproximateTokenizer


class TokenLimitExceeded(RuntimeError):
    """Raised when a prompt does not fit into the model's context window.

    The paper's Figure 4b shows the strawman baseline hitting exactly this
    condition once the serialized graph grows past roughly 150 nodes+edges.
    """

    def __init__(self, model: str, prompt_tokens: int, limit: int) -> None:
        super().__init__(
            f"prompt of {prompt_tokens} tokens exceeds the {limit}-token window of {model}")
        self.model = model
        self.prompt_tokens = prompt_tokens
        self.limit = limit


@dataclass
class LlmRequest:
    """One completion request.

    ``metadata`` carries structured facts about the query (its benchmark id,
    complexity, backend) that the *simulated* providers use in place of
    actually understanding the prose prompt; a hosted model would ignore it.
    """

    prompt: str
    temperature: float = 0.0
    max_completion_tokens: int = 1024
    metadata: Dict[str, Any] = field(default_factory=dict)
    attempt: int = 0
    feedback: Optional[str] = None  # previous error message, for self-debug


@dataclass
class LlmResponse:
    """One completion response with token accounting."""

    text: str
    model: str
    prompt_tokens: int
    completion_tokens: int
    cost_usd: float
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


class LlmProvider(abc.ABC):
    """Common behaviour of every provider: token accounting and window checks."""

    #: model identifier used for pricing lookups and result tables
    model_name: str = "model"
    #: display name used in reports (matches the paper's table rows)
    display_name: str = "Model"
    #: context-window size in tokens
    context_window: int = 8192
    #: whether repeated calls at the same settings can return different output
    deterministic: bool = True

    def __init__(self, pricing: Optional[PricingTable] = None) -> None:
        self._pricing = pricing or DEFAULT_PRICING
        self._tokenizer = ApproximateTokenizer()
        self._requests: List[LlmRequest] = []

    # ------------------------------------------------------------------
    @property
    def request_log(self) -> List[LlmRequest]:
        """All requests served by this provider instance (for cost analysis)."""
        return list(self._requests)

    def count_tokens(self, text: str) -> int:
        return self._tokenizer.count(text)

    def complete(self, request: LlmRequest) -> LlmResponse:
        """Serve one completion request.

        Raises :class:`TokenLimitExceeded` when the prompt does not fit in
        the model's context window.
        """
        prompt_tokens = self.count_tokens(request.prompt)
        if prompt_tokens > self.context_window:
            raise TokenLimitExceeded(self.model_name, prompt_tokens, self.context_window)
        self._requests.append(request)
        text, metadata = self._generate(request)
        completion_tokens = self.count_tokens(text)
        cost = self._pricing.cost(self.model_name, prompt_tokens, completion_tokens)
        return LlmResponse(
            text=text,
            model=self.model_name,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            cost_usd=cost,
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _generate(self, request: LlmRequest) -> tuple:
        """Produce ``(completion_text, metadata)`` for *request*."""
