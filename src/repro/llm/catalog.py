"""Registry of the simulated models evaluated in the paper."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.llm.calibration import CalibrationTable
from repro.llm.pricing import PricingTable
from repro.llm.providers import (
    SimulatedBard,
    SimulatedGpt3,
    SimulatedGpt4,
    SimulatedLlmProvider,
    SimulatedTextDavinci003,
)


_REGISTRY: Dict[str, Type[SimulatedLlmProvider]] = {
    SimulatedGpt4.model_name: SimulatedGpt4,
    SimulatedGpt3.model_name: SimulatedGpt3,
    SimulatedTextDavinci003.model_name: SimulatedTextDavinci003,
    SimulatedBard.model_name: SimulatedBard,
}

#: the four models of the paper's evaluation, in table order
DEFAULT_MODELS: List[str] = [
    SimulatedGpt4.model_name,
    SimulatedGpt3.model_name,
    SimulatedTextDavinci003.model_name,
    SimulatedBard.model_name,
]


def available_models() -> List[str]:
    """Names of all registered simulated models."""
    return list(_REGISTRY)


def create_provider(model: str, pricing: Optional[PricingTable] = None,
                    calibration: Optional[CalibrationTable] = None) -> SimulatedLlmProvider:
    """Instantiate a simulated provider by model name."""
    if model not in _REGISTRY:
        raise KeyError(f"unknown model {model!r}; available: {available_models()}")
    return _REGISTRY[model](pricing=pricing, calibration=calibration)
