"""Simulated LLM providers.

Every provider follows the same recipe, which is the substitution documented
in DESIGN.md: the *interface* (prompt in, text out, token accounting, context
window) matches a hosted model, while the *content* of the response comes
from the rule-based synthesizer plus a calibrated decision about whether this
model, on this backend, at this task complexity, would have produced correct
code.  Failing responses contain plausible-but-wrong code rendered by the
fault injector so that the downstream pipeline (sandbox, evaluator, error
classifier, self-debug) sees realistic failures.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Optional, Tuple

from repro.graph.serialization import graph_from_json
from repro.llm.base import LlmProvider, LlmRequest
from repro.llm.calibration import CalibrationTable, DEFAULT_CALIBRATION
from repro.llm.faults import FaultInjector
from repro.llm.pricing import PricingTable
from repro.synthesis.engine import CodeSynthesisEngine, UnsupportedQueryError
from repro.synthesis.intents import Intent, IntentParseError


_STRAWMAN_DATA_PATTERN = re.compile(
    r"Network data \(JSON\):\n\n(?P<payload>\{.*\})\n\nOperator request:", re.DOTALL)


def _intent_from_metadata(metadata: Dict[str, Any]) -> Optional[Intent]:
    intent_spec = metadata.get("intent")
    if not intent_spec:
        return None
    return Intent.create(intent_spec["name"], **intent_spec.get("params", {}))


class SimulatedLlmProvider(LlmProvider):
    """Base class implementing the calibrated generate step."""

    def __init__(self, pricing: Optional[PricingTable] = None,
                 calibration: Optional[CalibrationTable] = None,
                 synthesis: Optional[CodeSynthesisEngine] = None) -> None:
        super().__init__(pricing=pricing)
        self._calibration = calibration or DEFAULT_CALIBRATION
        self._synthesis = synthesis or CodeSynthesisEngine()
        self._faults = FaultInjector()

    # ------------------------------------------------------------------
    @property
    def calibration(self) -> CalibrationTable:
        return self._calibration

    def _decide_pass(self, request: LlmRequest) -> Tuple[bool, Dict[str, Any]]:
        """Apply the calibrated reliability model to one request."""
        metadata = request.metadata
        info: Dict[str, Any] = {}
        # Without benchmark metadata (interactive use) the simulator behaves
        # like its best self: it answers correctly whenever the synthesizer
        # can express the query.
        required = ("application", "backend", "complexity", "difficulty_rank", "bucket_size")
        if not all(key in metadata for key in required):
            info["calibrated"] = False
            return True, info
        info["calibrated"] = True
        base_pass = self._calibration.passes(
            self.model_name, metadata["application"], metadata["backend"],
            metadata["complexity"], metadata["difficulty_rank"], metadata["bucket_size"])
        if base_pass:
            return True, info

        query_id = metadata.get("query_id", metadata.get("query", ""))
        backend = metadata["backend"]
        # non-deterministic models may recover on a later sample (pass@k)
        if not self.deterministic and request.attempt > 0:
            recovery = self._calibration.recovery_attempt(query_id, self.model_name, backend)
            info["recovery_attempt"] = recovery
            if recovery is not None and (request.attempt + 1) >= recovery:
                return True, info
        # a self-debug round (error message fed back) may fix the failure
        if request.feedback:
            fault_type = self._calibration.fault_type_for(
                metadata["application"], query_id, self.model_name, backend)
            if self._calibration.self_debug_fixes(query_id, self.model_name, backend, fault_type):
                info["fixed_by_self_debug"] = True
                return True, info
        return False, info

    # ------------------------------------------------------------------
    def _generate(self, request: LlmRequest) -> Tuple[str, Dict[str, Any]]:
        metadata = request.metadata
        backend = metadata.get("backend", "networkx")
        query = metadata.get("query", request.prompt)
        intent = _intent_from_metadata(metadata)
        should_pass, info = self._decide_pass(request)

        if backend == "strawman":
            return self._generate_strawman(request, query, intent, should_pass, info)

        correct_code = None
        language = "sql" if backend == "sql" else "python"
        try:
            program = self._synthesis.generate(intent if intent is not None else query, backend)
            correct_code = program.code
        except UnsupportedQueryError as exc:
            info["unsupported"] = str(exc)

        if should_pass and correct_code is not None:
            info["intended_correct"] = True
            text = (f"Here is the {backend} code for the request:\n\n"
                    f"```{language}\n{correct_code}\n```")
            return text, info

        info["intended_correct"] = False
        query_id = metadata.get("query_id", query)
        fault_type = self._calibration.fault_type_for(
            metadata.get("application", "traffic_analysis"), query_id,
            self.model_name, backend)
        info["fault_type"] = fault_type
        faulty_code = self._faults.render(fault_type, backend, correct_code)
        text = (f"Here is the {backend} code for the request:\n\n"
                f"```{language}\n{faulty_code}\n```")
        return text, info

    # ------------------------------------------------------------------
    def _generate_strawman(self, request: LlmRequest, query: str,
                           intent: Optional[Intent], should_pass: bool,
                           info: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
        """Answer directly from the data embedded in the prompt."""
        match = _STRAWMAN_DATA_PATTERN.search(request.prompt)
        if match is None:
            info["intended_correct"] = False
            info["fault_type"] = "syntax_error"
            return "I cannot find the network data in the prompt.", info
        if not should_pass:
            info["intended_correct"] = False
            fault_type = self._calibration.fault_type_for(
                request.metadata.get("application", "traffic_analysis"),
                request.metadata.get("query_id", query), self.model_name, "strawman")
            info["fault_type"] = fault_type
            return self._faults.render(fault_type, "strawman"), info
        try:
            graph = graph_from_json(match.group("payload"))
            answer = self._synthesis.answer_directly(
                intent if intent is not None else query, graph)
        except (UnsupportedQueryError, IntentParseError, ValueError, KeyError) as exc:
            info["intended_correct"] = False
            info["fault_type"] = "wrong_calculation_logic"
            info["error"] = str(exc)
            return "0", info
        info["intended_correct"] = True
        return answer, info


class SimulatedGpt4(SimulatedLlmProvider):
    """Simulated GPT-4 (8k context window, deterministic at temperature 0)."""

    model_name = "gpt-4"
    display_name = "GPT-4"
    context_window = 8192
    deterministic = True


class SimulatedGpt3(SimulatedLlmProvider):
    """Simulated GPT-3 (2k context window, deterministic at temperature 0)."""

    model_name = "gpt-3"
    display_name = "GPT-3"
    context_window = 2049
    deterministic = True


class SimulatedTextDavinci003(SimulatedLlmProvider):
    """Simulated text-davinci-003 (4k window, deterministic at temperature 0)."""

    model_name = "text-davinci-003"
    display_name = "text-davinci-003"
    context_window = 4097
    deterministic = True


class SimulatedBard(SimulatedLlmProvider):
    """Simulated Google Bard.

    Bard's temperature cannot be fixed, so the paper samples each query five
    times; the simulated model is therefore flagged non-deterministic and its
    failing queries may recover on later attempts (see
    :meth:`repro.llm.calibration.CalibrationTable.recovery_attempt`).
    """

    model_name = "bard"
    display_name = "Google Bard"
    context_window = 2048
    deterministic = False
