"""Approximate tokenization for prompt accounting.

The cost and scalability analysis only needs token *counts*, not the exact
BPE segmentation.  The tokenizer below mimics the granularity of the GPT
byte-pair encoders closely enough for that purpose: whitespace-separated
words are split further into ~4-character chunks, punctuation and digits are
counted individually, and JSON structural characters each count as a token
(which is what makes the strawman's embedded graph JSON expensive).
"""

from __future__ import annotations

import re
from typing import List


_WORD_PATTERN = re.compile(r"[A-Za-z]+|\d|[^\sA-Za-z\d]")

#: average characters per token inside long alphabetic words
_CHARS_PER_SUBWORD = 4


class ApproximateTokenizer:
    """Deterministic, dependency-free approximation of a GPT-style tokenizer."""

    def tokenize(self, text: str) -> List[str]:
        """Split *text* into approximate tokens."""
        tokens: List[str] = []
        for match in _WORD_PATTERN.finditer(text):
            piece = match.group(0)
            if piece.isalpha() and len(piece) > _CHARS_PER_SUBWORD:
                for start in range(0, len(piece), _CHARS_PER_SUBWORD):
                    tokens.append(piece[start:start + _CHARS_PER_SUBWORD])
            else:
                tokens.append(piece)
        return tokens

    def count(self, text: str) -> int:
        """Number of approximate tokens in *text*."""
        return len(self.tokenize(text))


_DEFAULT_TOKENIZER = ApproximateTokenizer()


def count_tokens(text: str) -> int:
    """Module-level convenience wrapper around :class:`ApproximateTokenizer`."""
    return _DEFAULT_TOKENIZER.count(text)
