"""Fault injection: producing the *wrong* code a struggling LLM would write.

When the calibration table decides that a simulated model fails a query, the
provider still has to return code — code that looks plausible but fails the
way real LLM output failed in the paper (Table 5): syntax errors, references
to imaginary graph attributes or function arguments, bad argument counts,
unsupported operations, wrong calculation logic, or manipulations that leave
the graph in a subtly different state.

Each fault type renders per-backend code whose *execution outcome* carries
the characteristic signature, so the benchmark's error classifier can
re-derive the Table-5 taxonomy from observed behaviour rather than from a
label smuggled through the pipeline.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.utils.validation import require_in


class FaultType(str, enum.Enum):
    """The error taxonomy of paper Table 5."""

    SYNTAX_ERROR = "syntax_error"
    IMAGINARY_GRAPH_ATTRIBUTE = "imaginary_graph_attribute"
    IMAGINARY_FUNCTION_ARGUMENT = "imaginary_function_argument"
    ARGUMENT_ERROR = "argument_error"
    OPERATION_ERROR = "operation_error"
    WRONG_CALCULATION_LOGIC = "wrong_calculation_logic"
    GRAPHS_NOT_IDENTICAL = "graphs_not_identical"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_PYTHON_BACKENDS = ("networkx", "pandas")
_ALL_BACKENDS = ("networkx", "pandas", "sql", "strawman")


class FaultInjector:
    """Render faulty code (or a faulty answer) for a given fault type."""

    def render(self, fault_type: str, backend: str,
               correct_code: Optional[str] = None) -> str:
        """Return faulty code for *backend* exhibiting *fault_type*.

        When *correct_code* is provided, logic-level faults
        (``wrong_calculation_logic``, ``graphs_not_identical``) are derived
        from it so the faulty code still reads like an answer to the same
        query; structural faults use canned plausible-looking snippets.
        """
        require_in(backend, _ALL_BACKENDS, "backend")
        fault = FaultType(fault_type)
        if backend == "sql":
            return self._render_sql(fault)
        if backend == "strawman":
            return self._render_strawman(fault)
        return self._render_python(fault, backend, correct_code)

    # ------------------------------------------------------------------
    def _render_python(self, fault: FaultType, backend: str,
                       correct_code: Optional[str]) -> str:
        graph_variable = "G" if backend == "networkx" else "nodes_df"
        if fault is FaultType.SYNTAX_ERROR:
            return (f"for node in {graph_variable}.nodes(:\n"
                    "    result = node\n")
        if fault is FaultType.IMAGINARY_GRAPH_ATTRIBUTE:
            if backend == "networkx":
                return ("result = sum(G.nodes[n]['total_traffic_bytes'] "
                        "for n in G.nodes())\n")
            return "result = nodes_df['total_traffic_bytes'].sum()\n"
        if fault is FaultType.IMAGINARY_FUNCTION_ARGUMENT:
            if backend == "networkx":
                return ("import networkx as nx\n"
                        "result = nx.degree_centrality(G, weight='bytes', "
                        "normalized='auto')\n")
            return ("result = edges_df.sort_values('bytes', direction='descending')\n")
        if fault is FaultType.ARGUMENT_ERROR:
            if backend == "networkx":
                return "result = G.subgraph('n0', 'n1', 'n2')\n"
            return "result = edges_df.merge()\n"
        if fault is FaultType.OPERATION_ERROR:
            if backend == "networkx":
                return ("totals = {}\n"
                        "for u, v, data in G.edges(data=True):\n"
                        "    totals[u] = totals.get(u, 0) + data\n"
                        "result = totals\n")
            return ("result = edges_df['bytes'] + edges_df['source']\n"
                    "result = result.sum()\n")
        if fault is FaultType.WRONG_CALCULATION_LOGIC:
            if correct_code:
                return correct_code + "\nresult = None if result is None else 0\n"
            return "result = 0\n"
        if fault is FaultType.GRAPHS_NOT_IDENTICAL:
            base = correct_code or ""
            if backend == "networkx":
                return base + "\nG.add_node('phantom-node', added_by='mistake')\n"
            return base + (
                "\nimport itertools\n"
                "nodes_df = nodes_df.assign(phantom=[1] * len(nodes_df))\n")
        raise ValueError(f"unhandled fault type {fault}")

    # ------------------------------------------------------------------
    def _render_sql(self, fault: FaultType) -> str:
        if fault is FaultType.SYNTAX_ERROR:
            return "SELECT id FROM nodes WHERE (address LIKE '10.%'"
        if fault is FaultType.IMAGINARY_GRAPH_ATTRIBUTE:
            return "SELECT id, total_traffic_bytes FROM nodes"
        if fault is FaultType.IMAGINARY_FUNCTION_ARGUMENT:
            return "SELECT MEDIAN(bytes) FROM edges"
        if fault is FaultType.ARGUMENT_ERROR:
            return "SELECT SUM(bytes, packets) FROM edges"
        if fault is FaultType.OPERATION_ERROR:
            return "SELECT SUM(source) + SUM(bytes) FROM edges"
        if fault is FaultType.WRONG_CALCULATION_LOGIC:
            return "SELECT COUNT(*) FROM edges"
        if fault is FaultType.GRAPHS_NOT_IDENTICAL:
            return "DELETE FROM edges WHERE bytes < 0; UPDATE nodes SET type = 'host'"
        raise ValueError(f"unhandled fault type {fault}")

    # ------------------------------------------------------------------
    def _render_strawman(self, fault: FaultType) -> str:
        """The strawman answers directly, so its faults are wrong answers."""
        if fault is FaultType.SYNTAX_ERROR:
            return "I could not parse the network data provided."
        if fault in (FaultType.IMAGINARY_GRAPH_ATTRIBUTE,
                     FaultType.IMAGINARY_FUNCTION_ARGUMENT):
            return "The answer is based on the 'total_traffic' field: 42."
        if fault is FaultType.ARGUMENT_ERROR:
            return "The requested nodes are: n999, n1000."
        if fault is FaultType.OPERATION_ERROR:
            return "The total is approximately 1,234,567 (estimated)."
        if fault is FaultType.WRONG_CALCULATION_LOGIC:
            return "0"
        if fault is FaultType.GRAPHS_NOT_IDENTICAL:
            return "I updated the graph as requested (no changes were necessary)."
        raise ValueError(f"unhandled fault type {fault}")

    # ------------------------------------------------------------------
    def expected_signature(self, fault_type: str) -> Dict[str, str]:
        """A description of how each fault type manifests at execution time.

        Used by documentation and by tests that assert the classifier maps
        outcomes back to the right taxonomy bucket.
        """
        fault = FaultType(fault_type)
        signatures = {
            FaultType.SYNTAX_ERROR: {"stage": "parse", "signal": "SyntaxError"},
            FaultType.IMAGINARY_GRAPH_ATTRIBUTE: {"stage": "run", "signal": "KeyError on attribute"},
            FaultType.IMAGINARY_FUNCTION_ARGUMENT: {"stage": "run", "signal": "TypeError unexpected keyword"},
            FaultType.ARGUMENT_ERROR: {"stage": "run", "signal": "TypeError argument count"},
            FaultType.OPERATION_ERROR: {"stage": "run", "signal": "TypeError unsupported operand"},
            FaultType.WRONG_CALCULATION_LOGIC: {"stage": "compare", "signal": "wrong value"},
            FaultType.GRAPHS_NOT_IDENTICAL: {"stage": "compare", "signal": "graph mismatch"},
        }
        return signatures[fault]


# ---------------------------------------------------------------------------
# codegen-temporal faults
# ---------------------------------------------------------------------------
class TemporalFaultType(str, enum.Enum):
    """How timeline-aware code generation goes wrong.

    These are deliberately distinct from the direct-answer fault model (a
    stale re-read of the timeline): a failing codegen model emits a program
    whose *time handling* is broken.
    """

    #: every referenced timestamp anchors one or more snapshots too early
    MISANCHORED_SNAPSHOT = "misanchored_snapshot"
    #: the program reasons over a delta window missing its newest snapshots
    OFF_BY_ONE_WINDOW = "off_by_one_window"
    #: the program indexes past the snapshot sequence and crashes
    RUNTIME_CRASH = "runtime_crash"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TemporalFaultInjector:
    """Build the broken inputs/preludes of each temporal fault type.

    Every method is a pure function of its arguments, keeping faulty
    temporal programs deterministic across processes — a requirement of the
    fabric's serial-vs-parallel byte-identity contract.
    """

    def misanchored_intent(self, intent, times, shift: int):
        """*intent* with every bound time parameter shifted *shift* snapshots
        earlier (clamped at the first snapshot)."""
        from bisect import bisect_right

        from repro.synthesis.intents import Intent
        from repro.synthesis.reference import TEMPORAL_TIME_PARAMS

        shifted = {}
        for key, value in intent.params:
            if key in TEMPORAL_TIME_PARAMS and value is not None:
                index = bisect_right(times, float(value)) - 1
                shifted[key] = times[max(0, index - shift)]
            else:
                shifted[key] = value
        return Intent.create(intent.name, **shifted)

    def truncation_prelude(self, cut: int) -> str:
        """A prelude dropping the newest *cut* snapshots before the correct
        program runs — the off-by-one delta-window fault."""
        return (f"snapshots = snapshots[:-{cut}]\n"
                f"deltas = deltas[:-{cut}]\n")

    def crash_code(self) -> str:
        """A plausible-looking anchoring bug that indexes off the end of the
        snapshot sequence and raises ``IndexError`` in the sandbox."""
        return "result = snapshots[len(snapshots)]['time']\n"
