"""Per-model token pricing.

Prices follow the published Azure OpenAI / OpenAI price sheets from the
paper's time frame (mid-2023), expressed in USD per 1,000 tokens.  Bard had
no public price; the paper's cost analysis uses GPT-4 pricing, and so do the
cost benchmarks here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import require_positive


@dataclass(frozen=True)
class ModelPricing:
    """USD cost per 1,000 prompt and completion tokens."""

    prompt_per_1k: float
    completion_per_1k: float

    def cost(self, prompt_tokens: int, completion_tokens: int) -> float:
        """Dollar cost of one request."""
        require_positive(prompt_tokens, "prompt_tokens", allow_zero=True)
        require_positive(completion_tokens, "completion_tokens", allow_zero=True)
        return (prompt_tokens / 1000.0) * self.prompt_per_1k + \
               (completion_tokens / 1000.0) * self.completion_per_1k


class PricingTable:
    """Lookup of :class:`ModelPricing` by model name."""

    def __init__(self, prices: Dict[str, ModelPricing]) -> None:
        self._prices = dict(prices)

    def for_model(self, model: str) -> ModelPricing:
        if model not in self._prices:
            raise KeyError(f"no pricing for model {model!r}; known: {sorted(self._prices)}")
        return self._prices[model]

    def models(self):
        return sorted(self._prices)

    def cost(self, model: str, prompt_tokens: int, completion_tokens: int) -> float:
        return self.for_model(model).cost(prompt_tokens, completion_tokens)

    # ------------------------------------------------------------------
    # serialization (cost-sweep tasks carry their pricing across processes)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """Lossless JSON-friendly dump of the table."""
        return {model: {"prompt_per_1k": pricing.prompt_per_1k,
                        "completion_per_1k": pricing.completion_per_1k}
                for model, pricing in sorted(self._prices.items())}

    @classmethod
    def from_dict(cls, payload: Dict[str, Dict[str, float]]) -> "PricingTable":
        return cls({model: ModelPricing(**fields)
                    for model, fields in payload.items()})


#: Azure OpenAI pricing (USD / 1k tokens) as of mid-2023, plus stand-ins for
#: models without public pricing.
DEFAULT_PRICING = PricingTable({
    "gpt-4": ModelPricing(prompt_per_1k=0.03, completion_per_1k=0.06),
    "gpt-4-32k": ModelPricing(prompt_per_1k=0.06, completion_per_1k=0.12),
    "gpt-3": ModelPricing(prompt_per_1k=0.002, completion_per_1k=0.002),
    "text-davinci-003": ModelPricing(prompt_per_1k=0.02, completion_per_1k=0.02),
    "bard": ModelPricing(prompt_per_1k=0.03, completion_per_1k=0.06),
})
