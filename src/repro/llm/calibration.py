"""Calibrated reliability model of the simulated LLMs.

The hosted models' measured accuracy (paper Tables 3 and 4) is the only part
of the original system we cannot re-run offline, so it becomes the *input*
of the simulation: for every (model, application, backend, complexity) cell
the table stores the fraction of queries the model answered correctly.  A
simulated provider then passes a query if and only if the query's difficulty
rank within its complexity bucket is below ``round(fraction * bucket_size)``
— the same per-query determinism the paper observed (temperature-0 models
answer the same way every time, and the *same* queries tend to fail across
models).

The fault-type distribution (paper Table 5) and the complementary-technique
behaviour (paper Table 6: pass@5 and self-debug on Bard) are calibrated the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.utils.hashing import stable_hash
from repro.utils.validation import require, require_in


#: canonical model identifiers
MODELS = ("gpt-4", "gpt-3", "text-davinci-003", "bard")
APPLICATIONS = ("traffic_analysis", "malt")
BACKENDS = ("strawman", "sql", "pandas", "networkx")
COMPLEXITIES = ("easy", "medium", "hard")

ReliabilityKey = Tuple[str, str, str, str]  # (model, application, backend, complexity)

#: answering backends of the temporal suite.  "direct" is the strawman-like
#: path (the model answers straight from the serialized timeline), while
#: "frames" and "networkx" run the full codegen pipeline over the timeline.
TEMPORAL_BACKENDS = ("direct", "frames", "networkx")

#: which static reliability column calibrates each temporal backend: direct
#: answering degrades like the strawman (the paper's argument against it),
#: and the codegen backends inherit their representation's column.
TEMPORAL_BACKEND_COLUMNS = {
    "direct": "strawman",
    "frames": "pandas",
    "networkx": "networkx",
}


# ---------------------------------------------------------------------------
# paper Table 3 — traffic analysis, per complexity (8 queries per bucket)
# paper Table 4 — MALT, per complexity (3 queries per bucket)
# ---------------------------------------------------------------------------
_TRAFFIC = {
    ("gpt-4", "strawman"): (0.50, 0.38, 0.00),
    ("gpt-3", "strawman"): (0.38, 0.13, 0.00),
    ("text-davinci-003", "strawman"): (0.38, 0.25, 0.00),
    ("bard", "strawman"): (0.50, 0.25, 0.00),
    ("gpt-4", "sql"): (0.75, 0.50, 0.25),
    ("gpt-3", "sql"): (0.25, 0.13, 0.00),
    ("text-davinci-003", "sql"): (0.63, 0.25, 0.00),
    ("bard", "sql"): (0.38, 0.25, 0.00),
    ("gpt-4", "pandas"): (0.50, 0.50, 0.13),
    ("gpt-3", "pandas"): (0.50, 0.25, 0.00),
    ("text-davinci-003", "pandas"): (0.63, 0.25, 0.00),
    ("bard", "pandas"): (0.50, 0.13, 0.13),
    ("gpt-4", "networkx"): (1.00, 1.00, 0.63),
    ("gpt-3", "networkx"): (1.00, 0.63, 0.25),
    ("text-davinci-003", "networkx"): (1.00, 0.75, 0.13),
    ("bard", "networkx"): (0.88, 0.50, 0.38),
}

_MALT = {
    ("gpt-4", "sql"): (0.33, 0.00, 0.00),
    ("gpt-3", "sql"): (0.33, 0.00, 0.00),
    ("text-davinci-003", "sql"): (0.33, 0.00, 0.00),
    ("bard", "sql"): (0.33, 0.00, 0.00),
    ("gpt-4", "pandas"): (0.67, 0.67, 0.33),
    ("gpt-3", "pandas"): (0.67, 0.67, 0.00),
    ("text-davinci-003", "pandas"): (0.33, 0.33, 0.00),
    ("bard", "pandas"): (0.67, 0.33, 0.00),
    ("gpt-4", "networkx"): (1.00, 1.00, 0.33),
    ("gpt-3", "networkx"): (0.67, 0.67, 0.00),
    ("text-davinci-003", "networkx"): (0.67, 0.67, 0.33),
    ("bard", "networkx"): (0.67, 0.33, 0.33),
}


# ---------------------------------------------------------------------------
# paper Table 5 — error type distribution of failed NetworkX generations
# ---------------------------------------------------------------------------
ERROR_TYPE_WEIGHTS = {
    "traffic_analysis": {
        "syntax_error": 9,
        "imaginary_graph_attribute": 9,
        "imaginary_function_argument": 3,
        "argument_error": 7,
        "operation_error": 4,
        "wrong_calculation_logic": 2,
        "graphs_not_identical": 1,
    },
    "malt": {
        "syntax_error": 0,
        "imaginary_graph_attribute": 1,
        "imaginary_function_argument": 2,
        "argument_error": 8,
        "operation_error": 2,
        "wrong_calculation_logic": 3,
        "graphs_not_identical": 1,
    },
}


ReliabilityTable = Dict[Tuple[str, str], Tuple[float, float, float]]


def _table_to_rows(table: ReliabilityTable) -> list:
    """Flatten a reliability table into sorted JSON-friendly rows."""
    return [[model, backend, list(fractions)]
            for (model, backend), fractions in sorted(table.items())]


def _rows_to_table(rows: list) -> ReliabilityTable:
    return {(model, backend): tuple(fractions) for model, backend, fractions in rows}


@dataclass(frozen=True)
class TechniqueCalibration:
    """Behaviour of the complementary synthesis techniques (paper Table 6)."""

    #: fraction of previously failing queries that produce a correct sample
    #: within k=5 attempts (Bard on MALT recovered 3/3)
    pass_at_5_recovery: float = 1.0
    #: fraction of previously failing queries fixed by one self-debug round
    #: (calibrated so the overall accuracy after one round lands near the
    #: paper's 0.67 on the MALT/NetworkX case study)
    self_debug_fix_rate: float = 0.50
    #: latest attempt index (1-based) at which a recovering query succeeds
    max_recovery_attempt: int = 5


class CalibrationTable:
    """Lookup and decision logic for the simulated models' reliability."""

    def __init__(self,
                 traffic: Optional[Dict[Tuple[str, str], Tuple[float, float, float]]] = None,
                 malt: Optional[Dict[Tuple[str, str], Tuple[float, float, float]]] = None,
                 technique: Optional[TechniqueCalibration] = None) -> None:
        self._tables = {
            "traffic_analysis": dict(traffic if traffic is not None else _TRAFFIC),
            "malt": dict(malt if malt is not None else _MALT),
        }
        self.technique = technique or TechniqueCalibration()

    # ------------------------------------------------------------------
    # serialization (so calibrated sweeps can cross process boundaries in
    # the execution fabric and participate in content-keyed result caching)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-friendly dump of the full calibration."""
        return {
            "traffic": _table_to_rows(self._tables["traffic_analysis"]),
            "malt": _table_to_rows(self._tables["malt"]),
            "technique": {
                "pass_at_5_recovery": self.technique.pass_at_5_recovery,
                "self_debug_fix_rate": self.technique.self_debug_fix_rate,
                "max_recovery_attempt": self.technique.max_recovery_attempt,
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CalibrationTable":
        return cls(
            traffic=_rows_to_table(payload["traffic"]),
            malt=_rows_to_table(payload["malt"]),
            technique=TechniqueCalibration(**payload["technique"]),
        )

    # ------------------------------------------------------------------
    def reliability(self, model: str, application: str, backend: str,
                    complexity: str) -> float:
        """The calibrated pass fraction for one table cell."""
        require_in(model, MODELS, "model")
        require_in(application, APPLICATIONS, "application")
        require_in(backend, BACKENDS, "backend")
        require_in(complexity, COMPLEXITIES, "complexity")
        if backend == "strawman":
            if application != "traffic_analysis":
                # The paper only evaluates the strawman on traffic analysis
                # (MALT graphs never fit in the prompt window).
                return 0.0
            table = self._tables[application]
        else:
            table = self._tables[application]
        key = (model, backend)
        if key not in table:
            require(backend == "strawman", f"no calibration for {key!r} in {application}")
            key = (model, "strawman")
        fractions = table[key]
        return fractions[COMPLEXITIES.index(complexity)]

    def passing_count(self, model: str, application: str, backend: str,
                      complexity: str, bucket_size: int) -> int:
        """Number of queries in a complexity bucket the model answers correctly."""
        fraction = self.reliability(model, application, backend, complexity)
        return int(round(fraction * bucket_size))

    def passes(self, model: str, application: str, backend: str,
               complexity: str, difficulty_rank: int, bucket_size: int) -> bool:
        """Whether the query at *difficulty_rank* (0 = easiest) passes.

        Queries are ranked by difficulty inside their complexity bucket; the
        model answers the ``passing_count`` easiest ones correctly.  This
        reproduces the paper's per-cell accuracy exactly and keeps the set of
        failing queries consistent across models, matching the observation
        that harder queries fail across the board.
        """
        return difficulty_rank < self.passing_count(model, application, backend,
                                                    complexity, bucket_size)

    # ------------------------------------------------------------------
    # temporal suite calibration
    # ------------------------------------------------------------------
    def temporal_passes(self, model: str, backend: str, complexity: str,
                        difficulty_rank: int, bucket_size: int) -> bool:
        """Whether a temporal query passes on one answering backend.

        Temporal cells calibrate against the traffic-analysis table: the
        ``direct`` path uses the strawman column (answering from serialized
        data degrades the same way), and each codegen backend uses its
        representation's column — so the temporal suite reproduces the
        paper's codegen-beats-direct ordering.
        """
        require_in(backend, TEMPORAL_BACKENDS, "temporal backend")
        return self.passes(model, "traffic_analysis",
                           TEMPORAL_BACKEND_COLUMNS[backend], complexity,
                           difficulty_rank, bucket_size)

    def temporal_fault_type_for(self, query_id: str, model: str,
                                backend: str) -> str:
        """Deterministically draw a codegen-temporal fault type.

        Mirrors the observed failure mix of timeline reasoning: models most
        often anchor at the wrong snapshot, sometimes reason over an
        off-by-one delta window, and occasionally emit code that crashes
        outright.  The draw is stable per (query, model, backend) so serial
        and parallel sweeps agree.
        """
        weights = (("misanchored_snapshot", 3), ("off_by_one_window", 2),
                   ("runtime_crash", 1))
        total = sum(weight for _, weight in weights)
        draw = stable_hash("temporal-fault", query_id, model, backend) % total
        cumulative = 0
        for name, weight in weights:
            cumulative += weight
            if draw < cumulative:
                return name
        return weights[-1][0]

    # ------------------------------------------------------------------
    def fault_type_for(self, application: str, query_id: str, model: str,
                       backend: str) -> str:
        """Deterministically draw a fault type following the Table-5 mix."""
        weights = ERROR_TYPE_WEIGHTS.get(application, ERROR_TYPE_WEIGHTS["traffic_analysis"])
        entries = [(name, weight) for name, weight in weights.items() if weight > 0]
        total = sum(weight for _, weight in entries)
        draw = stable_hash("fault", application, query_id, model, backend) % total
        cumulative = 0
        for name, weight in entries:
            cumulative += weight
            if draw < cumulative:
                return name
        return entries[-1][0]

    # ------------------------------------------------------------------
    def recovery_attempt(self, query_id: str, model: str, backend: str) -> Optional[int]:
        """The 1-based attempt at which a failing query produces correct code.

        Only non-deterministic models (Bard) recover through re-sampling;
        the attempt index is deterministic per query so pass@k results are
        reproducible.  Returns ``None`` when the query never recovers within
        ``max_recovery_attempt`` samples.
        """
        recovers = (stable_hash("recovery", query_id, model, backend) % 100
                    < int(self.technique.pass_at_5_recovery * 100))
        if not recovers:
            return None
        span = self.technique.max_recovery_attempt - 1
        return 2 + stable_hash("recovery-attempt", query_id, model, backend) % span

    def self_debug_fixes(self, query_id: str, model: str, backend: str,
                         fault_type: str) -> bool:
        """Whether one self-debug round (error fed back) fixes the failure.

        Failures with an explicit runtime signal (syntax errors, imaginary
        attributes, bad arguments) are the ones self-debug tends to fix; the
        overall fix rate is calibrated to the paper's 67%.
        """
        easily_fixable = fault_type in (
            "syntax_error", "imaginary_graph_attribute", "imaginary_function_argument")
        threshold = self.technique.self_debug_fix_rate
        if easily_fixable:
            threshold = min(1.0, threshold + 0.15)
        draw = (stable_hash("self-debug", query_id, model, backend, fault_type) % 1000) / 1000.0
        return draw < threshold


#: the calibration used throughout the benchmark unless a test overrides it
DEFAULT_CALIBRATION = CalibrationTable()
