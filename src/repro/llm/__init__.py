"""Simulated large language models.

The paper evaluates four hosted LLMs (GPT-4, GPT-3, text-davinci-003 and
Google Bard).  Those APIs are unavailable offline, so this package provides
*simulated* providers that preserve everything the rest of the system
depends on:

* the request/response interface, including prompt-token accounting and the
  per-model context-window limit (which is what the strawman baseline
  overruns on moderately sized graphs);
* per-model pricing so the cost analysis of Figure 4 can be reproduced with
  real token counts;
* a calibrated *reliability model* — per model, per backend, per task
  complexity — taken from the paper's measured accuracy tables, which decides
  whether a simulated response contains correct code (produced by the
  rule-based synthesizer in :mod:`repro.synthesis`) or faulty code (produced
  by the fault injector, following the error taxonomy of Table 5);
* sampling behaviour: the OpenAI-style models are deterministic at
  temperature 0, while the simulated Bard varies across repeated calls the
  way the paper handled it (five samples per query).

See DESIGN.md §2 for why this substitution preserves the reproduction
targets.
"""

from repro.llm.base import (
    LlmProvider,
    LlmRequest,
    LlmResponse,
    TokenLimitExceeded,
)
from repro.llm.tokenizer import ApproximateTokenizer, count_tokens
from repro.llm.pricing import PricingTable, ModelPricing, DEFAULT_PRICING
from repro.llm.calibration import (
    CalibrationTable,
    ReliabilityKey,
    DEFAULT_CALIBRATION,
)
from repro.llm.faults import FaultInjector, FaultType
from repro.llm.providers import (
    SimulatedLlmProvider,
    SimulatedGpt4,
    SimulatedGpt3,
    SimulatedTextDavinci003,
    SimulatedBard,
)
from repro.llm.catalog import available_models, create_provider, DEFAULT_MODELS

__all__ = [
    "LlmProvider",
    "LlmRequest",
    "LlmResponse",
    "TokenLimitExceeded",
    "ApproximateTokenizer",
    "count_tokens",
    "PricingTable",
    "ModelPricing",
    "DEFAULT_PRICING",
    "CalibrationTable",
    "ReliabilityKey",
    "DEFAULT_CALIBRATION",
    "FaultInjector",
    "FaultType",
    "SimulatedLlmProvider",
    "SimulatedGpt4",
    "SimulatedGpt3",
    "SimulatedTextDavinci003",
    "SimulatedBard",
    "available_models",
    "create_provider",
    "DEFAULT_MODELS",
]
