"""``repro loadtest`` — a Zipf-mix load generator for the serve daemon.

Real query traffic is heavy-tailed: a few questions are asked constantly,
a long tail rarely.  The generator models that with a **Zipf-weighted mix**
over the temporal query corpus — query popularity ``∝ 1/rank^s`` — drawn by
a seeded RNG, so the same (seed, duration, qps) always replays the same
request schedule against any server.

Replay is **open-loop**: request *i* fires at ``start + i/qps`` whether or
not earlier requests have completed, which is what makes the measured
latency honest under saturation (closed-loop generators slow down with the
server and hide queueing delay).

The report combines both measurement sides:

* client-side: exact nearest-rank p50/p95/p99 over per-request round-trip
  times, plus achieved throughput;
* server-side: the ``span.serve.request.seconds`` histogram scraped from
  ``GET /metrics`` — the PR-6 measurement substrate, with its log-bucket
  percentile estimates.

``benchmarks/check_loadtest_regression.py`` gates CI on this report
against the committed ``benchmarks/results/loadtest_baseline.json``.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.benchmark.queries import temporal_queries_for, temporal_scenario_names
from repro.serve.http import request_json
from repro.serve.service import ServerThread, ServiceConfig
from repro.utils.validation import require

#: the serve-side histogram the report scrapes
SERVER_SPAN_METRIC = "span.serve.request.seconds"


@dataclass
class LoadTestConfig:
    """Knobs of one load-test run."""

    #: target server; ``None`` host means spawn an in-process server
    host: Optional[str] = None
    port: int = 8642
    duration_s: float = 10.0
    qps: float = 5.0
    #: Zipf exponent ``s``: popularity of the rank-``r`` query ``∝ 1/r^s``
    zipf_exponent: float = 1.1
    seed: int = 7
    #: restrict the mix to these scenarios (default: the temporal corpus)
    scenarios: Optional[List[str]] = None
    model: str = "gpt-4"
    backend: str = "direct"
    timeout_s: float = 30.0
    #: config for the spawned server (spawn mode only)
    service: ServiceConfig = field(default_factory=lambda: ServiceConfig(port=0))

    def validate(self) -> None:
        require(self.duration_s > 0, "duration_s must be positive")
        require(self.qps > 0, "qps must be positive")
        require(self.zipf_exponent > 0, "zipf_exponent must be positive")

    def request_count(self) -> int:
        return max(1, math.ceil(self.duration_s * self.qps))


# ---------------------------------------------------------------------------
# the query mix
# ---------------------------------------------------------------------------
def zipf_weights(count: int, exponent: float) -> List[float]:
    """Unnormalized Zipf weights for ranks ``1..count``."""
    return [1.0 / (rank ** exponent) for rank in range(1, count + 1)]


def build_query_mix(config: LoadTestConfig) -> List[Dict[str, Any]]:
    """The deterministic request schedule: one JSON body per request.

    Candidates are the temporal queries of the selected scenarios in corpus
    order; rank follows that order, so the head of the Zipf distribution is
    stable across runs and machines.  The draw uses a dedicated seeded RNG
    — same config, same schedule, byte for byte.
    """
    config.validate()
    scenarios = list(config.scenarios or temporal_scenario_names())
    candidates: List[Tuple[str, str]] = []
    for scenario in scenarios:
        for query in temporal_queries_for(scenario):
            candidates.append((scenario, query.query_id))
    require(bool(candidates),
            f"no temporal queries found for scenarios {scenarios!r}")
    rng = random.Random(config.seed)
    weights = zipf_weights(len(candidates), config.zipf_exponent)
    drawn = rng.choices(range(len(candidates)), weights=weights,
                        k=config.request_count())
    return [{"scenario": candidates[index][0],
             "query": candidates[index][1],
             "model": config.model,
             "backend": config.backend} for index in drawn]


# ---------------------------------------------------------------------------
# the report
# ---------------------------------------------------------------------------
def percentile(sorted_samples: List[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile over an ascending sample list."""
    if not sorted_samples:
        return None
    rank = max(1, math.ceil(fraction * len(sorted_samples)))
    return sorted_samples[rank - 1]


@dataclass
class LoadTestReport:
    """The outcome of one load-test run (see :meth:`to_document`)."""

    target_qps: float
    duration_s: float
    sent: int
    completed: int
    failed: int
    wall_s: float
    latencies_s: List[float] = field(default_factory=list, repr=False)
    status_counts: Dict[str, int] = field(default_factory=dict)
    #: the server's span histogram snapshot, scraped after the run
    server_histogram: Optional[Dict[str, Any]] = None

    @property
    def throughput_qps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def latency_summary(self) -> Dict[str, Optional[float]]:
        ordered = sorted(self.latencies_s)
        return {
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": percentile(ordered, 0.99),
            "min": ordered[0] if ordered else None,
            "max": ordered[-1] if ordered else None,
            "mean": sum(ordered) / len(ordered) if ordered else None,
        }

    def to_document(self) -> Dict[str, Any]:
        """JSON-safe report — the schema the regression gate consumes."""
        def _round(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value, 6)

        return {
            "target_qps": self.target_qps,
            "duration_s": self.duration_s,
            "sent": self.sent,
            "completed": self.completed,
            "failed": self.failed,
            "wall_s": _round(self.wall_s),
            "throughput_qps": _round(self.throughput_qps),
            "latency_s": {name: _round(value)
                          for name, value in self.latency_summary().items()},
            "status_counts": dict(sorted(self.status_counts.items())),
            "server_histogram": self.server_histogram,
        }

    def render(self) -> str:
        summary = self.latency_summary()

        def _ms(value: Optional[float]) -> str:
            return "-" if value is None else f"{value * 1000:.1f}ms"

        lines = [
            f"load test: {self.completed}/{self.sent} ok, {self.failed} failed, "
            f"wall {self.wall_s:.2f}s",
            f"throughput: {self.throughput_qps:.2f} qps "
            f"(target {self.target_qps:g} qps)",
            f"latency:    p50 {_ms(summary['p50'])}   p95 {_ms(summary['p95'])}   "
            f"p99 {_ms(summary['p99'])}   max {_ms(summary['max'])}",
        ]
        if self.server_histogram:
            lines.append(
                f"server:     {SERVER_SPAN_METRIC} count "
                f"{self.server_histogram.get('count')} "
                f"p95 {_ms(self.server_histogram.get('p95'))} "
                f"p99 {_ms(self.server_histogram.get('p99'))}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the open-loop driver
# ---------------------------------------------------------------------------
async def _fire(host: str, port: int, body: Dict[str, Any], delay_s: float,
                timeout_s: float) -> Tuple[str, float]:
    """One scheduled request; returns ``(status label, round-trip seconds)``."""
    if delay_s > 0:
        await asyncio.sleep(delay_s)
    started = time.perf_counter()
    try:
        status, _document = await request_json(
            host, port, "POST", "/query", body, timeout=timeout_s)
        label = str(status)
    except (asyncio.TimeoutError, ConnectionError, OSError) as error:
        label = f"error:{type(error).__name__}"
    return label, time.perf_counter() - started


async def drive_loadtest(config: LoadTestConfig, host: str,
                         port: int) -> LoadTestReport:
    """Replay the mix open-loop against a live server and build the report."""
    mix = build_query_mix(config)
    interval = 1.0 / config.qps
    started = time.perf_counter()
    outcomes = await asyncio.gather(*[
        _fire(host, port, body, index * interval, config.timeout_s)
        for index, body in enumerate(mix)])
    wall_s = time.perf_counter() - started

    status_counts: Dict[str, int] = {}
    latencies: List[float] = []
    completed = 0
    for label, latency in outcomes:
        status_counts[label] = status_counts.get(label, 0) + 1
        if label == "200":
            completed += 1
            latencies.append(latency)
    report = LoadTestReport(
        target_qps=config.qps, duration_s=config.duration_s, sent=len(mix),
        completed=completed, failed=len(mix) - completed, wall_s=wall_s,
        latencies_s=latencies, status_counts=status_counts)

    try:
        status, metrics = await request_json(host, port, "GET", "/metrics",
                                             timeout=config.timeout_s)
        if status == 200:
            report.server_histogram = metrics.get("histograms", {}).get(
                SERVER_SPAN_METRIC)
    except (asyncio.TimeoutError, ConnectionError, OSError):
        # the report is still useful without the server-side view
        report.server_histogram = None
    return report


def run_loadtest(config: LoadTestConfig) -> LoadTestReport:
    """Run one load test; spawns an in-process server when no host is given."""
    config.validate()
    if config.host is not None:
        return asyncio.run(drive_loadtest(config, config.host, config.port))
    with ServerThread(config.service) as server:
        return asyncio.run(drive_loadtest(config, server.host, server.port))
