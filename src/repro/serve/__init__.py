"""``repro.serve`` — the long-running query-answering service.

The ROADMAP north star turned daemon: a stdlib-only (``asyncio``) HTTP
service answering natural-language and temporal queries against named
scenarios for many clients at once, routing every request through the same
:mod:`repro.api` facade the batch CLI uses — so a served answer and a batch
answer for the same (scenario, query, model, backend) are identical by
construction.

:class:`ReproService` is the server, :class:`ServerThread` spawns it
in-process (tests, ``repro loadtest --spawn``), and :mod:`repro.serve.
loadtest` is the Zipf-mix load generator with the p50/p95/p99 + throughput
report that CI gates on.
"""

from repro.serve.http import HttpProtocolError, HttpRequest, request_json
from repro.serve.service import ReproService, ServerThread, ServiceConfig

__all__ = [
    "HttpProtocolError",
    "HttpRequest",
    "ReproService",
    "ServerThread",
    "ServiceConfig",
    "request_json",
]
