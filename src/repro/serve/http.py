"""Minimal HTTP/1.1 plumbing for :mod:`repro.serve` — stdlib only.

The service speaks just enough HTTP for its JSON API: request-line +
headers + optional ``Content-Length`` body on the way in, a rendered
status/headers/JSON-body response on the way out, one request per
connection (``Connection: close``).  Keeping the wire layer this small —
``asyncio`` streams and nothing else — is what lets the daemon run with no
dependencies beyond the Python the repo already requires.

:func:`request_json` is the matching client: it drives one request/response
round trip over a fresh connection and is what the load generator and the
concurrency tests use to storm the server.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: sanity bound on request bodies (1 MiB): the API's JSON requests are tiny,
#: so anything larger is a client bug, not a workload
MAX_BODY_BYTES = 1 << 20

#: sanity bound on the request line + headers block
MAX_HEADER_BYTES = 64 << 10

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpProtocolError(Exception):
    """A malformed or oversized request; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed inbound request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON (400 on syntax errors or an empty body)."""
        if not self.body:
            raise HttpProtocolError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpProtocolError(400, f"invalid JSON body: {error}") from error


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request from *reader*; ``None`` when the peer closed early."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise HttpProtocolError(400, "truncated request head") from error
    except asyncio.LimitOverrunError as error:
        raise HttpProtocolError(413, "request head too large") from error
    if len(head) > MAX_HEADER_BYTES:
        raise HttpProtocolError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as error:
            raise HttpProtocolError(
                400, f"invalid Content-Length: {length_header!r}") from error
        if length < 0:
            raise HttpProtocolError(400, f"invalid Content-Length: {length}")
        if length > MAX_BODY_BYTES:
            raise HttpProtocolError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as error:
                raise HttpProtocolError(400, "truncated request body") from error
    # strip any query string: the API routes on the bare path
    path = target.split("?", 1)[0] or "/"
    return HttpRequest(method=method.upper(), path=path, headers=headers,
                       body=body)


def render_response(status: int, document: Any) -> bytes:
    """Render *document* as a JSON response (sorted keys: stable wire bytes)."""
    body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
    reason = STATUS_REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def error_document(status: int, message: str) -> Dict[str, Any]:
    return {"error": {"status": status, "message": message}}


# ---------------------------------------------------------------------------
# the matching async client
# ---------------------------------------------------------------------------
async def request_json(host: str, port: int, method: str, path: str,
                       payload: Any = None,
                       timeout: float = 30.0) -> Tuple[int, Any]:
    """One client round trip; returns ``(status, parsed JSON document)``."""
    body = b""
    if payload is not None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (f"{method.upper()} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    try:
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone: fine
            pass
    header_block, _, payload_bytes = raw.partition(b"\r\n\r\n")
    status_line = header_block.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split(" ")[1])
    document = json.loads(payload_bytes.decode("utf-8")) if payload_bytes else None
    return status, document
