"""The ``repro serve`` daemon: concurrent query answering over HTTP.

The service is a thin concurrency shell around :mod:`repro.api` — every
answer a client receives is computed by the same facade call (and the same
benchmark workers) the batch CLI uses, so serving changes *when* answers
are computed, never *what* they are.

Architecture: an :mod:`asyncio` accept loop parses requests and routes
them; answer work (synthesis → sandbox → evaluate) is synchronous and
CPU/latency-mixed, so it is pushed onto a bounded thread pool while the
event loop keeps accepting clients.  The fabric policy the answer threads
dispatch under keeps worker contexts alive (``keep_contexts=True``):
replayed scenarios, rebuilt applications, and golden selectors are memoized
once per process and shared — concurrently and safely, because
:func:`repro.exec.workers.worker_context` is thread-safe and every
memoized value is treated as immutable.

Endpoints (all JSON):

* ``GET /healthz``   — liveness + uptime + request counters;
* ``GET /scenarios`` — the servable scenario corpus with its query ids;
* ``GET /metrics``   — the full metrics snapshot (the ``span.serve.request.
  seconds`` histogram is what ``repro loadtest`` reads its server-side
  percentiles from);
* ``POST /query``    — answer one ``{"scenario", "query", ...}`` request or
  a ``{"requests": [...]}`` batch.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro import __version__
from repro.api import DEFAULT_MODEL, QuerySpec, answer_queries, list_scenarios
from repro.benchmark.runner import BenchmarkConfig
from repro.exec import ExecutorPolicy, ResultCache
from repro.obs import metrics_document, span
from repro.obs.metrics import default_registry
from repro.serve.http import (
    HttpProtocolError,
    HttpRequest,
    error_document,
    read_request,
    render_response,
)
from repro.utils.validation import ValidationError, require

logger = logging.getLogger(__name__)

#: method routing table; a known path with the wrong method answers 405
ROUTES: Dict[str, str] = {
    "/healthz": "GET",
    "/scenarios": "GET",
    "/metrics": "GET",
    "/query": "POST",
}


@dataclass
class ServiceConfig:
    """Knobs of one service instance."""

    host: str = "127.0.0.1"
    #: 0 lets the OS pick a free port (tests); the bound port is reported
    #: by :attr:`ReproService.port` once started
    port: int = 8642
    #: default model when a request names none
    model: str = DEFAULT_MODEL
    #: concurrent answer threads (clients beyond this queue, not fail)
    workers: int = 4
    #: fabric executor mode for batch requests (serial|threads|processes|auto)
    executor: str = "auto"
    #: fabric worker count inside one batch request
    jobs: int = 2
    #: result cache threaded into the fabric policy (None = no caching)
    cache: Union[None, str, ResultCache] = None
    benchmark: BenchmarkConfig = field(default_factory=BenchmarkConfig)

    def policy(self) -> ExecutorPolicy:
        """The fabric policy answer threads dispatch under.

        ``keep_contexts=True`` is the serving difference: batch runs drop
        their memoized scenario state after each sweep, a daemon reuses it
        across requests — that reuse is the service's warm path.
        """
        return ExecutorPolicy(mode=self.executor, jobs=self.jobs,
                              cache=self.cache, keep_contexts=True)


class ReproService:
    """The asyncio HTTP service; one instance per process."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        require(self.config.workers >= 1,
                f"workers must be at least 1, got {self.config.workers}")
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._started_monotonic: Optional[float] = None
        self._policy = self.config.policy()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The actually-bound port (meaningful once started)."""
        require(self._server is not None, "service is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="serve-answer")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        self._started_monotonic = time.monotonic()
        logger.info("repro serve listening on %s:%d (workers=%d, executor=%s)",
                    self.config.host, self.port, self.config.workers,
                    self.config.executor)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def serve_forever(self) -> None:
        require(self._server is not None, "call start() before serve_forever()")
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpProtocolError as error:
                writer.write(render_response(
                    error.status, error_document(error.status, str(error))))
                await writer.drain()
                return
            if request is None:
                return
            status, document = await self._dispatch(request)
            writer.write(render_response(status, document))
            await writer.drain()
        except (ConnectionError, OSError):
            # the peer vanished mid-response; nothing to answer
            logger.debug("client connection dropped", exc_info=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest):
        registry = default_registry()
        registry.counter("serve.requests").inc()
        with span("serve.request", attrs={"method": request.method,
                                          "path": request.path}):
            try:
                status, document = await self._route(request)
            except HttpProtocolError as error:
                status, document = error.status, error_document(
                    error.status, str(error))
            except ValidationError as error:
                status, document = 400, error_document(400, str(error))
            except Exception as error:  # noqa: BLE001 - a request must never kill the loop
                logger.exception("unhandled error answering %s %s",
                                 request.method, request.path)
                status, document = 500, error_document(
                    500, f"{type(error).__name__}: {error}")
        if status >= 400:
            registry.counter("serve.errors").inc()
        return status, document

    async def _route(self, request: HttpRequest):
        allowed = ROUTES.get(request.path)
        if allowed is None:
            return 404, error_document(
                404, f"no such endpoint: {request.path} "
                     f"(endpoints: {', '.join(sorted(ROUTES))})")
        if request.method != allowed:
            return 405, error_document(
                405, f"{request.path} only supports {allowed}")
        if request.path == "/healthz":
            return 200, self._health_document()
        if request.path == "/scenarios":
            return 200, {"scenarios": list_scenarios()}
        if request.path == "/metrics":
            return 200, metrics_document()
        return await self._handle_query(request)

    # ------------------------------------------------------------------
    def _health_document(self) -> Dict[str, Any]:
        registry = default_registry()
        uptime = (time.monotonic() - self._started_monotonic
                  if self._started_monotonic is not None else 0.0)
        return {
            "status": "ok",
            "version": __version__,
            "uptime_s": round(uptime, 3),
            "requests": registry.counter("serve.requests").value,
            "errors": registry.counter("serve.errors").value,
            "answers": registry.counter("serve.answers").value,
            "workers": self.config.workers,
            "executor": self.config.executor,
        }

    def _parse_query_specs(self, document: Any) -> List[QuerySpec]:
        if not isinstance(document, dict):
            raise HttpProtocolError(400, "request body must be a JSON object")
        if "requests" in document:
            items = document["requests"]
            if not isinstance(items, list) or not items:
                raise HttpProtocolError(
                    400, "'requests' must be a non-empty list of query objects")
        else:
            items = [document]
        specs: List[QuerySpec] = []
        for item in items:
            if not isinstance(item, dict) or "scenario" not in item \
                    or "query" not in item:
                raise HttpProtocolError(
                    400, "each query needs 'scenario' and 'query' fields "
                         "(optional: 'model', 'backend')")
            unknown = set(item) - {"scenario", "query", "model", "backend"}
            if unknown:
                raise HttpProtocolError(
                    400, f"unknown query fields: {', '.join(sorted(unknown))}")
            specs.append(QuerySpec(
                scenario=item["scenario"], query=item["query"],
                model=item.get("model", self.config.model),
                backend=item.get("backend")))
        return specs

    def _answer_documents(self, specs: List[QuerySpec]) -> List[Dict[str, Any]]:
        """Answer a batch on an answer thread (synchronous, blocking)."""
        answers = answer_queries(specs, policy=self._policy,
                                 config=self.config.benchmark)
        default_registry().counter("serve.answers").inc(len(answers))
        return [answer.to_document() for answer in answers]

    async def _handle_query(self, request: HttpRequest):
        document = request.json()
        specs = self._parse_query_specs(document)
        batch = isinstance(document, dict) and "requests" in document
        loop = asyncio.get_running_loop()
        documents = await loop.run_in_executor(
            self._pool, self._answer_documents, specs)
        if batch:
            return 200, {"answers": documents}
        return 200, documents[0]


# ---------------------------------------------------------------------------
# in-process spawning (tests, `repro loadtest --spawn`)
# ---------------------------------------------------------------------------
class ServerThread:
    """Run a :class:`ReproService` on a background thread with its own loop.

    The test suite and the load generator's ``--spawn`` mode need a live
    server inside the current process; this wraps the start/stop dance so
    callers get a bound port synchronously and a clean shutdown.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.service = ReproService(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.service.start())
        except BaseException as error:  # noqa: BLE001 - surfaced to start()
            self._failure = error
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.service.stop())
            self._loop.close()

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, name="repro-serve",
                                        daemon=True)
        self._thread.start()
        require(self._ready.wait(timeout), "server failed to start in time")
        if self._failure is not None:
            raise self._failure
        return self

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def host(self) -> str:
        return self.service.config.host

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
