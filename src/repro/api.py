"""``repro.api`` — the stable importable facade of the reproduction.

One import surface for everything the batch CLI and the long-running
service (:mod:`repro.serve`) both need:

* :func:`load_scenario` / :func:`list_scenarios` — the named scenario corpus;
* :func:`answer_query` / :func:`answer_temporal_query` — answer one NL query
  against a scenario through the full pipeline (synthesis → sandbox →
  evaluate), returning a :class:`QueryAnswer`;
* :func:`answer_queries` — the batch form: many (scenario, query, model,
  backend) cells as **one** fabric task set, dispatched under an
  :class:`~repro.exec.ExecutorPolicy`;
* :func:`ask` — the freeform path (any NL text against a generated
  application, no golden/evaluation);
* :func:`run_tasks` — re-exported fabric entry point.

The CLI subcommands and the HTTP handlers are thin argument parsers over
these functions, which is what makes the library/daemon duality real: an
answer computed here is *the* answer — the service, the CLI, and an
importing notebook cannot disagree, because they share this code path and
its worker-level memoization.

Every answer cell runs through the exact workers the benchmark sweeps use
(:func:`repro.benchmark.tasks.run_benchmark_cell` /
:func:`run_temporal_cell`), so facade answers are byte-identical to the
batch benchmark's verdicts for the same (scenario, query, model, backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.benchmark.evaluator import EvaluationRecord, normalize_value
from repro.benchmark.queries import (
    BenchmarkQuery,
    TemporalQuery,
    queries_for,
    temporal_queries_for,
)
from repro.benchmark.runner import BenchmarkConfig
from repro.benchmark.tasks import run_benchmark_cell, run_temporal_cell
from repro.exec import (
    ExecutorPolicy,
    PROFILE_LATENCY,
    Task,
    TaskSet,
    run_tasks,
    worker_context,
)
from repro.utils.hashing import stable_hash
from repro.utils.validation import ValidationError, require, require_in

__all__ = [
    "API_CELL_WORKER",
    "QueryAnswer",
    "QuerySpec",
    "answer_queries",
    "answer_query",
    "answer_temporal_query",
    "ask",
    "list_scenarios",
    "load_scenario",
    "resolve_query",
    "run_tasks",
]

#: dotted-path reference resolved inside worker processes/threads
API_CELL_WORKER = "repro.api:run_api_cell"

#: answering paths for static scenario queries (full codegen backends; the
#: strawman needs the shrunken traffic graph, which scenarios don't model)
STATIC_BACKENDS = ("sql", "pandas", "networkx")

DEFAULT_MODEL = "gpt-4"
DEFAULT_STATIC_BACKEND = "networkx"
DEFAULT_TEMPORAL_BACKEND = "direct"


# ---------------------------------------------------------------------------
# scenario corpus
# ---------------------------------------------------------------------------
def load_scenario(scenario):
    """Resolve a scenario name (or pass through a spec) to a validated
    :class:`~repro.scenarios.spec.ScenarioSpec`."""
    from repro.scenarios.overlay import resolve_spec

    return resolve_spec(scenario)


def _static_corpus_name(spec) -> str:
    return "malt" if spec.family == "malt" else "traffic_analysis"


def scenario_document(spec) -> Dict[str, Any]:
    """JSON-safe description of one scenario and the queries it can answer."""
    spec = load_scenario(spec)
    return {
        "name": spec.name,
        "family": spec.family,
        "description": spec.description,
        "events": len(spec.events),
        "queries": {
            "static": [query.query_id
                       for query in queries_for(_static_corpus_name(spec))],
            "temporal": [query.query_id
                         for query in temporal_queries_for(spec.name)],
        },
    }


def list_scenarios() -> List[Dict[str, Any]]:
    """Every registered scenario as a :func:`scenario_document`."""
    from repro.scenarios.registry import scenario_names

    return [scenario_document(name) for name in scenario_names()]


# ---------------------------------------------------------------------------
# query resolution
# ---------------------------------------------------------------------------
def _normalize_text(text: str) -> str:
    return " ".join(text.casefold().replace("?", " ").replace("!", " ")
                    .replace(".", " ").split())


def resolve_query(spec, query: str) -> Union[BenchmarkQuery, TemporalQuery]:
    """Resolve *query* — a corpus id or natural-language text — for a scenario.

    Ids (``ta-m5``, ``tq-3``) match exactly; free text matches the corpus
    query whose normalized wording (case/punctuation-insensitive) equals it.
    The searched corpus is the scenario's static family corpus plus the
    temporal queries targeting the scenario, so one resolver serves both
    answering paths.
    """
    spec = load_scenario(spec)
    candidates: List[Union[BenchmarkQuery, TemporalQuery]] = list(
        queries_for(_static_corpus_name(spec))) + list(
        temporal_queries_for(spec.name))
    for candidate in candidates:
        if candidate.query_id == query:
            return candidate
    wanted = _normalize_text(query)
    for candidate in candidates:
        if _normalize_text(candidate.text) == wanted:
            return candidate
    raise ValidationError(
        f"unknown query {query!r} for scenario {spec.name!r}: pass a corpus "
        f"query id or the exact text of one (see 'repro-nemo queries')")


# ---------------------------------------------------------------------------
# the answer value object
# ---------------------------------------------------------------------------
@dataclass
class QuerySpec:
    """One (scenario, query, model, backend) answer request."""

    scenario: str
    query: str
    model: str = DEFAULT_MODEL
    #: ``None`` picks the kind's default (networkx / direct)
    backend: Optional[str] = None


@dataclass
class QueryAnswer:
    """The outcome of answering one query against one scenario."""

    scenario: str
    query_id: str
    query_text: str
    #: ``static`` (single replayed graph) or ``temporal`` (whole timeline)
    kind: str
    model: str
    backend: str
    passed: bool
    #: the produced answer in golden-normalized shape: the golden value when
    #: the cell passed, the (wrong) produced value on a compare failure,
    #: ``None`` when the pipeline failed before producing a value
    answer: Any = None
    failure_stage: Optional[str] = None
    failure_reason: Optional[str] = None
    cost_usd: float = 0.0
    cached: bool = False
    duration_s: float = 0.0
    #: the full benchmark verdict backing this answer
    record: Optional[EvaluationRecord] = field(default=None, repr=False)

    def to_document(self) -> Dict[str, Any]:
        """JSON-safe form (what ``POST /query`` returns)."""
        return {
            "scenario": self.scenario,
            "query_id": self.query_id,
            "query": self.query_text,
            "kind": self.kind,
            "model": self.model,
            "backend": self.backend,
            "passed": self.passed,
            "answer": self.answer,
            "failure_stage": self.failure_stage,
            "failure_reason": self.failure_reason,
            "cost_usd": self.cost_usd,
            "cached": self.cached,
            "duration_s": round(self.duration_s, 6),
        }


# ---------------------------------------------------------------------------
# the answer cell worker
# ---------------------------------------------------------------------------
def _api_cell_task(spec, resolved, model: str, backend: str,
                   config_payload: Dict[str, Any]) -> Task:
    kind = "temporal" if isinstance(resolved, TemporalQuery) else "static"
    if kind == "temporal":
        payload = {"kind": kind, "config": config_payload,
                   "spec": spec.to_dict(), "query_id": resolved.query_id,
                   "model": model, "backend": backend}
        group = f"temporal/{spec.name}"
    else:
        payload = {"kind": kind, "config": config_payload,
                   "app": {"kind": "scenario", "spec": spec.to_dict()},
                   "backend": backend, "query_id": resolved.query_id,
                   "model": model}
        group = f"api/scenario/{spec.name}"
    return Task(key=f"api/{spec.name}/{kind}/{backend}/{resolved.query_id}/{model}",
                fn=API_CELL_WORKER, payload=payload, group=group)


def _golden_answer_static(payload: Dict[str, Any]) -> Any:
    """The normalized golden for a passed static cell, via the same
    worker-context memos :func:`run_benchmark_cell` populated."""
    from repro.benchmark.runner import BenchmarkRunner
    from repro.benchmark.queries import query_by_id
    from repro.benchmark.tasks import _build_application

    application = worker_context(
        ("benchmark-application", stable_hash(payload["config"], payload["app"])),
        lambda: _build_application(payload["config"], payload["app"]))
    runner = worker_context(
        ("benchmark-runner", stable_hash(payload["config"])),
        lambda: BenchmarkRunner(BenchmarkConfig.from_payload(payload["config"])))
    query = query_by_id(payload["query_id"])
    golden = runner.goldens.golden_for(query, application.graph)
    return normalize_value(golden.value)


def _golden_answer_temporal(payload: Dict[str, Any]) -> Any:
    from repro.benchmark.goldens import TemporalGoldenSelector
    from repro.benchmark.queries import temporal_query_by_id
    from repro.benchmark.tasks import _replay_timeline

    spec_hash = stable_hash(payload["spec"])
    timeline = worker_context(("scenario-timeline", spec_hash),
                              lambda: _replay_timeline(payload["spec"]))
    selector = worker_context(("temporal-golden-selector",), TemporalGoldenSelector)
    query = temporal_query_by_id(payload["query_id"])
    return normalize_value(selector.golden_for(query, timeline).value)


def run_api_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker: answer one facade cell — the benchmark verdict plus the value.

    Delegates to the exact benchmark workers (so the verdict is the
    benchmark's verdict), then derives the *answer value* clients actually
    asked for: a passed cell answers with the normalized golden (what the
    generated program produced, by definition of passing), a compare
    failure answers with the wrong value the program produced, and an
    earlier-stage failure has no value at all.
    """
    inner = {key: value for key, value in payload.items() if key != "kind"}
    if payload["kind"] == "temporal":
        record = run_temporal_cell(inner)
        golden = _golden_answer_temporal(inner)
    else:
        record = run_benchmark_cell(inner)
        golden = _golden_answer_static(inner)
    if record.passed:
        answer = golden
    elif record.failure_stage == "compare":
        answer = record.details.get("actual_value")
    else:
        answer = None
    return {"record": record, "answer": answer}


# ---------------------------------------------------------------------------
# the facade entry points
# ---------------------------------------------------------------------------
def _default_backend(resolved) -> str:
    return (DEFAULT_TEMPORAL_BACKEND if isinstance(resolved, TemporalQuery)
            else DEFAULT_STATIC_BACKEND)


def _validate_backend(resolved, backend: str) -> None:
    from repro.llm.calibration import TEMPORAL_BACKENDS

    if isinstance(resolved, TemporalQuery):
        require_in(backend, TEMPORAL_BACKENDS, "temporal backend")
    else:
        require_in(backend, STATIC_BACKENDS, "backend")


def answer_queries(requests: Sequence[QuerySpec],
                   policy: Optional[ExecutorPolicy] = None,
                   config: Optional[BenchmarkConfig] = None) -> List[QueryAnswer]:
    """Answer a batch of requests as one fabric task set.

    Duplicate requests collapse to one cell (every copy receives the same
    answer), the task set is profiled latency-bound — answer cells model
    the provider round trip — and results come back in request order
    whatever executor the *policy* resolves to.
    """
    require(bool(requests), "answer_queries needs at least one request")
    config = config or BenchmarkConfig()
    config_payload = config.to_payload()

    task_set = TaskSet(name="api/answers", profile=PROFILE_LATENCY)
    keys: List[str] = []
    resolved_by_key: Dict[str, Any] = {}
    for request in requests:
        spec = load_scenario(request.scenario)
        resolved = resolve_query(spec, request.query)
        backend = request.backend or _default_backend(resolved)
        _validate_backend(resolved, backend)
        task = _api_cell_task(spec, resolved, request.model, backend,
                              config_payload)
        if task.key not in resolved_by_key:
            task_set.add(task)
            resolved_by_key[task.key] = (spec, resolved, request.model, backend)
        keys.append(task.key)

    report = run_tasks(task_set, policy=policy)
    results = {result.key: result for result in report.results}
    answers: List[QueryAnswer] = []
    for key in keys:
        result = results[key]
        spec, resolved, model, backend = resolved_by_key[key]
        value = result.value  # raises TaskExecutionError if the cell errored
        record: EvaluationRecord = value["record"]
        answers.append(QueryAnswer(
            scenario=spec.name,
            query_id=resolved.query_id,
            query_text=resolved.text,
            kind="temporal" if isinstance(resolved, TemporalQuery) else "static",
            model=model,
            backend=backend,
            passed=record.passed,
            answer=value["answer"],
            failure_stage=record.failure_stage,
            failure_reason=record.failure_reason,
            cost_usd=record.cost_usd,
            cached=result.cached,
            duration_s=result.duration_s,
            record=record,
        ))
    return answers


def answer_query(scenario, query: str, model: str = DEFAULT_MODEL,
                 backend: Optional[str] = None,
                 policy: Optional[ExecutorPolicy] = None,
                 config: Optional[BenchmarkConfig] = None) -> QueryAnswer:
    """Answer one query (corpus id or NL text) against one scenario."""
    scenario = load_scenario(scenario).name
    return answer_queries(
        [QuerySpec(scenario=scenario, query=query, model=model, backend=backend)],
        policy=policy, config=config)[0]


def answer_temporal_query(scenario, query: str, model: str = DEFAULT_MODEL,
                          backend: str = DEFAULT_TEMPORAL_BACKEND,
                          policy: Optional[ExecutorPolicy] = None,
                          config: Optional[BenchmarkConfig] = None) -> QueryAnswer:
    """Answer one temporal query over a scenario's replayed timeline."""
    spec = load_scenario(scenario)
    resolved = resolve_query(spec, query)
    require(isinstance(resolved, TemporalQuery),
            f"query {resolved.query_id!r} is not a temporal query; "
            f"use answer_query() for static corpus queries")
    return answer_query(spec.name, resolved.query_id, model=model,
                        backend=backend, policy=policy, config=config)


def ask(query: str, application: str = "traffic",
        backend: str = DEFAULT_STATIC_BACKEND, model: str = DEFAULT_MODEL,
        nodes: int = 40, edges: int = 40):
    """Answer freeform NL text against a generated application.

    The exploratory path: no golden, no evaluation — just the pipeline
    (prompt → provider → extract → sandbox) and its
    :class:`~repro.core.pipeline.PipelineResult`.
    """
    from repro.core import NetworkManagementPipeline
    from repro.llm import create_provider
    from repro.malt import MaltApplication
    from repro.traffic import TrafficAnalysisApplication

    require_in(application, ("traffic", "malt"), "application")
    if application == "traffic":
        app = TrafficAnalysisApplication.with_size(nodes, edges)
    else:
        app = MaltApplication.small()
    provider = create_provider(model)
    pipeline = NetworkManagementPipeline(app, provider, backend)
    return pipeline.run_query(query)
