"""Error classification (paper Table 5).

The classifier maps a failed :class:`EvaluationRecord` back to the paper's
seven-way error taxonomy using only *observed* behaviour — the failure stage,
the exception type and message, and whether the mismatch was in the value or
in the graph state.  It deliberately does not look at the simulated model's
internal fault label, so the taxonomy is re-derived the way the paper's
authors derived it: by inspecting what the generated code did.
"""

from __future__ import annotations

from typing import Optional

from repro.benchmark.evaluator import EvaluationRecord


#: machine label -> the row label used in the paper's Table 5
ERROR_TYPE_LABELS = {
    "syntax_error": "Syntax error",
    "imaginary_graph_attribute": "Imaginary graph attributes",
    "imaginary_function_argument": "Imaginary files/function arguments",
    "argument_error": "Arguments error",
    "operation_error": "Operation error",
    "wrong_calculation_logic": "Wrong calculation logic",
    "graphs_not_identical": "Graphs are not identical",
}


def _message(record: EvaluationRecord) -> str:
    parts = [record.failure_reason or ""]
    parts.append(str(record.details.get("error_message", "")))
    return " ".join(parts).lower()


def classify_error(record: EvaluationRecord) -> Optional[str]:
    """Classify a failed record into the Table-5 taxonomy.

    Returns ``None`` for records that passed.
    """
    if record.passed:
        return None
    error_type = str(record.details.get("error_type", "") or "")
    message = _message(record)

    # 1) code that never parsed / responses without code
    if record.failure_stage in ("extract",):
        return "syntax_error"
    if error_type in ("SyntaxError", "SqlSyntaxError", "PolicyViolation"):
        return "syntax_error"
    if record.failure_stage == "llm":
        # the prompt did not fit the window; treat like a response the
        # operator could not use at all
        return "syntax_error"

    if record.failure_stage == "execute":
        if error_type in ("KeyError", "FrameError") or "unknown column" in message \
                or "has no column" in message:
            return "imaginary_graph_attribute"
        if "unexpected keyword" in message or "unknown aggregate function" in message \
                or "got an unexpected" in message:
            return "imaginary_function_argument"
        if error_type == "TypeError" and ("positional argument" in message
                                          or "required argument" in message
                                          or "missing" in message):
            return "argument_error"
        if "takes exactly one argument" in message or "requires an argument" in message:
            return "argument_error"
        if error_type in ("TypeError", "ValueError", "ZeroDivisionError") \
                or "unsupported operand" in message or "requires a numeric value" in message:
            return "operation_error"
        if error_type == "AttributeError":
            return "imaginary_function_argument"
        return "operation_error"

    # 2) executed fine but produced the wrong outcome
    if record.failure_stage == "compare":
        if "graphs are not identical" in message or "state change" in message:
            return "graphs_not_identical"
        return "wrong_calculation_logic"

    return "operation_error"


def label_for(error_type: Optional[str]) -> str:
    """Human-readable label for a taxonomy key (empty string for passes)."""
    if error_type is None:
        return ""
    return ERROR_TYPE_LABELS.get(error_type, error_type)
