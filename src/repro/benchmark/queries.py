"""The NeMoEval query corpus.

24 traffic-analysis queries (8 easy / 8 medium / 8 hard) and 9 MALT queries
(3 / 3 / 3), mirroring the paper's benchmark composition (Table 1 shows one
example per cell; the released benchmark contains the full lists).  Every
query carries:

* ``complexity`` — the paper's three levels;
* ``difficulty_rank`` — the query's rank *within* its complexity bucket
  (0 = easiest), which the calibrated reliability model uses to decide which
  queries a given model answers correctly;
* ``intent`` — the structured meaning used by the golden-answer selector and
  by the simulated LLMs' synthesizer.  The natural-language text and the
  intent are kept consistent (a test asserts that the intent parser recovers
  the intent from the text).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.synthesis.intents import Intent
from repro.synthesis.reference import TEMPORAL_TIME_PARAMS as TIME_PARAMS

COMPLEXITY_LEVELS = ("easy", "medium", "hard")


@dataclass(frozen=True)
class BenchmarkQuery:
    """One benchmark query."""

    query_id: str
    application: str          # "traffic_analysis" or "malt"
    text: str
    complexity: str           # "easy", "medium", "hard"
    difficulty_rank: int      # 0-based rank inside the complexity bucket
    intent: Intent

    def metadata(self, bucket_size: int) -> Dict[str, object]:
        """The structured metadata handed to the pipeline/LLM for this query."""
        return {
            "query_id": self.query_id,
            "query": self.text,
            "application": self.application,
            "complexity": self.complexity,
            "difficulty_rank": self.difficulty_rank,
            "bucket_size": bucket_size,
            "intent": self.intent.as_dict(),
        }


def _q(query_id: str, application: str, text: str, complexity: str, rank: int,
       intent_name: str, **params) -> BenchmarkQuery:
    return BenchmarkQuery(
        query_id=query_id,
        application=application,
        text=text,
        complexity=complexity,
        difficulty_rank=rank,
        intent=Intent.create(intent_name, **params),
    )


# ---------------------------------------------------------------------------
# traffic analysis (24 queries)
# ---------------------------------------------------------------------------
_TRAFFIC: List[BenchmarkQuery] = [
    # -- easy ------------------------------------------------------------
    _q("ta-e1", "traffic_analysis",
       "How many nodes are in the communication graph?",
       "easy", 0, "count_nodes"),
    _q("ta-e2", "traffic_analysis",
       "How many edges are in the communication graph?",
       "easy", 1, "count_edges"),
    _q("ta-e3", "traffic_analysis",
       "What is the total number of bytes transferred across all edges?",
       "easy", 2, "total_bytes"),
    _q("ta-e4", "traffic_analysis",
       "List the addresses of all nodes with address prefix 15.76.",
       "easy", 3, "list_nodes_by_prefix", prefix="15.76"),
    _q("ta-e5", "traffic_analysis",
       "Which edge carries the most bytes? Return the source and target addresses.",
       "easy", 4, "max_bytes_edge"),
    _q("ta-e6", "traffic_analysis",
       "How many router nodes are in the graph?",
       "easy", 5, "count_nodes_of_type", type_name="router"),
    _q("ta-e7", "traffic_analysis",
       "Add a label app:production to nodes with address prefix 15.76",
       "easy", 6, "label_nodes_by_prefix", key="app", value="production", prefix="15.76"),
    _q("ta-e8", "traffic_analysis",
       "List nodes that are isolated, with no incoming or outgoing communication.",
       "easy", 7, "list_isolated_nodes"),
    # -- medium ----------------------------------------------------------
    _q("ta-m1", "traffic_analysis",
       "Find the top 3 nodes by total outgoing bytes and return their addresses.",
       "medium", 0, "top_k_talkers", k=3),
    _q("ta-m2", "traffic_analysis",
       "List edges carrying more than 500000 bytes as source and destination address pairs.",
       "medium", 1, "heavy_edges_above", threshold=500000),
    _q("ta-m3", "traffic_analysis",
       "Compute the average bytes per edge grouped by the source node's device type.",
       "medium", 2, "avg_bytes_by_source_type"),
    _q("ta-m4", "traffic_analysis",
       "Remove all edges with fewer than 1000 bytes from the graph.",
       "medium", 3, "remove_light_edges", threshold=1000),
    _q("ta-m5", "traffic_analysis",
       "Assign a unique color for each /16 IP address prefix. Use color values "
       "'color-0', 'color-1', ... assigned in sorted order of the prefixes.",
       "medium", 4, "color_by_prefix16"),
    _q("ta-m6", "traffic_analysis",
       "Compute the total bytes sent by nodes in each /16 prefix.",
       "medium", 5, "bytes_per_prefix16"),
    _q("ta-m7", "traffic_analysis",
       "For each node, compute the number of distinct peers it communicates with.",
       "medium", 6, "peer_count_per_node"),
    _q("ta-m8", "traffic_analysis",
       "Count how many node pairs communicate in both directions.",
       "medium", 7, "reciprocal_pair_count"),
    # -- hard ------------------------------------------------------------
    _q("ta-h1", "traffic_analysis",
       "Calculate the total byte weight on each node and cluster them into 5 groups "
       "using equal-width bins; return the group index per node address.",
       "hard", 0, "cluster_nodes_by_total_bytes", clusters=5),
    _q("ta-h2", "traffic_analysis",
       "What is the required number of hops for data transmission between node n0 and node n5?",
       "hard", 1, "shortest_path_hops", source="n0", target="n5"),
    _q("ta-h3", "traffic_analysis",
       "Find the size of the largest weakly connected component of the communication graph.",
       "hard", 2, "largest_weakly_connected_component"),
    _q("ta-h4", "traffic_analysis",
       "Identify nodes whose total outgoing bytes exceed the mean by more than two "
       "standard deviations; return their addresses.",
       "hard", 3, "heavy_hitter_outliers"),
    _q("ta-h5", "traffic_analysis",
       "Remove the node with the highest total degree from the graph and return the "
       "number of remaining edges.",
       "hard", 4, "remove_highest_degree_node"),
    _q("ta-h6", "traffic_analysis",
       "Which node has the highest betweenness centrality? Return its address.",
       "hard", 5, "top_betweenness_node"),
    _q("ta-h7", "traffic_analysis",
       "Merge all nodes sharing the same /24 prefix into aggregate nodes, summing edge weights.",
       "hard", 6, "merge_nodes_by_prefix24"),
    _q("ta-h8", "traffic_analysis",
       "Evenly redistribute the total outgoing bytes of the busiest node across its outgoing edges.",
       "hard", 7, "redistribute_busiest_node_bytes"),
]


# ---------------------------------------------------------------------------
# MALT network lifecycle management (9 queries)
# ---------------------------------------------------------------------------
_MALT: List[BenchmarkQuery] = [
    # -- easy ------------------------------------------------------------
    _q("malt-e1", "malt",
       "List all ports that are contained by packet switch ju1.a1.m1.s2c1.",
       "easy", 0, "list_ports_of_switch", switch="ju1.a1.m1.s2c1"),
    _q("malt-e2", "malt",
       "How many packet switches are in the topology?",
       "easy", 1, "count_entities_of_type", entity_type="EK_PACKET_SWITCH"),
    _q("malt-e3", "malt",
       "List all packet switches controlled by control point cp1.",
       "easy", 2, "switches_controlled_by", control_point="cp1"),
    # -- medium ----------------------------------------------------------
    _q("malt-m1", "malt",
       "Find the first and the second largest chassis by capacity.",
       "medium", 0, "top2_chassis_by_capacity"),
    _q("malt-m2", "malt",
       "Compute the number of ports contained in each chassis of rack ju1.a1.m1.",
       "medium", 1, "port_count_per_chassis_in_rack", rack="ju1.a1.m1"),
    _q("malt-m3", "malt",
       "Compute the total packet switch capacity in each datacenter.",
       "medium", 2, "capacity_per_datacenter"),
    # -- hard ------------------------------------------------------------
    _q("malt-h1", "malt",
       "Remove packet switch ju1.a1.m1.s1c1 from its chassis and redistribute its "
       "capacity equally across the remaining switches in that chassis.",
       "hard", 0, "remove_switch_and_rebalance", switch="ju1.a1.m1.s1c1"),
    _q("malt-h2", "malt",
       "For each datacenter, compute the fraction of ports that are down.",
       "hard", 1, "down_port_fraction_per_datacenter"),
    _q("malt-h3", "malt",
       "Add a new packet switch named 'new-switch-1' with capacity 100 to the chassis "
       "with the lowest total capacity and update that chassis capacity.",
       "hard", 2, "add_switch_to_least_loaded_chassis", name="new-switch-1", capacity=100),
]


# ---------------------------------------------------------------------------
# temporal queries (24, over the built-in scenario corpus)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TemporalQuery:
    """One temporal benchmark query, asked against a scenario's timeline.

    Unlike a :class:`BenchmarkQuery`, which evaluates on a single static
    graph, a temporal query's *text* references scenario dynamics ("which
    links failed since t=2?") and its golden answer is a function of the
    whole replayed :class:`~repro.scenarios.engine.ScenarioTimeline`.
    """

    query_id: str
    scenario: str             # registered scenario name the query runs against
    text: str
    complexity: str           # "easy", "medium", "hard"
    difficulty_rank: int      # 0-based rank inside the complexity bucket
    intent: Intent

    @property
    def anchor_time(self) -> Optional[float]:
        """The latest snapshot time the query references (None = whole
        timeline; such queries anchor at the final snapshot)."""
        times = [float(value) for key, value in self.intent.params
                 if key in TIME_PARAMS and value is not None]
        return max(times) if times else None

    def metadata(self, bucket_size: int) -> Dict[str, object]:
        """The structured metadata handed to the calibrated reliability model."""
        return {
            "query_id": self.query_id,
            "query": self.text,
            "application": "traffic_analysis",
            "scenario": self.scenario,
            "complexity": self.complexity,
            "difficulty_rank": self.difficulty_rank,
            "bucket_size": bucket_size,
            "intent": self.intent.as_dict(),
        }


def _tq(query_id: str, scenario: str, text: str, complexity: str, rank: int,
        intent_name: str, **params) -> TemporalQuery:
    return TemporalQuery(
        query_id=query_id,
        scenario=scenario,
        text=text,
        complexity=complexity,
        difficulty_rank=rank,
        intent=Intent.create(intent_name, **params),
    )


_TEMPORAL: List[TemporalQuery] = [
    # -- easy: single-snapshot lookups ------------------------------------
    _tq("tq-e1", "fat-tree-failover",
        "How many links does the fabric have at t=1, right after the core "
        "uplink fails?",
        "easy", 0, "edge_count_at", at=1.0),
    _tq("tq-e2", "wan-fiber-cut",
        "How many POPs are reachable in the backbone at t=4, while pop-3 is "
        "dark for maintenance?",
        "easy", 1, "node_count_at", at=4.0),
    _tq("tq-e3", "manet-churn",
        "How many distinct network states did the churn scenario pass "
        "through, counting the initial state?",
        "easy", 2, "snapshot_count"),
    _tq("tq-e4", "traffic-flashcrowd",
        "At which time did the network carry the most total bytes?",
        "easy", 3, "peak_traffic_time", key="bytes"),
    # -- medium: windowed deltas ------------------------------------------
    _tq("tq-m1", "fat-tree-failover",
        "Which links failed between t=0.5 and t=2?",
        "medium", 0, "failed_links_since", since=0.5, until=2.0),
    _tq("tq-m2", "wan-fiber-cut",
        "Which POPs churned out of or into the backbone between t=1 and t=3?",
        "medium", 1, "churned_nodes_between", start=1.0, end=3.0),
    _tq("tq-m3", "manet-churn",
        "Which mobile nodes departed or rejoined between t=0 and t=3.5?",
        "medium", 2, "churned_nodes_between", start=0.0, end=3.5),
    _tq("tq-m4", "traffic-flashcrowd",
        "Which links have failed since t=1, when the flash crowd peaked?",
        "medium", 3, "failed_links_since", since=1.0),
    # -- easy: correlated-dynamics scenarios ------------------------------
    _tq("tq-e5", "wan-conduit-cut",
        "How many backbone spans are up at t=2, while the cut conduit is "
        "still out?",
        "easy", 4, "edge_count_at", at=2.0),
    _tq("tq-e6", "fattree-maintenance",
        "How many switches and hosts are in the fabric at t=3, during the "
        "chassis maintenance window?",
        "easy", 5, "node_count_at", at=3.0),
    _tq("tq-e7", "wan-gravity-hotspot",
        "At which time did the backbone carry the most total bytes?",
        "easy", 6, "peak_traffic_time", key="bytes"),
    # -- medium: correlated-dynamics scenarios ----------------------------
    _tq("tq-m5", "wan-conduit-cut",
        "Which shared-risk link groups are fully failed at t=2?",
        "medium", 4, "failed_srlgs_at", at=2.0),
    _tq("tq-m6", "fattree-maintenance",
        "Which links were drained for maintenance and restored between t=0 "
        "and t=8?",
        "medium", 5, "drained_links_between", start=0.0, end=8.0),
    _tq("tq-m7", "wan-gravity-hotspot",
        "Which region's traffic grew the most between t=1 and t=3, while "
        "the hotspot built up?",
        "medium", 6, "top_region_by_traffic_growth", start=1.0, end=3.0,
        key="bytes"),
    # -- hard: cross-snapshot aggregations --------------------------------
    _tq("tq-h1", "fat-tree-failover",
        "Which links are running degraded at t=2, below their original "
        "capacity?",
        "hard", 0, "degraded_links_at", at=2.0),
    _tq("tq-h2", "wan-fiber-cut",
        "Which backbone spans were restored between t=1.5 and t=8?",
        "hard", 1, "restored_links_since", since=1.5, until=8.0),
    _tq("tq-h3", "manet-churn",
        "How much aggregate link capacity (Gbps) has the network lost at "
        "t=3 relative to the initial state?",
        "hard", 2, "capacity_drop_at", at=3.0),
    _tq("tq-h4", "traffic-flashcrowd",
        "By how many bytes did total traffic change between t=0 and t=1?",
        "hard", 3, "traffic_change_between", start=0.0, end=1.0, key="bytes"),
    # -- MALT lifecycle over timelines (malt-chassis-drain) ----------------
    _tq("tq-malt-e1", "malt-chassis-drain",
        "How many packet switches are racked in the topology at t=2, while "
        "ju1.a1.m1.s1c1 is drained?",
        "easy", 7, "entity_count_at", entity_type="EK_PACKET_SWITCH", at=2.0),
    _tq("tq-malt-m1", "malt-chassis-drain",
        "What is the total capacity of the packet switches still racked at "
        "t=2, during the drain?",
        "medium", 7, "entity_capacity_at", entity_type="EK_PACKET_SWITCH",
        at=2.0),
    _tq("tq-malt-h1", "malt-chassis-drain",
        "Which ports are orphaned at t=2, left without a containing switch "
        "while their chassis slot is drained?",
        "hard", 7, "orphaned_ports_at", at=2.0),
    # -- hard: correlated-dynamics scenarios ------------------------------
    _tq("tq-h5", "wan-conduit-cut",
        "Which spans of the cut se-sw conduit are still down at t=4, after "
        "the first splice?",
        "hard", 4, "srlg_links_down_at", at=4.0, group="conduit-se-sw"),
    _tq("tq-h6", "fattree-maintenance",
        "Which switches were drained for maintenance and re-racked between "
        "t=0 and t=8?",
        "hard", 5, "drained_nodes_between", start=0.0, end=8.0),
    _tq("tq-h7", "wan-gravity-hotspot",
        "By how many bytes did each region's traffic change between t=1 "
        "and t=3?",
        "hard", 6, "region_traffic_between", start=1.0, end=3.0, key="bytes"),
]


def temporal_queries() -> List[TemporalQuery]:
    """The temporal queries over the scenario corpus (8 scenarios, all
    complexity buckets, including the MALT lifecycle family)."""
    return list(_TEMPORAL)


def temporal_scenario_names() -> List[str]:
    """Scenario names referenced by the temporal corpus, sorted."""
    return sorted({query.scenario for query in _TEMPORAL})


def temporal_queries_for(scenario: str) -> List[TemporalQuery]:
    """The temporal queries asked against one scenario."""
    return [query for query in _TEMPORAL if query.scenario == scenario]


def temporal_query_by_id(query_id: str) -> TemporalQuery:
    """Look up one temporal query by its id (e.g. ``"tq-m1"``)."""
    for query in _TEMPORAL:
        if query.query_id == query_id:
            return query
    raise KeyError(f"unknown temporal query id {query_id!r}")


def temporal_bucket_size(complexity: str) -> int:
    """Number of temporal queries in one complexity bucket."""
    return sum(1 for query in _TEMPORAL if query.complexity == complexity)


def traffic_queries() -> List[BenchmarkQuery]:
    """The 24 traffic-analysis queries."""
    return list(_TRAFFIC)


def malt_queries() -> List[BenchmarkQuery]:
    """The 9 MALT lifecycle-management queries."""
    return list(_MALT)


def queries_for(application: str) -> List[BenchmarkQuery]:
    """All queries of one application."""
    if application == "traffic_analysis":
        return traffic_queries()
    if application == "malt":
        return malt_queries()
    raise KeyError(f"unknown application {application!r}")


def query_by_id(query_id: str) -> BenchmarkQuery:
    """Look up one query by its id (e.g. ``"ta-m5"``)."""
    for query in _TRAFFIC + _MALT:
        if query.query_id == query_id:
            return query
    raise KeyError(f"unknown query id {query_id!r}")


def bucket_size(application: str, complexity: str) -> int:
    """Number of queries in one complexity bucket of one application."""
    return sum(1 for query in queries_for(application) if query.complexity == complexity)


def queries_by_complexity(application: str) -> Dict[str, List[BenchmarkQuery]]:
    """Queries grouped by complexity, preserving difficulty-rank order."""
    grouped: Dict[str, List[BenchmarkQuery]] = {level: [] for level in COMPLEXITY_LEVELS}
    for query in queries_for(application):
        grouped[query.complexity].append(query)
    for level in grouped:
        grouped[level].sort(key=lambda q: q.difficulty_rank)
    return grouped
