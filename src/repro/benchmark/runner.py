"""The benchmark runner: regenerate the paper's accuracy tables.

The runner wires every piece together: for each (model, backend, query) it
builds the application, runs the pipeline, evaluates against the golden
answer, classifies failures, and aggregates accuracy per complexity level —
which is exactly the content of the paper's Tables 2, 3, 4 and 5.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.benchmark.evaluator import EvaluationRecord, ResultsEvaluator
from repro.benchmark.goldens import GoldenAnswerSelector
from repro.benchmark.logger import ResultsLogger
from repro.benchmark.tasks import benchmark_cell_task, temporal_cell_task
from repro.benchmark.queries import (
    BenchmarkQuery,
    COMPLEXITY_LEVELS,
    bucket_size,
    queries_for,
    temporal_queries_for,
    temporal_scenario_names,
)
from repro.core.application import NetworkApplication
from repro.core.pipeline import NetworkManagementPipeline, QueryRequest
from repro.exec import (
    ExecutionOptions,
    ExecutorPolicy,
    PROFILE_CPU,
    PROFILE_LATENCY,
    RunReport,
    TaskSet,
    run_tasks,
)
from repro.llm.calibration import CalibrationTable
from repro.llm.catalog import DEFAULT_MODELS, create_provider
from repro.malt import MaltApplication, MaltTopologyConfig
from repro.obs import span
from repro.traffic import CommunicationGraphConfig, TrafficAnalysisApplication
from repro.utils.tables import format_table
from repro.utils.validation import require


#: backends compared for each application (the paper only runs the strawman
#: on traffic analysis, where the graph size can be kept inside the window)
TRAFFIC_BACKENDS = ("strawman", "sql", "pandas", "networkx")
MALT_BACKENDS = ("sql", "pandas", "networkx")


@dataclass
class BenchmarkConfig:
    """Knobs of one benchmark run."""

    models: Sequence[str] = tuple(DEFAULT_MODELS)
    traffic_node_count: int = 40
    traffic_edge_count: int = 40
    strawman_node_count: int = 10
    strawman_edge_count: int = 10
    malt_config: Optional[MaltTopologyConfig] = None
    seed: int = 7
    calibration: Optional[CalibrationTable] = None
    #: per-cell provider round-trip model (seconds).  The simulated LLMs
    #: answer instantly; real hosted models spend most of a cell's wall time
    #: on the network.  A non-zero value restores that latency-bound profile
    #: (used by the parallel-speedup benchmark); accuracy is unaffected.
    simulated_api_latency_s: float = 0.0

    def traffic_application(self) -> TrafficAnalysisApplication:
        return TrafficAnalysisApplication(config=CommunicationGraphConfig(
            node_count=self.traffic_node_count, edge_count=self.traffic_edge_count,
            seed=self.seed))

    def strawman_application(self) -> TrafficAnalysisApplication:
        return TrafficAnalysisApplication(config=CommunicationGraphConfig(
            node_count=self.strawman_node_count, edge_count=self.strawman_edge_count,
            seed=self.seed))

    def malt_application(self) -> MaltApplication:
        return MaltApplication(config=self.malt_config)

    # ------------------------------------------------------------------
    # serialization: benchmark cells cross process boundaries as plain data
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-friendly dump of everything a worker needs to rebuild apps.

        ``models`` is deliberately excluded — each task names its model
        explicitly, so the model list never perturbs cache keys.
        """
        return {
            "traffic_node_count": self.traffic_node_count,
            "traffic_edge_count": self.traffic_edge_count,
            "strawman_node_count": self.strawman_node_count,
            "strawman_edge_count": self.strawman_edge_count,
            "malt_config": asdict(self.malt_config) if self.malt_config else None,
            "seed": self.seed,
            "calibration": self.calibration.to_dict() if self.calibration else None,
            "simulated_api_latency_s": self.simulated_api_latency_s,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "BenchmarkConfig":
        malt_config = None
        if payload.get("malt_config") is not None:
            fields_ = dict(payload["malt_config"])
            for tuple_field in ("switch_capacities_gbps", "vendors", "port_speeds_gbps"):
                if tuple_field in fields_:
                    fields_[tuple_field] = tuple(fields_[tuple_field])
            malt_config = MaltTopologyConfig(**fields_)
        calibration = None
        if payload.get("calibration") is not None:
            calibration = CalibrationTable.from_dict(payload["calibration"])
        return cls(
            traffic_node_count=payload["traffic_node_count"],
            traffic_edge_count=payload["traffic_edge_count"],
            strawman_node_count=payload["strawman_node_count"],
            strawman_edge_count=payload["strawman_edge_count"],
            malt_config=malt_config,
            seed=payload["seed"],
            calibration=calibration,
            simulated_api_latency_s=payload.get("simulated_api_latency_s", 0.0),
        )


@dataclass
class AccuracyReport:
    """Aggregated accuracy for one application."""

    application: str
    backends: Sequence[str]
    models: Sequence[str]
    logger: ResultsLogger = field(default_factory=ResultsLogger)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Paper Table 2 content: model -> backend -> overall accuracy."""
        table: Dict[str, Dict[str, float]] = {}
        for model in self.models:
            table[model] = {}
            for backend in self.backends:
                table[model][backend] = self.logger.accuracy(model=model, backend=backend)
        return table

    def breakdown(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Paper Tables 3/4 content: model -> backend -> complexity -> accuracy."""
        table: Dict[str, Dict[str, Dict[str, float]]] = {}
        for model in self.models:
            table[model] = {}
            for backend in self.backends:
                per_complexity = {}
                for complexity in COMPLEXITY_LEVELS:
                    records = [r for r in self.logger.filtered(model=model, backend=backend)
                               if r.complexity == complexity]
                    per_complexity[complexity] = (
                        sum(1 for r in records if r.passed) / len(records) if records else 0.0)
                table[model][backend] = per_complexity
        return table

    def error_type_counts(self, backend: str = "networkx") -> Dict[str, int]:
        """Paper Table 5 content for one backend."""
        return self.logger.error_type_counts(backend=backend)

    # ------------------------------------------------------------------
    def render_summary(self) -> str:
        from repro.benchmark.logger import accuracy_cell

        rows = []
        summary = self.summary()
        for model in self.models:
            rows.append([model] + [accuracy_cell(summary[model][backend])
                                   for backend in self.backends])
        return format_table(["model"] + list(self.backends), rows,
                            title=f"Accuracy summary — {self.application}")

    def render_breakdown(self) -> str:
        rows = []
        breakdown = self.breakdown()
        for model in self.models:
            for backend in self.backends:
                cell = breakdown[model][backend]
                rows.append([model, backend] + [cell[c] for c in COMPLEXITY_LEVELS])
        return format_table(["model", "backend"] + list(COMPLEXITY_LEVELS), rows,
                            title=f"Accuracy by complexity — {self.application}")


@dataclass
class TemporalAccuracyReport:
    """Aggregated temporal accuracy, grouped per scenario, backend and
    snapshot.  ``backends`` lists the answering paths swept: ``direct``
    (straight from the timeline) and/or the timeline-aware codegen backends
    (``frames``/``networkx``)."""

    scenarios: Sequence[str]
    models: Sequence[str]
    backends: Sequence[str] = ("direct",)
    #: scenario -> ordered (snapshot time, digest) pairs of its replay
    snapshots: Dict[str, List[Tuple[float, str]]] = field(default_factory=dict)
    logger: ResultsLogger = field(default_factory=ResultsLogger)

    # ------------------------------------------------------------------
    def _records(self, model: Optional[str] = None,
                 scenario: Optional[str] = None,
                 backend: Optional[str] = None) -> List[EvaluationRecord]:
        selected = self.logger.records
        if model is not None:
            selected = [r for r in selected if r.model == model]
        if scenario is not None:
            selected = [r for r in selected
                        if r.details.get("scenario") == scenario]
        if backend is not None:
            selected = [r for r in selected if r.backend == backend]
        return selected

    @staticmethod
    def _accuracy(records: List[EvaluationRecord]) -> float:
        if not records:
            return 0.0
        return sum(1 for r in records if r.passed) / len(records)

    def summary(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """model -> backend -> scenario -> accuracy over the temporal corpus."""
        table: Dict[str, Dict[str, Dict[str, float]]] = {}
        for model in self.models:
            table[model] = {}
            for backend in self.backends:
                table[model][backend] = {
                    scenario: self._accuracy(self._records(model, scenario, backend))
                    for scenario in self.scenarios}
        return table

    def backend_summary(self) -> Dict[str, Dict[str, float]]:
        """model -> backend -> overall accuracy (the codegen-vs-direct view)."""
        table: Dict[str, Dict[str, float]] = {}
        for model in self.models:
            table[model] = {backend: self._accuracy(self._records(model, backend=backend))
                            for backend in self.backends}
        return table

    def snapshot_breakdown(self, scenario: str,
                           backend: Optional[str] = None,
                           ) -> List[Dict[str, object]]:
        """Per-snapshot accuracy rows for one scenario.

        Each temporal query anchors at the latest snapshot its text
        references (whole-timeline questions anchor at the final snapshot);
        a row aggregates every (query, model) cell anchored there — of one
        answering *backend* when given, of all swept backends otherwise.
        """
        rows: List[Dict[str, object]] = []
        for time, digest in self.snapshots.get(scenario, []):
            anchored = [r for r in self._records(scenario=scenario,
                                                 backend=backend)
                        if r.details.get("anchor_time") == time]
            if not anchored:
                continue
            rows.append({
                "time": time,
                "digest": digest,
                "queries": sorted({r.query_id for r in anchored}),
                "cells": len(anchored),
                "accuracy": self._accuracy(anchored),
            })
        return rows

    # ------------------------------------------------------------------
    def render_summary(self) -> str:
        rows = []
        summary = self.summary()
        for model in self.models:
            for backend in self.backends:
                rows.append([model, backend]
                            + [summary[model][backend][scenario]
                               for scenario in self.scenarios])
        return format_table(["model", "backend"] + list(self.scenarios), rows,
                            title="Temporal accuracy by scenario")

    def render_backend_summary(self) -> str:
        rows = []
        summary = self.backend_summary()
        for model in self.models:
            rows.append([model] + [summary[model][backend]
                                   for backend in self.backends])
        return format_table(["model"] + list(self.backends), rows,
                            title="Temporal accuracy by backend")

    def render_snapshot_tables(self) -> str:
        """One per-snapshot table per scenario; multi-backend runs break
        each snapshot down per answering backend so a row's accuracy always
        describes a single path."""
        blocks = []
        for scenario in self.scenarios:
            if len(self.backends) == 1:
                rows = [[row["time"], row["digest"], ", ".join(row["queries"]),
                         row["cells"], row["accuracy"]]
                        for row in self.snapshot_breakdown(scenario)]
                headers = ["time", "digest", "queries", "cells", "accuracy"]
            else:
                rows = [[row["time"], backend, row["digest"],
                         ", ".join(row["queries"]), row["cells"],
                         row["accuracy"]]
                        for backend in self.backends
                        for row in self.snapshot_breakdown(scenario, backend)]
                rows.sort(key=lambda row: row[0])
                headers = ["time", "backend", "digest", "queries", "cells",
                           "accuracy"]
            blocks.append(format_table(
                headers, rows, title=f"Per-snapshot accuracy — {scenario}"))
        return "\n\n".join(blocks)


class BenchmarkRunner:
    """Run NeMoEval end to end for one or both applications.

    Sweeps (``run_application``, ``run_scenario``, ``run_scenario_suite``)
    are dispatched through the :mod:`repro.exec` fabric: every (application,
    backend, query, model) cell becomes a task, executed under *policy* —
    serial, thread pool, process pool, or auto-resolved per task set — with
    results folded back in task order, so the produced tables are
    byte-identical regardless of the executor or cache state.
    """

    def __init__(self, config: Optional[BenchmarkConfig] = None,
                 execution: Optional[ExecutionOptions] = None,
                 policy: Optional[ExecutorPolicy] = None) -> None:
        self.config = config or BenchmarkConfig()
        if execution is not None:
            require(policy is None,
                    "pass either policy= or the deprecated execution=, not both")
            warnings.warn(
                "BenchmarkRunner(execution=ExecutionOptions(...)) is "
                "deprecated; pass policy=ExecutorPolicy(...) instead",
                DeprecationWarning, stacklevel=2)
            policy = execution.to_policy()
        self.policy = policy or ExecutorPolicy.serial()
        self.evaluator = ResultsEvaluator()
        self.goldens = GoldenAnswerSelector()
        #: telemetry of the most recent fabric dispatch (None before any sweep)
        self.last_run_report: Optional[RunReport] = None

    # ------------------------------------------------------------------
    def _task_profile(self) -> str:
        """Static benchmark cells wait out the simulated provider round trip
        when one is configured — that makes the set latency-bound (threads
        under ``auto``); with instant providers the sandbox dominates."""
        return (PROFILE_LATENCY if self.config.simulated_api_latency_s > 0
                else PROFILE_CPU)

    def _dispatch(self, task_set: TaskSet) -> List[EvaluationRecord]:
        """Run a task set through the fabric; cell failures raise loudly."""
        with span("benchmark.dispatch", attrs={"task_set": task_set.name,
                                               "tasks": len(task_set)}):
            run_report = run_tasks(task_set, policy=self.policy)
        self.last_run_report = run_report
        records = run_report.values()  # raises TaskExecutionError on any failure
        # thread cache provenance into the records so saved result logs can
        # report cache effectiveness; the flag is telemetry — it is set
        # *after* fresh results were persisted, so cached entries themselves
        # never carry it and rendered tables never read it
        for result, record in zip(run_report.results, records):
            if isinstance(record, EvaluationRecord):
                record.cached = result.cached
        return records

    # ------------------------------------------------------------------
    def run_query(self, application: NetworkApplication, query: BenchmarkQuery,
                  model: str, backend: str, attempt: int = 0,
                  feedback: Optional[str] = None) -> EvaluationRecord:
        """Run one (query, model, backend) cell and evaluate it."""
        with span("benchmark.cell", attrs={"query": query.query_id,
                                           "model": model, "backend": backend}):
            provider = create_provider(model, calibration=self.config.calibration)
            pipeline = NetworkManagementPipeline(application, provider, backend)
            metadata = query.metadata(bucket_size(query.application, query.complexity))
            request = QueryRequest(query=query.text, backend=backend, metadata=metadata,
                                   attempt=attempt, feedback=feedback)
            pipeline_result = pipeline.run(request)
            with span("benchmark.evaluate", attrs={"query": query.query_id}):
                golden = self.goldens.golden_for(query, application.graph)
                return self.evaluator.evaluate(query, model, pipeline_result, golden,
                                               application.graph)

    # ------------------------------------------------------------------
    def run_application(self, application_name: str,
                        backends: Optional[Sequence[str]] = None,
                        models: Optional[Sequence[str]] = None) -> AccuracyReport:
        """Run every query of one application for all models and backends."""
        models = list(models or self.config.models)
        if backends is None:
            backends = TRAFFIC_BACKENDS if application_name == "traffic_analysis" else MALT_BACKENDS
        report = AccuracyReport(application=application_name, backends=list(backends),
                                models=models)

        with span("benchmark.suite", attrs={"application": application_name,
                                            "models": len(models)}):
            config_payload = self.config.to_payload()
            task_set = TaskSet(name=f"benchmark/{application_name}",
                               profile=self._task_profile())
            for backend in backends:
                # the paper only runs the strawman's shrunken graph on traffic
                # analysis; a MALT strawman sweep keeps the full MALT state
                if backend == "strawman" and application_name == "traffic_analysis":
                    app_context = {"kind": "strawman"}
                else:
                    app_context = {"kind": "generated", "application": application_name}
                for query in queries_for(application_name):
                    for model in models:
                        task_set.add(benchmark_cell_task(
                            application_name, config_payload, app_context,
                            backend, query.query_id, model))
            for record in self._dispatch(task_set):
                report.logger.log(record)
        return report

    def run_all(self) -> Dict[str, AccuracyReport]:
        """Run both applications (the full paper evaluation)."""
        return {
            "traffic_analysis": self.run_application("traffic_analysis"),
            "malt": self.run_application("malt"),
        }

    # ------------------------------------------------------------------
    # scenario sweeps
    # ------------------------------------------------------------------
    def run_scenario(self, spec, models: Optional[Sequence[str]] = None,
                     backends: Sequence[str] = ("networkx",),
                     queries: Optional[Sequence[BenchmarkQuery]] = None) -> AccuracyReport:
        """Run the query corpus against one scenario's replayed network state.

        The scenario (a :class:`repro.scenarios.ScenarioSpec` or a registered
        scenario name) is replayed through the event engine; the resulting
        graph becomes the application under test.  MALT-family scenarios run
        the MALT corpus, every other family runs the traffic corpus over the
        traffic-annotated graph.
        """
        from repro.scenarios.overlay import resolve_spec

        spec = resolve_spec(spec)
        models = list(models or self.config.models)
        if queries is None:
            queries = queries_for("malt" if spec.family == "malt" else "traffic_analysis")
        report = AccuracyReport(application=f"scenario:{spec.name}",
                                backends=list(backends), models=models)
        task_set = TaskSet(name=f"benchmark/scenario/{spec.name}",
                           profile=self._task_profile())
        self._add_scenario_tasks(task_set, spec, backends, queries, models)
        for record in self._dispatch(task_set):
            report.logger.log(record)
        return report

    def _add_scenario_tasks(self, task_set: TaskSet, spec, backends, queries,
                            models) -> int:
        """Append one task per (backend, query, model) cell of one scenario."""
        config_payload = self.config.to_payload()
        app_context = {"kind": "scenario", "spec": spec.to_dict()}
        added = 0
        for backend in backends:
            for query in queries:
                for model in models:
                    task_set.add(benchmark_cell_task(
                        f"scenario:{spec.name}", config_payload, app_context,
                        backend, query.query_id, model))
                    added += 1
        return added

    def run_scenario_suite(self, suite=None, models: Optional[Sequence[str]] = None,
                           backends: Sequence[str] = ("networkx",),
                           queries: Optional[Sequence[BenchmarkQuery]] = None,
                           ) -> Dict[str, AccuracyReport]:
        """Sweep a whole scenario suite; scenario name -> accuracy report.

        The whole suite becomes **one** task set, so with a parallel
        executor the sweep scales across scenarios as well as across the
        cells inside each scenario.
        """
        from repro.scenarios.overlay import resolve_spec
        from repro.scenarios.suite import default_suite

        if suite is None:
            suite = default_suite()
        suite.validate()
        models = list(models or self.config.models)

        task_set = TaskSet(name=f"benchmark/suite/{suite.name}",
                           profile=self._task_profile())
        reports: Dict[str, AccuracyReport] = {}
        owners: List[str] = []
        for spec in suite.scenarios:
            spec = resolve_spec(spec)
            scenario_queries = (queries if queries is not None else queries_for(
                "malt" if spec.family == "malt" else "traffic_analysis"))
            reports[spec.name] = AccuracyReport(
                application=f"scenario:{spec.name}", backends=list(backends),
                models=models)
            added = self._add_scenario_tasks(task_set, spec, backends,
                                             scenario_queries, models)
            owners.extend([spec.name] * added)

        for owner, record in zip(owners, self._dispatch(task_set)):
            reports[owner].logger.log(record)
        return reports

    # ------------------------------------------------------------------
    # temporal sweeps
    # ------------------------------------------------------------------
    def run_temporal_suite(self, scenarios: Optional[Sequence[str]] = None,
                           models: Optional[Sequence[str]] = None,
                           backends: Sequence[str] = ("direct",),
                           ) -> TemporalAccuracyReport:
        """Answer the temporal query corpus over replayed scenario timelines.

        Every (scenario, temporal query, model, backend) cell becomes one
        fabric task whose worker replays the scenario (memoized per
        process), computes the temporal golden from the timeline's
        snapshots and diffs, and evaluates the model's answer against it —
        directly from the timeline for the ``direct`` backend, or by
        emitting and sandbox-executing a timeline-aware program for the
        ``frames``/``networkx`` backends.  Results fold back in task order,
        so serial and parallel sweeps produce byte-identical tables.
        """
        from repro.llm.calibration import TEMPORAL_BACKENDS
        from repro.scenarios.engine import replay_scenario
        from repro.scenarios.registry import get_scenario
        from repro.utils.validation import require_in

        scenarios = list(scenarios or temporal_scenario_names())
        models = list(models or self.config.models)
        # order-preserving dedupe: a repeated backend would produce duplicate
        # task keys and abort the whole sweep at TaskSet validation
        backends = list(dict.fromkeys(backends))
        for backend in backends:
            require_in(backend, TEMPORAL_BACKENDS, "temporal backend")
        report = TemporalAccuracyReport(scenarios=scenarios, models=models,
                                        backends=backends)

        with span("benchmark.suite", attrs={"kind": "temporal",
                                            "scenarios": len(scenarios)}):
            config_payload = self.config.to_payload()
            task_set = TaskSet(name="benchmark/temporal")
            for scenario in scenarios:
                spec = get_scenario(scenario)
                queries = temporal_queries_for(scenario)
                require(bool(queries),
                        f"no temporal queries target scenario {scenario!r}; "
                        f"temporal scenarios: {temporal_scenario_names()}")
                timeline = replay_scenario(spec)
                report.snapshots[scenario] = [
                    (snapshot.time, snapshot.digest) for snapshot in timeline.snapshots]
                spec_dict = spec.to_dict()
                for query in queries:
                    for model in models:
                        for backend in backends:
                            task_set.add(temporal_cell_task(
                                config_payload, spec_dict, query.query_id, model,
                                backend))
            for record in self._dispatch(task_set):
                report.logger.log(record)
        return report
