"""The benchmark runner: regenerate the paper's accuracy tables.

The runner wires every piece together: for each (model, backend, query) it
builds the application, runs the pipeline, evaluates against the golden
answer, classifies failures, and aggregates accuracy per complexity level —
which is exactly the content of the paper's Tables 2, 3, 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.benchmark.evaluator import EvaluationRecord, ResultsEvaluator
from repro.benchmark.goldens import GoldenAnswerSelector
from repro.benchmark.logger import ResultsLogger
from repro.benchmark.queries import (
    BenchmarkQuery,
    COMPLEXITY_LEVELS,
    bucket_size,
    queries_for,
)
from repro.core.application import NetworkApplication
from repro.core.pipeline import NetworkManagementPipeline, QueryRequest
from repro.llm.calibration import CalibrationTable
from repro.llm.catalog import DEFAULT_MODELS, create_provider
from repro.malt import MaltApplication, MaltTopologyConfig
from repro.traffic import CommunicationGraphConfig, TrafficAnalysisApplication
from repro.utils.tables import format_table


#: backends compared for each application (the paper only runs the strawman
#: on traffic analysis, where the graph size can be kept inside the window)
TRAFFIC_BACKENDS = ("strawman", "sql", "pandas", "networkx")
MALT_BACKENDS = ("sql", "pandas", "networkx")


@dataclass
class BenchmarkConfig:
    """Knobs of one benchmark run."""

    models: Sequence[str] = tuple(DEFAULT_MODELS)
    traffic_node_count: int = 40
    traffic_edge_count: int = 40
    strawman_node_count: int = 10
    strawman_edge_count: int = 10
    malt_config: Optional[MaltTopologyConfig] = None
    seed: int = 7
    calibration: Optional[CalibrationTable] = None

    def traffic_application(self) -> TrafficAnalysisApplication:
        return TrafficAnalysisApplication(config=CommunicationGraphConfig(
            node_count=self.traffic_node_count, edge_count=self.traffic_edge_count,
            seed=self.seed))

    def strawman_application(self) -> TrafficAnalysisApplication:
        return TrafficAnalysisApplication(config=CommunicationGraphConfig(
            node_count=self.strawman_node_count, edge_count=self.strawman_edge_count,
            seed=self.seed))

    def malt_application(self) -> MaltApplication:
        return MaltApplication(config=self.malt_config)


@dataclass
class AccuracyReport:
    """Aggregated accuracy for one application."""

    application: str
    backends: Sequence[str]
    models: Sequence[str]
    logger: ResultsLogger = field(default_factory=ResultsLogger)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Paper Table 2 content: model -> backend -> overall accuracy."""
        table: Dict[str, Dict[str, float]] = {}
        for model in self.models:
            table[model] = {}
            for backend in self.backends:
                table[model][backend] = self.logger.accuracy(model=model, backend=backend)
        return table

    def breakdown(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Paper Tables 3/4 content: model -> backend -> complexity -> accuracy."""
        table: Dict[str, Dict[str, Dict[str, float]]] = {}
        for model in self.models:
            table[model] = {}
            for backend in self.backends:
                per_complexity = {}
                for complexity in COMPLEXITY_LEVELS:
                    records = [r for r in self.logger.filtered(model=model, backend=backend)
                               if r.complexity == complexity]
                    per_complexity[complexity] = (
                        sum(1 for r in records if r.passed) / len(records) if records else 0.0)
                table[model][backend] = per_complexity
        return table

    def error_type_counts(self, backend: str = "networkx") -> Dict[str, int]:
        """Paper Table 5 content for one backend."""
        return self.logger.error_type_counts(backend=backend)

    # ------------------------------------------------------------------
    def render_summary(self) -> str:
        rows = []
        summary = self.summary()
        for model in self.models:
            rows.append([model] + [summary[model][backend] for backend in self.backends])
        return format_table(["model"] + list(self.backends), rows,
                            title=f"Accuracy summary — {self.application}")

    def render_breakdown(self) -> str:
        rows = []
        breakdown = self.breakdown()
        for model in self.models:
            for backend in self.backends:
                cell = breakdown[model][backend]
                rows.append([model, backend] + [cell[c] for c in COMPLEXITY_LEVELS])
        return format_table(["model", "backend"] + list(COMPLEXITY_LEVELS), rows,
                            title=f"Accuracy by complexity — {self.application}")


class BenchmarkRunner:
    """Run NeMoEval end to end for one or both applications."""

    def __init__(self, config: Optional[BenchmarkConfig] = None) -> None:
        self.config = config or BenchmarkConfig()
        self.evaluator = ResultsEvaluator()
        self.goldens = GoldenAnswerSelector()

    # ------------------------------------------------------------------
    def run_query(self, application: NetworkApplication, query: BenchmarkQuery,
                  model: str, backend: str, attempt: int = 0,
                  feedback: Optional[str] = None) -> EvaluationRecord:
        """Run one (query, model, backend) cell and evaluate it."""
        provider = create_provider(model, calibration=self.config.calibration)
        pipeline = NetworkManagementPipeline(application, provider, backend)
        metadata = query.metadata(bucket_size(query.application, query.complexity))
        request = QueryRequest(query=query.text, backend=backend, metadata=metadata,
                               attempt=attempt, feedback=feedback)
        pipeline_result = pipeline.run(request)
        golden = self.goldens.golden_for(query, application.graph)
        return self.evaluator.evaluate(query, model, pipeline_result, golden,
                                       application.graph)

    # ------------------------------------------------------------------
    def run_application(self, application_name: str,
                        backends: Optional[Sequence[str]] = None,
                        models: Optional[Sequence[str]] = None) -> AccuracyReport:
        """Run every query of one application for all models and backends."""
        models = list(models or self.config.models)
        if backends is None:
            backends = TRAFFIC_BACKENDS if application_name == "traffic_analysis" else MALT_BACKENDS
        report = AccuracyReport(application=application_name, backends=list(backends),
                                models=models)

        if application_name == "traffic_analysis":
            main_application = self.config.traffic_application()
            strawman_application = self.config.strawman_application()
        else:
            main_application = self.config.malt_application()
            strawman_application = main_application

        for backend in backends:
            application = strawman_application if backend == "strawman" else main_application
            for query in queries_for(application_name):
                for model in models:
                    record = self.run_query(application, query, model, backend)
                    report.logger.log(record)
        return report

    def run_all(self) -> Dict[str, AccuracyReport]:
        """Run both applications (the full paper evaluation)."""
        return {
            "traffic_analysis": self.run_application("traffic_analysis"),
            "malt": self.run_application("malt"),
        }

    # ------------------------------------------------------------------
    # scenario sweeps
    # ------------------------------------------------------------------
    def run_scenario(self, spec, models: Optional[Sequence[str]] = None,
                     backends: Sequence[str] = ("networkx",),
                     queries: Optional[Sequence[BenchmarkQuery]] = None) -> AccuracyReport:
        """Run the query corpus against one scenario's replayed network state.

        The scenario (a :class:`repro.scenarios.ScenarioSpec` or a registered
        scenario name) is replayed through the event engine; the resulting
        graph becomes the application under test.  MALT-family scenarios run
        the MALT corpus, every other family runs the traffic corpus over the
        traffic-annotated graph.
        """
        from repro.scenarios.overlay import application_from_scenario, resolve_spec

        spec = resolve_spec(spec)
        application = application_from_scenario(spec)
        models = list(models or self.config.models)
        if queries is None:
            queries = queries_for("malt" if spec.family == "malt" else "traffic_analysis")
        report = AccuracyReport(application=f"scenario:{spec.name}",
                                backends=list(backends), models=models)
        for backend in backends:
            for query in queries:
                for model in models:
                    record = self.run_query(application, query, model, backend)
                    report.logger.log(record)
        return report

    def run_scenario_suite(self, suite=None, models: Optional[Sequence[str]] = None,
                           backends: Sequence[str] = ("networkx",),
                           queries: Optional[Sequence[BenchmarkQuery]] = None,
                           ) -> Dict[str, AccuracyReport]:
        """Sweep a whole scenario suite; scenario name -> accuracy report."""
        from repro.scenarios.suite import default_suite

        if suite is None:
            suite = default_suite()
        suite.validate()
        return {spec.name: self.run_scenario(spec, models=models, backends=backends,
                                             queries=queries)
                for spec in suite.scenarios}
