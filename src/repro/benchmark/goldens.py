"""The golden-answer selector (paper Figure 3, left box).

For each benchmark query the selector produces the verified golden outcome on
the evaluation graph: a value, an updated graph, or both.  Golden outcomes
are computed once per (query, graph) pair and cached, because the benchmark
runner evaluates the same query against four models and four backends.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.benchmark.queries import BenchmarkQuery, TemporalQuery
from repro.graph import PropertyGraph
from repro.synthesis.reference import (
    ReferenceOutcome,
    evaluate_reference,
    evaluate_temporal_reference,
)


@dataclass
class GoldenAnswer:
    """The verified outcome of one query on one evaluation graph."""

    query_id: str
    kind: str                                  # "value", "graph", or "both"
    value: Any = None
    graph: Optional[PropertyGraph] = None

    @property
    def expects_value(self) -> bool:
        return self.kind in ("value", "both")

    @property
    def expects_graph(self) -> bool:
        return self.kind in ("graph", "both")


class GoldenAnswerSelector:
    """Compute (and cache) golden answers for benchmark queries."""

    def __init__(self) -> None:
        # the cache key uses id(graph), but a garbage-collected graph's
        # address can be reused by a *different* graph (seen in
        # multi-scenario sweeps), which would silently serve a stale golden.
        # The weakref identity check rejects such recycled-address hits
        # without keeping every queried graph alive for the cache's lifetime.
        self._cache: Dict[Tuple[str, int],
                          Tuple["weakref.ref[PropertyGraph]", GoldenAnswer]] = {}

    def _prune_dead(self) -> int:
        """Drop entries whose graph has been garbage-collected.

        Without this sweep, multi-scenario runs grow the cache by one entry
        per (query, graph) pair forever: the weakref identity check rejects
        recycled-id hits but never *removes* the dead entry it rejected.
        Returns how many entries were evicted.
        """
        dead = [key for key, (ref, _) in self._cache.items() if ref() is None]
        for key in dead:
            del self._cache[key]
        return len(dead)

    def __len__(self) -> int:
        return len(self._cache)

    def golden_for(self, query: BenchmarkQuery, graph: PropertyGraph) -> GoldenAnswer:
        """The golden outcome of *query* evaluated on *graph*."""
        cache_key = (query.query_id, id(graph))
        cached = self._cache.get(cache_key)
        if cached is not None and cached[0]() is graph:
            return cached[1]
        # a miss either means a brand-new graph or a dead/recycled entry —
        # either way this is the moment to sweep out dead weakrefs so the
        # cache stays bounded by the number of *live* evaluation graphs
        self._prune_dead()
        outcome: ReferenceOutcome = evaluate_reference(graph, query.intent)
        golden = GoldenAnswer(
            query_id=query.query_id,
            kind=outcome.kind,
            value=outcome.value,
            graph=outcome.graph,
        )
        self._cache[cache_key] = (weakref.ref(graph), golden)
        return golden

    def expected_graph(self, golden: GoldenAnswer,
                       original: PropertyGraph) -> PropertyGraph:
        """The graph state the generated code should leave behind.

        For pure analysis queries the network state must be untouched, so the
        expected graph is the original; for manipulation queries it is the
        golden's updated graph.
        """
        if golden.expects_graph and golden.graph is not None:
            return golden.graph
        return original


class TemporalGoldenSelector:
    """Compute (and cache) golden answers for temporal queries.

    A temporal golden is a pure function of (query, timeline *content*), so
    the cache key is the timeline's determinism fingerprint — the tuple of
    its per-snapshot content digests — rather than an object identity.  Two
    replays of the same spec share cache entries, and a timeline with any
    differing snapshot can never serve a stale golden.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, Tuple[str, ...]], GoldenAnswer] = {}

    @staticmethod
    def fingerprint(timeline) -> Tuple[str, ...]:
        """The timeline's content identity (cached snapshot digests)."""
        return tuple(timeline.digests())

    def __len__(self) -> int:
        return len(self._cache)

    def golden_for(self, query: TemporalQuery, timeline) -> GoldenAnswer:
        """The golden outcome of *query* evaluated on *timeline*."""
        cache_key = (query.query_id, self.fingerprint(timeline))
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        outcome: ReferenceOutcome = evaluate_temporal_reference(timeline, query.intent)
        golden = GoldenAnswer(
            query_id=query.query_id,
            kind=outcome.kind,
            value=outcome.value,
            graph=outcome.graph,
        )
        self._cache[cache_key] = golden
        return golden
