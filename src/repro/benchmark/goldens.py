"""The golden-answer selector (paper Figure 3, left box).

For each benchmark query the selector produces the verified golden outcome on
the evaluation graph: a value, an updated graph, or both.  Golden outcomes
are computed once per (query, graph) pair and cached, because the benchmark
runner evaluates the same query against four models and four backends.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.benchmark.queries import BenchmarkQuery
from repro.graph import PropertyGraph
from repro.synthesis.reference import ReferenceOutcome, evaluate_reference


@dataclass
class GoldenAnswer:
    """The verified outcome of one query on one evaluation graph."""

    query_id: str
    kind: str                                  # "value", "graph", or "both"
    value: Any = None
    graph: Optional[PropertyGraph] = None

    @property
    def expects_value(self) -> bool:
        return self.kind in ("value", "both")

    @property
    def expects_graph(self) -> bool:
        return self.kind in ("graph", "both")


class GoldenAnswerSelector:
    """Compute (and cache) golden answers for benchmark queries."""

    def __init__(self) -> None:
        # the cache key uses id(graph), but a garbage-collected graph's
        # address can be reused by a *different* graph (seen in
        # multi-scenario sweeps), which would silently serve a stale golden.
        # The weakref identity check rejects such recycled-address hits
        # without keeping every queried graph alive for the cache's lifetime.
        self._cache: Dict[Tuple[str, int],
                          Tuple["weakref.ref[PropertyGraph]", GoldenAnswer]] = {}

    def golden_for(self, query: BenchmarkQuery, graph: PropertyGraph) -> GoldenAnswer:
        """The golden outcome of *query* evaluated on *graph*."""
        cache_key = (query.query_id, id(graph))
        cached = self._cache.get(cache_key)
        if cached is not None and cached[0]() is graph:
            return cached[1]
        outcome: ReferenceOutcome = evaluate_reference(graph, query.intent)
        golden = GoldenAnswer(
            query_id=query.query_id,
            kind=outcome.kind,
            value=outcome.value,
            graph=outcome.graph,
        )
        self._cache[cache_key] = (weakref.ref(graph), golden)
        return golden

    def expected_graph(self, golden: GoldenAnswer,
                       original: PropertyGraph) -> PropertyGraph:
        """The graph state the generated code should leave behind.

        For pure analysis queries the network state must be untouched, so the
        expected graph is the original; for manipulation queries it is the
        golden's updated graph.
        """
        if golden.expects_graph and golden.graph is not None:
            return golden.graph
        return original
