"""The results logger (paper Figure 3).

Collects every :class:`EvaluationRecord`, keeps the generated code and the
classification next to the verdict, and can render or persist the log for
later analysis — which is how the paper's authors derived their error-type
breakdown and their improvement case study.
"""

from __future__ import annotations

import json
import logging
import math
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.benchmark.errors import classify_error
from repro.benchmark.evaluator import EvaluationRecord
from repro.utils.tables import format_table

logger = logging.getLogger(__name__)


def accuracy_cell(value: float) -> Union[float, str]:
    """Render helper: an accuracy value, or ``n/a`` for no-data (NaN)."""
    return "n/a" if isinstance(value, float) and math.isnan(value) else value


class ResultsLogger:
    """Accumulate evaluation records and derive summaries from them."""

    def __init__(self) -> None:
        self._records: List[EvaluationRecord] = []

    # ------------------------------------------------------------------
    def log(self, record: EvaluationRecord) -> EvaluationRecord:
        """Record one evaluation (classifying its error type if it failed)."""
        if not record.passed and record.error_type is None:
            record.error_type = classify_error(record)
        self._records.append(record)
        return record

    def extend(self, records: Iterable[EvaluationRecord]) -> None:
        for record in records:
            self.log(record)

    @property
    def records(self) -> List[EvaluationRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    def filtered(self, model: Optional[str] = None, backend: Optional[str] = None,
                 application_prefix: Optional[str] = None,
                 passed: Optional[bool] = None) -> List[EvaluationRecord]:
        """Records matching every provided criterion."""
        selected = self._records
        if model is not None:
            selected = [r for r in selected if r.model == model]
        if backend is not None:
            selected = [r for r in selected if r.backend == backend]
        if application_prefix is not None:
            selected = [r for r in selected if r.query_id.startswith(application_prefix)]
        if passed is not None:
            selected = [r for r in selected if r.passed == passed]
        return list(selected)

    def accuracy(self, **filters) -> float:
        """Fraction of matching records that passed.

        An empty filter match returns ``nan`` — "no data" must stay
        distinguishable from "every matching record failed" (0.0), otherwise
        a filter typo reads as a catastrophic regression.  Renderers print
        NaN cells as ``n/a`` (see :func:`accuracy_cell`).
        """
        selected = self.filtered(**filters)
        if not selected:
            return float("nan")
        return sum(1 for record in selected if record.passed) / len(selected)

    def error_type_counts(self, **filters) -> Dict[str, int]:
        """Count failed records per Table-5 error type."""
        counts: Counter = Counter()
        for record in self.filtered(passed=False, **filters):
            counts[record.error_type or "unclassified"] += 1
        return dict(counts)

    def total_cost(self, **filters) -> float:
        """Total LLM cost (USD) over the matching records."""
        return sum(record.cost_usd for record in self.filtered(**filters))

    # ------------------------------------------------------------------
    def to_records(self) -> List[Dict[str, object]]:
        """JSON-serializable dump of the log."""
        dumped = []
        for record in self._records:
            dumped.append({
                "query_id": record.query_id,
                "model": record.model,
                "backend": record.backend,
                "complexity": record.complexity,
                "passed": record.passed,
                "failure_stage": record.failure_stage,
                "failure_reason": record.failure_reason,
                "error_type": record.error_type,
                "cost_usd": record.cost_usd,
                "prompt_tokens": record.prompt_tokens,
                "completion_tokens": record.completion_tokens,
                "generated_code": record.generated_code,
                "cached": record.cached,
            })
        return dumped

    def save(self, path) -> Path:
        """Write the full log as JSON to *path*."""
        path = Path(path)
        path.write_text(json.dumps(self.to_records(), indent=2, sort_keys=True),
                        encoding="utf-8")
        return path

    def render_summary(self) -> str:
        """Plain-text summary table (model x backend accuracy)."""
        pairs = sorted({(record.model, record.backend) for record in self._records})
        rows = []
        for model, backend in pairs:
            selected = self.filtered(model=model, backend=backend)
            passed = sum(1 for record in selected if record.passed)
            rows.append([model, backend, f"{passed}/{len(selected)}",
                         accuracy_cell(self.accuracy(model=model, backend=backend))])
        return format_table(["model", "backend", "passed", "accuracy"], rows,
                            title="Benchmark results")
