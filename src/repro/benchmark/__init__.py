"""NeMoEval — the benchmark of the paper (Figure 3).

Components:

* :mod:`repro.benchmark.queries` — the query corpus: 24 network-traffic-
  analysis queries and 9 MALT lifecycle-management queries, each with a
  complexity level ("easy"/"medium"/"hard"), a difficulty rank inside its
  complexity bucket, and a structured intent;
* :mod:`repro.benchmark.goldens` — the golden-answer selector, backed by the
  reference semantics in :mod:`repro.synthesis.reference`;
* :mod:`repro.benchmark.evaluator` — the results evaluator, comparing the
  outcome of executing LLM-generated code against the golden outcome;
* :mod:`repro.benchmark.errors` — the error classifier reproducing the
  taxonomy of paper Table 5 from observed execution behaviour;
* :mod:`repro.benchmark.logger` — the results logger;
* :mod:`repro.benchmark.runner` — the benchmark runner that regenerates the
  accuracy tables (paper Tables 2-4) and the error summary (Table 5).
"""

from repro.benchmark.queries import (
    BenchmarkQuery,
    TemporalQuery,
    traffic_queries,
    malt_queries,
    queries_for,
    query_by_id,
    temporal_queries,
    temporal_queries_for,
    temporal_query_by_id,
    temporal_scenario_names,
    COMPLEXITY_LEVELS,
)
from repro.benchmark.goldens import (
    GoldenAnswerSelector,
    GoldenAnswer,
    TemporalGoldenSelector,
)
from repro.benchmark.evaluator import ResultsEvaluator, EvaluationRecord, compare_values
from repro.benchmark.errors import classify_error, ERROR_TYPE_LABELS
from repro.benchmark.logger import ResultsLogger
from repro.benchmark.runner import (
    BenchmarkRunner,
    BenchmarkConfig,
    AccuracyReport,
    TemporalAccuracyReport,
)

__all__ = [
    "BenchmarkQuery",
    "TemporalQuery",
    "traffic_queries",
    "malt_queries",
    "queries_for",
    "query_by_id",
    "temporal_queries",
    "temporal_queries_for",
    "temporal_query_by_id",
    "temporal_scenario_names",
    "COMPLEXITY_LEVELS",
    "GoldenAnswerSelector",
    "GoldenAnswer",
    "TemporalGoldenSelector",
    "ResultsEvaluator",
    "EvaluationRecord",
    "compare_values",
    "classify_error",
    "ERROR_TYPE_LABELS",
    "ResultsLogger",
    "BenchmarkRunner",
    "BenchmarkConfig",
    "AccuracyReport",
    "TemporalAccuracyReport",
]
