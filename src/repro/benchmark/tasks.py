"""Benchmark cells as execution-fabric tasks.

One task is one (application, backend, query, model) cell of the accuracy
grid.  The payload carries the full benchmark config plus an *application
context* describing which network state the cell runs against — a generated
application, the small strawman variant, or a replayed scenario.  Workers
rebuild that state deterministically and memoize it per process via
:func:`repro.exec.workers.worker_context`, so a chunk of cells sharing a
context (same shard group) pays the rebuild once.

Cell purity is inherited from the stack: topology generators, scenario
replay, providers, and goldens are all pure functions of their inputs, which
is what lets serial and parallel sweeps produce byte-identical tables and
lets results be cached by content digest.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.benchmark.queries import query_by_id, temporal_query_by_id
from repro.exec.task import Task
from repro.exec.workers import worker_context
from repro.obs import span
from repro.utils.hashing import stable_hash

#: dotted-path reference resolved inside worker processes
BENCHMARK_CELL_WORKER = "repro.benchmark.tasks:run_benchmark_cell"
TEMPORAL_CELL_WORKER = "repro.benchmark.tasks:run_temporal_cell"


def benchmark_cell_task(report_name: str, config_payload: Dict[str, Any],
                        app_context: Dict[str, Any], backend: str,
                        query_id: str, model: str) -> Task:
    """Describe one accuracy-grid cell as a fabric task.

    *app_context* is one of::

        {"kind": "generated", "application": "traffic_analysis" | "malt"}
        {"kind": "strawman"}
        {"kind": "scenario", "spec": <ScenarioSpec dict>}
    """
    return Task(
        key=f"bench/{report_name}/{backend}/{query_id}/{model}",
        fn=BENCHMARK_CELL_WORKER,
        payload={
            "config": config_payload,
            "app": app_context,
            "backend": backend,
            "query_id": query_id,
            "model": model,
        },
        # one group per network state: cells sharing it chunk together and
        # reuse the worker-process application memo
        group=f"{report_name}/{app_context['kind']}"
              + (f"/{app_context['spec']['name']}" if app_context["kind"] == "scenario" else ""),
    )


def _build_application(config_payload: Dict[str, Any], app_context: Dict[str, Any]):
    from repro.benchmark.runner import BenchmarkConfig

    config = BenchmarkConfig.from_payload(config_payload)
    kind = app_context["kind"]
    if kind == "scenario":
        from repro.scenarios.overlay import application_from_scenario
        from repro.scenarios.spec import ScenarioSpec

        return application_from_scenario(ScenarioSpec.from_dict(app_context["spec"]))
    if kind == "strawman":
        return config.strawman_application()
    if app_context["application"] == "malt":
        return config.malt_application()
    return config.traffic_application()


# ---------------------------------------------------------------------------
# temporal cells
# ---------------------------------------------------------------------------
def temporal_cell_task(config_payload: Dict[str, Any], spec_dict: Dict[str, Any],
                       query_id: str, model: str,
                       backend: str = "direct") -> Task:
    """Describe one temporal-accuracy cell as a fabric task.

    *backend* selects the answering path: ``direct`` (answer straight from
    the replayed timeline) or a timeline-aware codegen backend
    (``frames``/``networkx``) whose emitted program runs in the sandbox.
    The payload round-trips through JSON (spec dicts, config dumps), so
    temporal cells cross process boundaries and participate in the
    content-keyed result cache exactly like static benchmark cells.
    """
    scenario = spec_dict["name"]
    return Task(
        key=f"bench/temporal/{scenario}/{backend}/{query_id}/{model}",
        fn=TEMPORAL_CELL_WORKER,
        payload={
            "config": config_payload,
            "spec": spec_dict,
            "query_id": query_id,
            "model": model,
            "backend": backend,
        },
        # one group per scenario: cells sharing a timeline chunk together
        # and replay (and serialize) it once per worker process
        group=f"temporal/{scenario}",
    )


def _replay_timeline(spec_dict: Dict[str, Any]):
    from repro.scenarios.engine import replay_scenario
    from repro.scenarios.spec import ScenarioSpec

    return replay_scenario(ScenarioSpec.from_dict(spec_dict))


def _corrupt(value: Any) -> Any:
    """A deterministic wrong answer of last resort, shaped like *value*."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, (int, float)):
        return value + 1
    if isinstance(value, list):
        return list(value[:-1]) if value else [["phantom-node", "phantom-peer"]]
    if isinstance(value, dict):
        return ({key: _corrupt(item) for key, item in value.items()}
                if value else {"phantom": 1})
    if value is None:
        return 0.0
    return None


def _stale_answer(timeline, query, golden_value: Any) -> Any:
    """The answer a failing model produces: a stale/mis-anchored replay.

    Models that get temporal questions wrong typically reason over the wrong
    point in time, so the simulated fault re-evaluates the same reference
    semantics with every referenced timestamp shifted earlier — or, for
    whole-timeline questions, over a replay missing its newest snapshots.
    The shift widens until the answer actually *differs* from the golden
    (a mis-anchored answer that coincides with the truth is not a failure),
    corrupting the golden value as a last resort; every step is
    deterministic, so serial and parallel sweeps stay byte-identical.
    """
    from repro.benchmark.queries import TIME_PARAMS
    from repro.llm.faults import TemporalFaultInjector
    from repro.scenarios.engine import ScenarioTimeline
    from repro.synthesis.reference import evaluate_temporal_reference

    times = timeline.times()
    time_keys = [key for key, value in query.intent.params
                 if key in TIME_PARAMS and value is not None]
    if time_keys:
        injector = TemporalFaultInjector()
        for shift in range(1, len(times)):
            intent = injector.misanchored_intent(query.intent, times, shift)
            value = evaluate_temporal_reference(timeline, intent).value
            if value != golden_value:
                return value
    else:
        for cut in range(1, len(timeline.snapshots)):
            stale = ScenarioTimeline(scenario_name=timeline.scenario_name,
                                     snapshots=timeline.snapshots[:-cut])
            value = evaluate_temporal_reference(stale, query.intent).value
            if value != golden_value:
                return value
    return _corrupt(golden_value)


def _faulty_temporal_program(timeline, query, backend: str, golden_value: Any,
                             engine, calibration, model: str):
    """The (code, fault label) a failing codegen model emits.

    The fault type is drawn from the calibration table and honoured where
    the intent's shape allows (mis-anchoring needs a bound time parameter);
    data-level faults escalate deterministically until the broken program's
    answer actually *differs* from the golden (a mis-anchored program that
    lands on the truth is not a failure), trying the other data fault next
    and falling back to a crashing program — which always fails — when no
    data fault can surface a difference.
    """
    from repro.benchmark.queries import TIME_PARAMS
    from repro.llm.faults import TemporalFaultInjector, TemporalFaultType
    from repro.scenarios.engine import ScenarioTimeline
    from repro.synthesis.reference import evaluate_temporal_reference

    injector = TemporalFaultInjector()
    preferred = calibration.temporal_fault_type_for(query.query_id, model, backend)
    attempts = {
        TemporalFaultType.MISANCHORED_SNAPSHOT.value: (
            TemporalFaultType.MISANCHORED_SNAPSHOT.value,
            TemporalFaultType.OFF_BY_ONE_WINDOW.value),
        TemporalFaultType.OFF_BY_ONE_WINDOW.value: (
            TemporalFaultType.OFF_BY_ONE_WINDOW.value,
            TemporalFaultType.MISANCHORED_SNAPSHOT.value),
        TemporalFaultType.RUNTIME_CRASH.value: (),
    }[preferred]
    times = timeline.times()
    time_keys = [key for key, value in query.intent.params
                 if key in TIME_PARAMS and value is not None]
    for fault in attempts:
        if fault == TemporalFaultType.MISANCHORED_SNAPSHOT.value and time_keys:
            # wrong snapshot anchoring: shift every referenced time earlier
            for shift in range(1, len(times)):
                intent = injector.misanchored_intent(query.intent, times, shift)
                if evaluate_temporal_reference(timeline, intent).value != golden_value:
                    code = engine.generate_temporal(intent, backend).code
                    return code, f"misanchored_snapshot(shift={shift})"
        elif fault == TemporalFaultType.OFF_BY_ONE_WINDOW.value:
            # reason over a delta window missing its newest snapshots
            for cut in range(1, len(timeline.snapshots)):
                stale = ScenarioTimeline(scenario_name=timeline.scenario_name,
                                         snapshots=timeline.snapshots[:-cut])
                if evaluate_temporal_reference(stale, query.intent).value != golden_value:
                    code = (injector.truncation_prelude(cut)
                            + engine.generate_temporal(query.intent, backend).code)
                    return code, f"off_by_one_window(cut={cut})"
    return injector.crash_code(), TemporalFaultType.RUNTIME_CRASH.value


def run_temporal_cell(payload: Dict[str, Any]):
    """Worker: answer one temporal query and return its verdict.

    The timeline replay (and, for codegen backends, its serialized form) is
    memoized per process — cells of one scenario chunk together via their
    shard group — and the golden is served by a memoized
    :class:`~repro.benchmark.goldens.TemporalGoldenSelector` keyed on the
    timeline's snapshot digests.

    The ``direct`` backend answers from the timeline (the strawman-like
    path); ``frames``/``networkx`` run the full pipeline — emit a
    timeline-aware program, execute it in the sandbox against the serialized
    snapshot sequence, and evaluate whatever the program leaves in
    ``result``.  Sandbox failures are recorded as ``execute``-stage faults.
    """
    from repro.benchmark.evaluator import ResultsEvaluator
    from repro.benchmark.goldens import TemporalGoldenSelector
    from repro.benchmark.queries import temporal_bucket_size
    from repro.llm.calibration import CalibrationTable, DEFAULT_CALIBRATION

    backend = payload.get("backend", "direct")
    spec_hash = stable_hash(payload["spec"])
    timeline = worker_context(
        ("scenario-timeline", spec_hash),
        lambda: _replay_timeline(payload["spec"]))
    selector = worker_context(("temporal-golden-selector",), TemporalGoldenSelector)

    query = temporal_query_by_id(payload["query_id"])
    model = payload["model"]
    with span("benchmark.golden", attrs={"query": query.query_id}):
        golden = selector.golden_for(query, timeline)

    calibration = DEFAULT_CALIBRATION
    if payload["config"].get("calibration") is not None:
        calibration = CalibrationTable.from_dict(payload["config"]["calibration"])
    # temporal cells calibrate against the traffic-analysis table: the
    # direct path uses the strawman column, codegen backends use their
    # representation's column (see CalibrationTable.temporal_passes)
    intended_correct = calibration.temporal_passes(
        model, backend, query.complexity, query.difficulty_rank,
        temporal_bucket_size(query.complexity))

    anchor = query.anchor_time
    snapshot = (timeline.snapshots[-1] if anchor is None
                else timeline.snapshot_at(anchor))
    details = {
        "anchor_time": snapshot.time,
        "snapshot_digest": snapshot.digest,
        "intended_correct": intended_correct,
    }
    evaluator = ResultsEvaluator()

    if backend == "direct":
        answer = (golden.value if intended_correct
                  else _stale_answer(timeline, query, golden.value))
        with span("benchmark.evaluate", attrs={"query": query.query_id,
                                               "backend": backend}):
            return evaluator.evaluate_temporal(query, model, answer, golden,
                                               details=details, backend=backend)

    # codegen backends: emit, sandbox-execute, evaluate.  The serialized
    # timeline is parsed once per process (graphs treated as immutable);
    # each cell only pays the per-backend namespace conversion.
    from repro.scenarios.engine import timeline_to_dict
    from repro.synthesis import CodeSynthesisEngine
    from repro.synthesis.temporal import parse_timeline_payload, run_temporal_program

    parsed_timeline = worker_context(
        ("scenario-timeline-parsed", spec_hash),
        lambda: parse_timeline_payload(timeline_to_dict(timeline)))
    engine = worker_context(("synthesis-engine",), CodeSynthesisEngine)

    if intended_correct:
        code = engine.generate_temporal(query.intent, backend).code
    else:
        code, fault_label = _faulty_temporal_program(
            timeline, query, backend, golden.value, engine, calibration, model)
        details["fault"] = fault_label

    outcome = run_temporal_program(code, parsed_timeline, backend)
    with span("benchmark.evaluate", attrs={"query": query.query_id,
                                           "backend": backend}):
        if outcome.failed:
            return evaluator.evaluate_temporal(
                query, model, None, golden, details=details, backend=backend,
                generated_code=code,
                execution_error=(outcome.error_type, outcome.error_message))
        return evaluator.evaluate_temporal(
            query, model, outcome.result, golden, details=details,
            backend=backend, generated_code=code)


def run_benchmark_cell(payload: Dict[str, Any]):
    """Worker: run one cell and return its :class:`EvaluationRecord`."""
    from repro.benchmark.runner import BenchmarkConfig, BenchmarkRunner

    latency = payload["config"].get("simulated_api_latency_s") or 0.0
    if latency:
        time.sleep(latency)  # model the hosted provider's round trip
    context_key = ("benchmark-application",
                   stable_hash(payload["config"], payload["app"]))
    application = worker_context(
        context_key, lambda: _build_application(payload["config"], payload["app"]))
    # memoize the runner per config so its golden-answer cache spans every
    # cell of this process — goldens compute once per (query, graph), not
    # once per (backend, model)
    runner = worker_context(
        ("benchmark-runner", stable_hash(payload["config"])),
        lambda: BenchmarkRunner(BenchmarkConfig.from_payload(payload["config"])))
    query = query_by_id(payload["query_id"])
    return runner.run_query(application, query, payload["model"], payload["backend"])
