"""Benchmark cells as execution-fabric tasks.

One task is one (application, backend, query, model) cell of the accuracy
grid.  The payload carries the full benchmark config plus an *application
context* describing which network state the cell runs against — a generated
application, the small strawman variant, or a replayed scenario.  Workers
rebuild that state deterministically and memoize it per process via
:func:`repro.exec.workers.worker_context`, so a chunk of cells sharing a
context (same shard group) pays the rebuild once.

Cell purity is inherited from the stack: topology generators, scenario
replay, providers, and goldens are all pure functions of their inputs, which
is what lets serial and parallel sweeps produce byte-identical tables and
lets results be cached by content digest.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.benchmark.queries import query_by_id
from repro.exec.task import Task
from repro.exec.workers import worker_context
from repro.utils.hashing import stable_hash

#: dotted-path reference resolved inside worker processes
BENCHMARK_CELL_WORKER = "repro.benchmark.tasks:run_benchmark_cell"


def benchmark_cell_task(report_name: str, config_payload: Dict[str, Any],
                        app_context: Dict[str, Any], backend: str,
                        query_id: str, model: str) -> Task:
    """Describe one accuracy-grid cell as a fabric task.

    *app_context* is one of::

        {"kind": "generated", "application": "traffic_analysis" | "malt"}
        {"kind": "strawman"}
        {"kind": "scenario", "spec": <ScenarioSpec dict>}
    """
    return Task(
        key=f"bench/{report_name}/{backend}/{query_id}/{model}",
        fn=BENCHMARK_CELL_WORKER,
        payload={
            "config": config_payload,
            "app": app_context,
            "backend": backend,
            "query_id": query_id,
            "model": model,
        },
        # one group per network state: cells sharing it chunk together and
        # reuse the worker-process application memo
        group=f"{report_name}/{app_context['kind']}"
              + (f"/{app_context['spec']['name']}" if app_context["kind"] == "scenario" else "")
              + ("/strawman" if app_context["kind"] == "strawman" else ""),
    )


def _build_application(config_payload: Dict[str, Any], app_context: Dict[str, Any]):
    from repro.benchmark.runner import BenchmarkConfig

    config = BenchmarkConfig.from_payload(config_payload)
    kind = app_context["kind"]
    if kind == "scenario":
        from repro.scenarios.overlay import application_from_scenario
        from repro.scenarios.spec import ScenarioSpec

        return application_from_scenario(ScenarioSpec.from_dict(app_context["spec"]))
    if kind == "strawman":
        return config.strawman_application()
    if app_context["application"] == "malt":
        return config.malt_application()
    return config.traffic_application()


def run_benchmark_cell(payload: Dict[str, Any]):
    """Worker: run one cell and return its :class:`EvaluationRecord`."""
    from repro.benchmark.runner import BenchmarkConfig, BenchmarkRunner

    latency = payload["config"].get("simulated_api_latency_s") or 0.0
    if latency:
        time.sleep(latency)  # model the hosted provider's round trip
    context_key = ("benchmark-application",
                   stable_hash(payload["config"], payload["app"]))
    application = worker_context(
        context_key, lambda: _build_application(payload["config"], payload["app"]))
    runner = BenchmarkRunner(BenchmarkConfig.from_payload(payload["config"]))
    query = query_by_id(payload["query_id"])
    return runner.run_query(application, query, payload["model"], payload["backend"])
