"""The results evaluator (paper Figure 3, right box).

The evaluator executes nothing itself — it receives the
:class:`~repro.core.pipeline.PipelineResult` of running LLM-generated code
and compares the outcome against the golden answer:

* analysis queries: the produced value must match the golden value, and the
  network state must be untouched;
* manipulation queries: the resulting graph must equal the golden graph;
* queries with both a value and a state change check both.

Because the three backends return results in different shapes (Python
objects, dataframes, SQL result sets), :func:`compare_values` normalizes the
generated result into the golden value's shape before comparing — e.g. a
two-column result set is matched against a golden dict, a single column
against a golden list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.benchmark.goldens import GoldenAnswer
from repro.benchmark.queries import BenchmarkQuery, TemporalQuery
from repro.core.pipeline import PipelineResult
from repro.frames import DataFrame, Series
from repro.graph import PropertyGraph, diff_graphs
from repro.graph.diff import values_equal
from repro.sqlengine import ResultSet


@dataclass
class EvaluationRecord:
    """The verdict for one (query, model, backend) execution."""

    query_id: str
    model: str
    backend: str
    complexity: str
    passed: bool
    failure_stage: Optional[str] = None     # "llm", "extract", "execute", "compare"
    failure_reason: Optional[str] = None
    error_type: Optional[str] = None        # Table-5 taxonomy label, set by the classifier
    cost_usd: float = 0.0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    generated_code: str = ""
    details: Dict[str, Any] = field(default_factory=dict)
    #: whether this record was served from the fabric's result cache rather
    #: than recomputed — telemetry threaded in by the runner after dispatch,
    #: never part of the cached entry itself or of any accuracy table
    cached: bool = False


# ---------------------------------------------------------------------------
# value normalization and comparison
# ---------------------------------------------------------------------------
def _records_from_table(columns: List[str], records: List[Dict[str, Any]]) -> List[List[Any]]:
    return [[record.get(column) for column in columns] for record in records]


def _normalize(value: Any) -> Any:
    """Convert backend-specific containers into plain Python structures."""
    if isinstance(value, ResultSet):
        return {"__table__": True, "columns": list(value.columns),
                "records": value.to_records()}
    if isinstance(value, DataFrame):
        return {"__table__": True, "columns": list(value.columns),
                "records": value.to_records()}
    if isinstance(value, Series):
        return list(value.values)
    if isinstance(value, tuple):
        return [_normalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_normalize(item) for item in value)
    if isinstance(value, list):
        return [_normalize(item) for item in value]
    if isinstance(value, dict):
        return {key: _normalize(item) for key, item in value.items()}
    return value


def normalize_value(value: Any) -> Any:
    """Public alias of :func:`_normalize` — the shape answers travel in.

    The facade (:mod:`repro.api`) and the serve layer return answer values
    in this golden-normalized form so an HTTP response, a CLI table, and a
    batch result log can never disagree about container shapes.
    """
    return _normalize(value)


def _is_table(value: Any) -> bool:
    return isinstance(value, dict) and value.get("__table__") is True


def compare_values(expected: Any, actual: Any, float_tolerance: float = 1e-6) -> bool:
    """Compare a golden value against a backend-produced value.

    The golden value's shape drives the coercion applied to the generated
    value (tables collapse to dicts, columns, scalars, or row lists).
    """
    expected = _normalize(expected)
    actual = _normalize(actual)

    if _is_table(actual):
        columns = actual["columns"]
        records = actual["records"]
        rows = _records_from_table(columns, records)
        if isinstance(expected, dict):
            if len(columns) >= 2:
                actual = {row[0]: row[1] for row in rows}
            else:
                return False
        elif isinstance(expected, list):
            if expected and isinstance(expected[0], list):
                actual = [row[: len(expected[0])] for row in rows]
            elif (len(rows) == 1 and len(expected) > 1
                  and len(rows[0]) == len(expected)):
                # a single multi-column row matched against a flat golden list
                # (e.g. "return the source and target addresses")
                actual = rows[0]
            else:
                actual = [row[0] for row in rows]
        elif len(rows) == 1 and len(columns) == 1:
            actual = rows[0][0]
        else:
            actual = rows

    if isinstance(expected, dict) and isinstance(actual, dict):
        if set(expected) != set(actual):
            return False
        return all(values_equal(expected[key], actual[key], float_tolerance)
                   for key in expected)
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return False
        return all(compare_values(e, a, float_tolerance) for e, a in zip(expected, actual))
    return values_equal(expected, actual, float_tolerance)


# ---------------------------------------------------------------------------
# the evaluator
# ---------------------------------------------------------------------------
class ResultsEvaluator:
    """Compare pipeline results against golden answers."""

    def __init__(self, float_tolerance: float = 1e-6) -> None:
        self.float_tolerance = float_tolerance

    def evaluate(self, query: BenchmarkQuery, model: str,
                 pipeline_result: PipelineResult, golden: GoldenAnswer,
                 original_graph: PropertyGraph) -> EvaluationRecord:
        """Produce the pass/fail verdict for one execution."""
        record = EvaluationRecord(
            query_id=query.query_id,
            model=model,
            backend=pipeline_result.request.backend,
            complexity=query.complexity,
            passed=False,
            generated_code=pipeline_result.code,
        )
        if pipeline_result.response is not None:
            record.cost_usd = pipeline_result.response.cost_usd
            record.prompt_tokens = pipeline_result.response.prompt_tokens
            record.completion_tokens = pipeline_result.response.completion_tokens
            record.details["response_metadata"] = dict(pipeline_result.response.metadata)

        if not pipeline_result.succeeded:
            record.failure_stage = pipeline_result.error_stage
            record.failure_reason = pipeline_result.error_message
            if pipeline_result.execution is not None:
                record.details["error_type"] = pipeline_result.execution.error_type
                record.details["error_message"] = pipeline_result.execution.error_message
            return record

        # value check -----------------------------------------------------
        if golden.expects_value:
            if not compare_values(golden.value, pipeline_result.result_value,
                                  self.float_tolerance):
                record.failure_stage = "compare"
                record.failure_reason = "result value does not match the golden answer"
                record.details["expected_value"] = _normalize(golden.value)
                record.details["actual_value"] = _normalize(pipeline_result.result_value)
                return record

        # graph-state check ------------------------------------------------
        expected_graph = golden.graph if (golden.expects_graph and golden.graph is not None) \
            else original_graph
        actual_graph = pipeline_result.updated_graph
        if golden.expects_graph and actual_graph is None:
            record.failure_stage = "compare"
            record.failure_reason = "the query requires a state change but no graph was produced"
            return record
        if actual_graph is not None:
            diff = diff_graphs(expected_graph, actual_graph, self.float_tolerance)
            if not diff.is_empty:
                record.failure_stage = "compare"
                record.failure_reason = f"graphs are not identical: {diff.summary()}"
                record.details["graph_diff"] = diff.summary()
                return record

        record.passed = True
        return record

    # ------------------------------------------------------------------
    def evaluate_temporal(self, query: TemporalQuery, model: str, answer: Any,
                          golden: GoldenAnswer,
                          details: Optional[Dict[str, Any]] = None,
                          backend: str = "direct",
                          generated_code: str = "",
                          execution_error: Optional[Tuple[str, str]] = None,
                          ) -> EvaluationRecord:
        """Produce the verdict for one temporal-query answer.

        *backend* is the answering path: ``direct`` (the model answers
        straight from the replayed timeline; a pure value comparison) or a
        codegen backend (``frames``/``networkx``), where *generated_code*
        ran in the sandbox.  A sandbox failure arrives as *execution_error*
        — an ``(error_type, error_message)`` pair — and is recorded as an
        ``execute``-stage fault rather than compared.
        """
        record = EvaluationRecord(
            query_id=query.query_id,
            model=model,
            backend=backend,
            complexity=query.complexity,
            passed=False,
            generated_code=generated_code,
        )
        record.details.update(details or {})
        record.details["scenario"] = query.scenario
        if execution_error is not None:
            error_type, error_message = execution_error
            record.failure_stage = "execute"
            record.failure_reason = f"{error_type}: {error_message}"
            record.details["error_type"] = error_type
            record.details["error_message"] = error_message
            return record
        if not compare_values(golden.value, answer, self.float_tolerance):
            record.failure_stage = "compare"
            record.failure_reason = ("temporal result value does not match "
                                     "the golden answer")
            record.details["expected_value"] = _normalize(golden.value)
            record.details["actual_value"] = _normalize(answer)
            return record
        record.passed = True
        return record
