"""Core machinery of the invariant checker: rules, findings, suppressions.

The checker is deliberately boring infrastructure: a registry of
:class:`Rule` objects, a per-file driver that parses once and hands the same
:class:`FileContext` to every applicable rule, and a tree driver that walks a
package in sorted order (the checker must itself be deterministic).  The
interesting logic lives in the rule modules
(:mod:`repro.analysis.determinism`, :mod:`repro.analysis.obs_inertness`,
:mod:`repro.analysis.templates`).

Suppressions use an explicit, greppable marker::

    recency = (time.time_ns(), next(_STORE_COUNTER))  # repro: allow[det-wallclock]

A marker on the finding line or on the line directly above it silences that
rule for that line only — there is no file-level or block-level escape
hatch, so every accepted violation stays visible at its site.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.utils.validation import ValidationError

#: finding severities, in increasing order of gravity
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"
SEVERITIES = (SEVERITY_WARNING, SEVERITY_ERROR)

#: suppression marker: ``# repro: allow[rule-id]`` or ``allow[a, b]``
_ALLOW_PATTERN = re.compile(r"#\s*repro:\s*allow\[([a-z0-9_,\s\-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    suggestion: Optional[str] = None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suggestion:
            payload["suggestion"] = self.suggestion
        return payload


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file.

    ``relpath`` is the scope path — the file's posix path relative to the
    scanned package root (e.g. ``exec/cache.py``) — which rule scopes match
    against.  ``display_path`` is what findings print.
    """

    path: Path
    relpath: str
    display_path: str
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    def finding(self, rule: "Rule", node: Optional[ast.AST], message: str,
                suggestion: Optional[str] = None, line: Optional[int] = None,
                col: Optional[int] = None) -> Finding:
        """Build a finding anchored at *node* (or an explicit line/col)."""
        return Finding(
            rule_id=rule.id,
            severity=rule.severity,
            path=self.display_path,
            line=line if line is not None else getattr(node, "lineno", 1),
            col=col if col is not None else getattr(node, "col_offset", 0),
            message=message,
            suggestion=suggestion or rule.suggestion,
        )


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    id: str
    severity: str
    description: str
    check: Callable[["Rule", FileContext], Iterable[Finding]]
    scope: Optional[Tuple[str, ...]] = None
    suggestion: Optional[str] = None

    def applies(self, relpath: str) -> bool:
        if self.scope is None:
            return True
        return any(relpath == prefix or relpath.startswith(prefix)
                   for prefix in self.scope)


_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, *, severity: str, description: str,
         scope: Optional[Sequence[str]] = None,
         suggestion: Optional[str] = None) -> Callable:
    """Decorator registering a check function as a :class:`Rule`.

    The decorated function receives ``(rule, context)`` and yields
    :class:`Finding` objects; suppression filtering happens in the driver.
    """
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def decorator(fn: Callable[[Rule, FileContext], Iterable[Finding]]) -> Callable:
        if rule_id in _REGISTRY:
            raise ValueError(f"rule {rule_id!r} registered twice")
        _REGISTRY[rule_id] = Rule(
            id=rule_id, severity=severity, description=description,
            check=fn, scope=tuple(scope) if scope is not None else None,
            suggestion=suggestion)
        return fn
    return decorator


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (stable report order)."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def get_rules(rule_ids: Optional[Iterable[str]] = None) -> List[Rule]:
    """Resolve a rule-id selection, or all rules when *rule_ids* is None."""
    if rule_ids is None:
        return all_rules()
    selected = []
    for rule_id in rule_ids:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise ValidationError(f"unknown rule {rule_id!r} (known rules: {known})")
        selected.append(_REGISTRY[rule_id])
    return sorted(selected, key=lambda r: r.id)


# ---------------------------------------------------------------------------
# suppression handling
# ---------------------------------------------------------------------------
def suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids allowed on that line."""
    allowed: Dict[int, Set[str]] = {}
    for index, text in enumerate(lines, start=1):
        match = _ALLOW_PATTERN.search(text)
        if match:
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            allowed[index] = ids
    return allowed


def _is_suppressed(finding: Finding, allowed: Dict[int, Set[str]]) -> bool:
    for line in (finding.line, finding.line - 1):
        ids = allowed.get(line)
        if ids and finding.rule_id in ids:
            return True
    return False


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------
def load_context(path: Path, relpath: Optional[str] = None) -> FileContext:
    """Parse *path* into a :class:`FileContext` (raises on syntax errors)."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    try:
        display = str(path.relative_to(Path.cwd()))
    except ValueError:
        display = str(path)
    return FileContext(
        path=path,
        relpath=relpath if relpath is not None else path.name,
        display_path=display,
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )


def analyze_file(path: Path, rules: Optional[Sequence[Rule]] = None,
                 relpath: Optional[str] = None) -> List[Finding]:
    """Run every applicable rule over one file, honouring suppressions."""
    active = list(rules) if rules is not None else all_rules()
    try:
        context = load_context(path, relpath=relpath)
    except SyntaxError as error:
        return [Finding(
            rule_id="parse-error", severity=SEVERITY_ERROR, path=str(path),
            line=error.lineno or 1, col=error.offset or 0,
            message=f"file does not parse: {error.msg}")]
    allowed = suppressions(context.lines)
    findings: List[Finding] = []
    for active_rule in active:
        if not active_rule.applies(context.relpath):
            continue
        for finding in active_rule.check(active_rule, context):
            if not _is_suppressed(finding, allowed):
                findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def iter_tree(root: Path) -> Iterator[Tuple[Path, str]]:
    """Yield ``(path, relpath)`` for every python file under *root*, sorted."""
    root = Path(root)
    if root.is_file():
        yield root, root.name
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path, path.relative_to(root).as_posix()


def analyze_tree(root: Path, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run the checker over a whole package tree."""
    findings: List[Finding] = []
    for path, relpath in iter_tree(root):
        findings.extend(analyze_file(path, rules=rules, relpath=relpath))
    return sorted(findings, key=Finding.sort_key)


def has_errors(findings: Iterable[Finding]) -> bool:
    return any(f.severity == SEVERITY_ERROR for f in findings)
