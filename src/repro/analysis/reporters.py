"""Render checker findings for humans and for CI (JSON)."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.framework import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    Rule,
)


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    return {
        "errors": sum(1 for f in findings if f.severity == SEVERITY_ERROR),
        "warnings": sum(1 for f in findings if f.severity == SEVERITY_WARNING),
        "total": len(findings),
    }


def render_human(findings: Sequence[Finding], rules: Sequence[Rule],
                 show_suggestions: bool = False) -> str:
    """One line per finding, ruff-style, plus a closing summary."""
    lines: List[str] = []
    for finding in findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.col}: "
                     f"[{finding.severity}] {finding.rule_id}: {finding.message}")
        if show_suggestions and finding.suggestion:
            lines.append(f"    fix: {finding.suggestion}")
    counts = summarize(findings)
    if counts["total"] == 0:
        lines.append(f"repro analyze: clean ({len(rules)} rules)")
    else:
        lines.append(f"repro analyze: {counts['errors']} error(s), "
                     f"{counts['warnings']} warning(s) "
                     f"({len(rules)} rules)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], rules: Sequence[Rule]) -> str:
    """Stable JSON document for the CI artifact."""
    document = {
        "findings": [f.to_dict() for f in findings],
        "summary": summarize(findings),
        "rules": [
            {"id": r.id, "severity": r.severity, "description": r.description}
            for r in rules
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
