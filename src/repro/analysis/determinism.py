"""Determinism rules for fabric-worker and digest-path modules.

The execution fabric promises that a sweep run serially and a sweep run with
``--jobs N`` produce byte-identical artifacts.  That promise rests on worker
code being a pure function of its payload and on every serialization that
feeds a digest being canonical.  These rules flag the classic ways that
promise quietly breaks: filesystem enumeration order, set iteration order,
wall-clock reads, the process-global RNG, per-process object identity, and
non-canonical JSON.

Scope is intentionally narrow — the modules that run inside workers or feed
``Task.digest()`` / cache keys — so that, e.g., the CLI printing a timestamp
is not a finding but a worker reading one is.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis import astutil, effects
from repro.analysis.framework import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    FileContext,
    Finding,
    Rule,
    rule,
)

#: modules that run inside sweep workers or feed digests/cache keys;
#: ``api.py`` hosts the facade's worker (``run_api_cell``), ``serve/``
#: answers concurrent requests through it, and ``obs/`` rides along inside
#: workers (spans/metrics merge into result envelopes), so all inherit the
#: contract
DETERMINISM_SCOPE = (
    "exec/",
    "api.py",
    "benchmark/tasks.py",
    "cost/tasks.py",
    "scenarios/engine.py",
    "graph/",
    "serve/",
    "obs/",
)

#: canonical-JSON scope: everywhere a ``json.dumps`` lands in an artifact a
#: reproduced run is diffed against (result logs, strawman answers, digest
#: material), not just the worker modules
JSON_SCOPE = DETERMINISM_SCOPE + (
    "benchmark/logger.py",
    "synthesis/engine.py",
    "techniques/",
)

# the pattern tables are shared with the interprocedural effect engine
# (repro.analysis.effects seeds its lattice from the same sets), so a
# pattern added there tightens both the flat and the transitive checks
_LISTING_CALLS = effects.LISTING_CALLS
_WALLCLOCK_CALLS = effects.WALLCLOCK_CALLS
_GLOBAL_RANDOM_FUNCS = effects.GLOBAL_RANDOM_FUNCS


def _sorted_wrapped_args(tree: ast.AST) -> Set[int]:
    """ids of AST nodes inside the first argument of any ``sorted(...)``."""
    return effects.sorted_wrapped_ids(list(ast.walk(tree)))


@rule("det-unsorted-listing", severity=SEVERITY_ERROR, scope=DETERMINISM_SCOPE,
      description="directory enumeration whose order reaches the caller unsorted",
      suggestion="wrap the enumeration in sorted(...) so iteration order "
                 "does not depend on the filesystem")
def check_unsorted_listing(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    wrapped = _sorted_wrapped_args(ctx.tree)
    for call in astutil.walk_calls(ctx.tree):
        name = astutil.call_name(call)
        if name in _LISTING_CALLS and id(call) not in wrapped:
            yield ctx.finding(
                rule_, call,
                f"result of {name}() is iterated in filesystem order; "
                f"serial and --jobs N runs may disagree")


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and astutil.call_name(node) in ("set", "frozenset"):
        return True
    return False


@rule("det-set-iteration", severity=SEVERITY_ERROR, scope=DETERMINISM_SCOPE,
      description="iteration over a set expression (hash order is per-process)",
      suggestion="iterate sorted(...) over the set, or keep insertion order "
                 "with a dict/list")
def check_set_iteration(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    wrapped = _sorted_wrapped_args(ctx.tree)

    def flag(node: ast.AST, iterable: ast.AST) -> Iterator[Finding]:
        if _is_set_expression(iterable) and id(iterable) not in wrapped:
            yield ctx.finding(
                rule_, iterable,
                "iterating a set: string hash order differs per process "
                "(PYTHONHASHSEED), so any ordered output derived from it "
                "is nondeterministic")

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from flag(node, node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                yield from flag(node, generator.iter)
        elif isinstance(node, ast.Call) and astutil.call_name(node) in ("list", "tuple"):
            if node.args:
                yield from flag(node, node.args[0])


@rule("det-wallclock", severity=SEVERITY_ERROR, scope=DETERMINISM_SCOPE,
      description="wall-clock read in worker/digest code",
      suggestion="workers must be pure functions of their payload; pass "
                 "timestamps in via the payload, or use time.perf_counter() "
                 "for telemetry-only durations")
def check_wallclock(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    bare_time_names = {
        name for name in astutil.from_imports(ctx.tree, "time")
        if name in ("time", "time_ns")}
    for call in astutil.walk_calls(ctx.tree):
        dotted = astutil.dotted_name(call.func)
        if dotted in _WALLCLOCK_CALLS:
            yield ctx.finding(
                rule_, call,
                f"{dotted}() reads the wall clock; its value differs per "
                f"run and per process")
        elif isinstance(call.func, ast.Name) and call.func.id in bare_time_names:
            yield ctx.finding(
                rule_, call,
                f"{call.func.id}() (imported from time) reads the wall clock")


@rule("det-unseeded-random", severity=SEVERITY_ERROR, scope=DETERMINISM_SCOPE,
      description="use of the process-global random generator",
      suggestion="derive a seeded random.Random(...) instance from payload "
                 "material instead of the module-level functions")
def check_unseeded_random(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    bare = astutil.from_imports(ctx.tree, "random") & _GLOBAL_RANDOM_FUNCS
    for call in astutil.walk_calls(ctx.tree):
        dotted = astutil.dotted_name(call.func)
        if dotted and dotted.startswith("random.") \
                and dotted.split(".", 1)[1] in _GLOBAL_RANDOM_FUNCS:
            yield ctx.finding(
                rule_, call,
                f"{dotted}() draws from the process-global RNG, whose state "
                f"depends on call order across the whole process")
        elif isinstance(call.func, ast.Name) and call.func.id in bare:
            yield ctx.finding(
                rule_, call,
                f"{call.func.id}() (imported from random) draws from the "
                f"process-global RNG")


@rule("det-object-identity", severity=SEVERITY_ERROR, scope=DETERMINISM_SCOPE,
      description="id()/hash() in code whose values may reach payloads or digests",
      suggestion="use stable keys (addresses, names, content digests via "
                 "hashlib) instead of per-process object identity")
def check_object_identity(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    for call in astutil.walk_calls(ctx.tree):
        if isinstance(call.func, ast.Name) and call.func.id in ("id", "hash"):
            yield ctx.finding(
                rule_, call,
                f"builtin {call.func.id}() is process-dependent "
                f"(PYTHONHASHSEED / allocator); it must never leak into "
                f"serialized payloads, digests, or cache keys")


@rule("det-env-read", severity=SEVERITY_WARNING, scope=DETERMINISM_SCOPE,
      description="environment read in worker/digest code (machine-dependent)",
      suggestion="resolve environment configuration in the parent process "
                 "and pass it through the payload, so two machines running "
                 "the same sweep agree byte-for-byte")
def check_env_read(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute) and node.attr == "environ" \
                and astutil.dotted_name(node) == "os.environ":
            yield ctx.finding(
                rule_, node,
                "os.environ read in worker/digest scope: behaviour now "
                "depends on the invoking machine, not the payload")
        elif isinstance(node, ast.Call) and astutil.dotted_name(node.func) == "os.getenv":
            yield ctx.finding(
                rule_, node,
                "os.getenv(...) in worker/digest scope: behaviour now "
                "depends on the invoking machine, not the payload")


@rule("det-json-sort-keys", severity=SEVERITY_ERROR, scope=JSON_SCOPE,
      description="json.dumps without sort_keys=True in a digest/artifact path",
      suggestion="pass sort_keys=True so the serialization is canonical "
                 "regardless of dict build order")
def check_json_sort_keys(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    bare_dumps = astutil.from_imports(ctx.tree, "json") & {"dumps"}
    for call in astutil.walk_calls(ctx.tree):
        dotted = astutil.dotted_name(call.func)
        is_dumps = dotted == "json.dumps" or (
            isinstance(call.func, ast.Name) and call.func.id in bare_dumps)
        if not is_dumps:
            continue
        if any(kw.arg is None for kw in call.keywords):
            continue  # **kwargs splat: cannot decide statically
        sort_kw = next((kw for kw in call.keywords if kw.arg == "sort_keys"), None)
        if sort_kw is None or (isinstance(sort_kw.value, ast.Constant)
                               and sort_kw.value.value is not True):
            yield ctx.finding(
                rule_, call,
                "json.dumps(...) without sort_keys=True emits keys in dict "
                "build order; two processes building the same mapping "
                "differently produce different bytes")
