"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set


def call_name(node: ast.Call) -> Optional[str]:
    """The bare name a call resolves through (``f`` for ``a.b.f(...)``)."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an attribute chain like ``time.time`` (None if not a chain)."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def from_imports(tree: ast.AST, module: str) -> Set[str]:
    """Local names bound by ``from <module> import ...`` statements."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def module_aliases(tree: ast.AST, module: str) -> Set[str]:
    """Local names a module is bound to by ``import <module> [as alias]``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def subscript_key(node: ast.Subscript) -> Optional[str]:
    """The constant string key of ``x["key"]`` (None otherwise)."""
    sl = node.slice
    if isinstance(sl, getattr(ast, "Index", ())):  # pragma: no cover - py<3.9
        sl = sl.value
    if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
        return sl.value
    return None


def assigned_names(tree: ast.AST) -> Set[str]:
    """Every name the module binds anywhere (assignment, def, import, ...).

    This is deliberately flow-insensitive: a name bound anywhere in the
    program counts as defined everywhere, which keeps the undefined-name
    check free of use-before-def false positives at the cost of missing
    ordering bugs (the sandbox catches those dynamically).
    """
    bound: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.arg):
            bound.add(node.arg)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            bound.update(node.names)
    return bound


def loaded_names(tree: ast.AST) -> Dict[str, ast.Name]:
    """First ``Load``-context occurrence of each name in the module."""
    loads: Dict[str, ast.Name] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loads.setdefault(node.id, node)
    return loads
