"""Warning-baseline ratchet for ``repro analyze --baseline``.

Errors always fail the run, but warning-severity findings accumulate in
working trees faster than anyone fixes them.  The ratchet freezes the
current warning debt into a committed JSON file keyed by ``rule|path``::

    {
      "version": 1,
      "entries": {"det-env-read|src/repro/cli/main.py": 2}
    }

and then CI fails in exactly two directions:

* a warning **not covered** by the baseline (a new ``rule|path`` key, or a
  count above the recorded one) — new debt is rejected;
* a baseline entry that **no longer fires** (stale key, or a count below
  the recorded one) — the baseline must ratchet *down* with the code, so
  the debt number only ever shrinks.

Regenerate with ``repro analyze --write-baseline <path>`` after fixing a
warning (or, deliberately and reviewably, after accepting a new one).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.framework import SEVERITY_WARNING, Finding
from repro.utils.validation import ValidationError

BASELINE_VERSION = 1


def baseline_entries(findings: Iterable[Finding]) -> Dict[str, int]:
    """Aggregate warning findings into ``rule|path -> count`` entries."""
    entries: Dict[str, int] = {}
    for finding in findings:
        if finding.severity != SEVERITY_WARNING:
            continue
        key = f"{finding.rule_id}|{finding.path}"
        entries[key] = entries.get(key, 0) + 1
    return entries


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file, validating its shape."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"baseline file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValidationError(f"baseline {path} is not valid JSON: {error}")
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValidationError(
            f"baseline {path} must be an object with an 'entries' mapping")
    entries = payload["entries"]
    if not isinstance(entries, dict) or not all(
            isinstance(key, str) and isinstance(value, int) and value > 0
            for key, value in entries.items()):
        raise ValidationError(
            f"baseline {path} entries must map 'rule|path' to positive counts")
    return dict(entries)


def write_baseline(path: Path, findings: Iterable[Finding]) -> Dict[str, int]:
    """Freeze the current warning findings into *path* (returns entries)."""
    entries = baseline_entries(findings)
    payload = {
        "version": BASELINE_VERSION,
        "entries": {key: entries[key] for key in sorted(entries)},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return entries


def compare_baseline(findings: Iterable[Finding],
                     baseline: Dict[str, int],
                     ) -> Tuple[List[str], List[str]]:
    """Diff current warnings against a baseline.

    Returns ``(new, stale)``: human-readable descriptions of warnings the
    baseline does not cover, and baseline entries that no longer fire.
    Both lists empty means the tree matches the frozen debt exactly.
    """
    current = baseline_entries(findings)
    new: List[str] = []
    stale: List[str] = []
    for key in sorted(set(current) | set(baseline)):
        have = current.get(key, 0)
        allowed = baseline.get(key, 0)
        rule_id, _, path = key.partition("|")
        if have > allowed:
            new.append(
                f"{path}: {have - allowed} new {rule_id} warning(s) "
                f"not in baseline ({have} found, {allowed} allowed)")
        elif have < allowed:
            stale.append(
                f"{path}: baseline records {allowed} {rule_id} warning(s) "
                f"but only {have} fire(s) — regenerate with "
                f"--write-baseline to ratchet down")
    return new, stale
