"""Invariant-aware static analysis (``repro analyze``).

The repo's three load-bearing contracts — serial-vs-``--jobs N``
byte-identity, obs-layer inertness over digests and cache keys, and
sandbox-policy safety of generated code — are enforced dynamically by
tests.  This package proves them at lint time instead: an AST-based rule
registry with per-rule severity, ``# repro: allow[rule-id]`` suppressions,
and four rule families (determinism, obs-inertness, template safety, and
the interprocedural effect contracts built on a project-wide call graph —
``repro analyze --effects``).  See DESIGN.md §4.8 and §4.10.
"""

from repro.analysis.framework import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_file,
    analyze_tree,
    get_rules,
    has_errors,
    load_context,
)
from repro.analysis.reporters import render_human, render_json, summarize
from repro.analysis.effects import (
    clear_effect_cache,
    effect_rule_ids,
    project_for_root,
    render_explain,
)
from repro.analysis.baseline import (
    baseline_entries,
    compare_baseline,
    load_baseline,
    write_baseline,
)

# importing the rule modules registers their rules (effects registers its
# contract rules as a side effect of the determinism import above)
from repro.analysis import determinism as _determinism  # noqa: F401
from repro.analysis import obs_inertness as _obs_inertness  # noqa: F401
from repro.analysis import templates as _templates  # noqa: F401

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_tree",
    "get_rules",
    "has_errors",
    "load_context",
    "render_human",
    "render_json",
    "summarize",
    "clear_effect_cache",
    "effect_rule_ids",
    "project_for_root",
    "render_explain",
    "baseline_entries",
    "compare_baseline",
    "load_baseline",
    "write_baseline",
]
