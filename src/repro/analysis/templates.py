"""Template-safety rules: every emitter template must pass lint, not CI.

The synthesis emitters are tables of ``intent -> program`` templates.  A bad
template (policy violation, undefined name, malformed SQL) previously
surfaced only when a benchmark cell happened to exercise that intent inside
the sandbox.  These rules render every entry of a module's ``TEMPLATES`` /
``TEMPORAL_TEMPLATES`` table with representative sample parameters and vet
the program statically:

* Python programs run through the sandbox's :class:`PolicyVisitor` (the
  exact policy the benchmark enforces at runtime) plus an undefined-name
  check against the namespace the backend actually provides — ``{G}`` for
  NetworkX, ``{nodes_df, edges_df}`` for frames (``core.pipeline``), and
  the ``{snapshots, deltas}`` contract built by
  :func:`repro.synthesis.temporal.timeline_namespace` for temporal
  programs — unioned with the sandbox's safe builtins;
* SQL programs are parsed statement-by-statement with ``repro.sqlengine``.

Any module defining a top-level ``TEMPLATES`` or ``TEMPORAL_TEMPLATES``
mapping is checked, so a brand-new emitter is covered the moment it exists.
Fixture/test modules may override detection with ``ANALYSIS_LANGUAGE``
("python" | "sql") and ``ANALYSIS_STATIC_NAMESPACE`` attributes.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis import astutil
from repro.analysis.framework import (
    SEVERITY_ERROR,
    FileContext,
    Finding,
    Rule,
    rule,
)

#: template-table names that make a module a template module
_TABLE_NAMES = ("TEMPLATES", "TEMPORAL_TEMPLATES")

#: sample parameter values covering every parameter any template reads;
#: extras are ignored (Intent.param is a lookup), so one table serves all
SAMPLE_PARAMS: Dict[str, object] = {
    "prefix": "10.0", "type_name": "server", "source": "10.0.0.1",
    "target": "10.0.0.2", "switch": "sw-1", "entity_type": "EK_PACKET_SWITCH",
    "control_point": "cp-1", "rack": "rack-1", "group": "srlg-1",
    "key": "bytes", "value": "production", "k": 3, "threshold": 1000,
    "clusters": 2, "name": "new-switch-1", "capacity": 100,
    "at": 1.0, "since": 0.0, "until": 2.0, "start": 0.0, "end": 2.0,
    "attribute": "capacity_gbps",
}

#: static sandbox namespaces per backend (mirrors core.pipeline._execute_python)
_STATIC_NAMESPACES: Dict[str, FrozenSet[str]] = {
    "networkx_emitter.py": frozenset({"G"}),
    "frames_emitter.py": frozenset({"nodes_df", "edges_df"}),
}

#: SQL emitters, keyed by module basename
_SQL_MODULES = ("sql_emitter.py",)

#: the answer variable every program is allowed to create/read
_RESULT_VARIABLE = "result"


def _safe_builtin_names() -> FrozenSet[str]:
    from repro.sandbox.executor import _SAFE_BUILTIN_NAMES
    return frozenset(_SAFE_BUILTIN_NAMES) | {"__import__"}


def _temporal_namespace_names(backend: str = "networkx") -> FrozenSet[str]:
    """The temporal namespace keys, derived from synthesis.temporal itself."""
    from repro.synthesis.temporal import timeline_namespace
    return frozenset(timeline_namespace([], backend))


@dataclass(frozen=True)
class RenderedTemplate:
    """One template rendered with sample parameters."""

    intent_name: str
    kind: str          # "static" | "temporal"
    code: str
    line: int          # definition line in the template module


@dataclass
class TemplateModule:
    """A loaded template module plus everything the rules need."""

    language: str
    static_namespace: FrozenSet[str]
    temporal_namespace: FrozenSet[str]
    rendered: List[RenderedTemplate]
    errors: List[Tuple[int, str]]  # (line, message) load/render failures


def _has_template_table(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in _TABLE_NAMES:
                    return True
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id in _TABLE_NAMES:
                return True
    return False


def _table_line(tree: ast.AST, table_name: str) -> int:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == table_name:
                    return node.lineno
    return 1


def _load_module(path: Path):
    digest = hashlib.sha256(str(path).encode("utf-8")).hexdigest()[:12]
    spec = importlib.util.spec_from_file_location(
        f"_repro_analysis_templates_{digest}", path)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_MODULE_CACHE: Dict[str, TemplateModule] = {}


def load_template_module(ctx: FileContext) -> TemplateModule:
    """Render every template in *ctx*'s module (memoized per path)."""
    cache_key = str(ctx.path)
    if cache_key in _MODULE_CACHE:
        return _MODULE_CACHE[cache_key]

    from repro.synthesis.intents import Intent

    basename = ctx.path.name
    rendered: List[RenderedTemplate] = []
    errors: List[Tuple[int, str]] = []
    language = "sql" if basename in _SQL_MODULES else "python"
    static_ns = _STATIC_NAMESPACES.get(basename, frozenset())
    temporal_ns = _temporal_namespace_names()
    try:
        module = _load_module(ctx.path)
    except Exception as error:  # noqa: BLE001 - reported as a finding
        errors.append((1, f"template module failed to load: "
                          f"{type(error).__name__}: {error}"))
        result = TemplateModule(language, static_ns, temporal_ns, rendered, errors)
        _MODULE_CACHE[cache_key] = result
        return result

    language = getattr(module, "ANALYSIS_LANGUAGE", language)
    override_ns = getattr(module, "ANALYSIS_STATIC_NAMESPACE", None)
    if override_ns is not None:
        static_ns = frozenset(override_ns)

    for table_name, kind in (("TEMPLATES", "static"),
                             ("TEMPORAL_TEMPLATES", "temporal")):
        table = getattr(module, table_name, None)
        if not isinstance(table, dict):
            continue
        table_line = _table_line(ctx.tree, table_name)
        for intent_name in sorted(table):
            template = table[intent_name]
            line = table_line
            if callable(template):
                line = getattr(getattr(template, "__code__", None),
                               "co_firstlineno", table_line)
                try:
                    code = template(Intent.create(intent_name, **SAMPLE_PARAMS))
                except Exception as error:  # noqa: BLE001 - reported as a finding
                    errors.append((line, f"template {intent_name!r} ({kind}) "
                                         f"failed to render with sample "
                                         f"parameters: "
                                         f"{type(error).__name__}: {error}"))
                    continue
            else:
                code = template
            if not isinstance(code, str):
                errors.append((line, f"template {intent_name!r} ({kind}) "
                                     f"rendered a {type(code).__name__}, "
                                     f"expected a program string"))
                continue
            rendered.append(RenderedTemplate(intent_name, kind, code, line))

    result = TemplateModule(language, static_ns, temporal_ns, rendered, errors)
    _MODULE_CACHE[cache_key] = result
    return result


def clear_template_cache() -> None:
    """Drop memoized template modules (test isolation hook)."""
    _MODULE_CACHE.clear()


def _parse_program(template: RenderedTemplate) -> Optional[ast.AST]:
    try:
        return ast.parse(template.code)
    except SyntaxError:
        return None


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------
@rule("template-policy", severity=SEVERITY_ERROR,
      description="emitter template violating the sandbox policy",
      suggestion="templates must satisfy the same SandboxPolicy the "
                 "benchmark enforces at runtime — fix the template, do not "
                 "widen the policy")
def check_template_policy(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    if not _has_template_table(ctx.tree):
        return
    from repro.sandbox.policy import PolicyVisitor, SandboxPolicy

    module = load_template_module(ctx)
    for line, message in module.errors:
        yield ctx.finding(rule_, None, message, line=line, col=0)
    if module.language != "python":
        return
    policy = SandboxPolicy()
    for template in module.rendered:
        tree = _parse_program(template)
        if tree is None:
            yield ctx.finding(
                rule_, None,
                f"template {template.intent_name!r} ({template.kind}) "
                f"renders a program with a syntax error",
                line=template.line, col=0)
            continue
        visitor = PolicyVisitor(policy)
        visitor.visit(tree)
        for violation in visitor.violations:
            yield ctx.finding(
                rule_, None,
                f"template {template.intent_name!r} ({template.kind}): "
                f"{violation}",
                line=template.line, col=0)


@rule("template-undefined-name", severity=SEVERITY_ERROR,
      description="emitter template referencing a name the sandbox won't provide",
      suggestion="programs may only touch the backend namespace (G / "
                 "nodes_df+edges_df / snapshots+deltas), sandbox builtins, "
                 "allowed imports, and names they bind themselves")
def check_template_undefined_names(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    if not _has_template_table(ctx.tree):
        return
    module = load_template_module(ctx)
    if module.language != "python":
        return
    builtins_ = _safe_builtin_names()
    for template in module.rendered:
        tree = _parse_program(template)
        if tree is None:
            continue  # template-policy reports the syntax error
        namespace = (module.temporal_namespace if template.kind == "temporal"
                     else module.static_namespace)
        allowed = namespace | builtins_ | {_RESULT_VARIABLE}
        bound = astutil.assigned_names(tree)
        for name, node in sorted(astutil.loaded_names(tree).items()):
            if name in bound or name in allowed:
                continue
            yield ctx.finding(
                rule_, None,
                f"template {template.intent_name!r} ({template.kind}) reads "
                f"undefined name {name!r} (program line {node.lineno}); the "
                f"{'temporal' if template.kind == 'temporal' else 'static'} "
                f"sandbox namespace provides only "
                f"{sorted(namespace) or '[]'}",
                line=template.line, col=0)


@rule("template-sql", severity=SEVERITY_ERROR,
      description="SQL emitter template the sqlengine cannot parse",
      suggestion="templates must stay inside the supported SQL subset "
                 "(see repro.sqlengine.parser); unsupported intents should "
                 "be omitted from TEMPLATES, not approximated")
def check_template_sql(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    if not _has_template_table(ctx.tree):
        return
    module = load_template_module(ctx)
    if module.language != "sql":
        return
    from repro.sqlengine.errors import SqlError
    from repro.sqlengine.parser import parse_statement

    for template in module.rendered:
        statements = [part.strip() for part in template.code.split(";")
                      if part.strip()]
        if not statements:
            yield ctx.finding(
                rule_, None,
                f"template {template.intent_name!r} renders no SQL "
                f"statements",
                line=template.line, col=0)
            continue
        for statement in statements:
            try:
                parse_statement(statement)
            except SqlError as error:
                yield ctx.finding(
                    rule_, None,
                    f"template {template.intent_name!r}: sqlengine cannot "
                    f"parse {statement[:60]!r}...: {error}",
                    line=template.line, col=0)
