"""Interprocedural effect inference and the layered effect-contract rules.

Every project function gets a set of *effects* — labels from a small
lattice — seeded from intrinsic calls in its body and propagated
transitively to callers over the :mod:`repro.analysis.callgraph` until
fixpoint:

``nondeterministic``
    wall-clock reads, the process-global RNG, unsorted directory
    enumeration, set iteration, ``id()``/``hash()``
``env-read``
    ``os.environ`` / ``os.getenv``
``fs-write``
    ``open(..., "w")``, ``os.makedirs``, ``shutil.rmtree``,
    ``Path.write_text`` and friends
``network``
    sockets, ``asyncio.open_connection``/``start_server``, urllib
``blocking-io``
    ``time.sleep``, subprocess spawns, ``input()``
``global-mutation``
    writes to module-level names (rebinds under ``global``, item stores,
    mutating method calls), each recorded with whether a ``with <lock>:``
    was in scope

Each ``(function, effect)`` pair keeps a *witness* — the seed line or the
call edge the effect arrived through — so a finding can print the exact
call chain that carries the effect (``repro analyze --explain``).

The contracts enforced on top (one rule each):

=========================  =================================================
layer                      forbidden effect
=========================  =================================================
fabric workers             transitively ``nondeterministic``
                           (``effect-worker-purity``, error) and
                           ``env-read`` (``effect-worker-env``, warning)
``repro.obs``              transitively ``fs-write`` outside the exporter
                           files (``effect-obs-write``, error)
``serve/`` coroutines      transitively ``blocking-io``
                           (``effect-async-blocking``, error); handing the
                           callable to ``run_in_executor`` is exempt
                           because no call edge is created for it
thread-reachable code      unlocked module-global writes
                           (``effect-thread-shared-state``, error)
=========================  =================================================

The per-file determinism rules (:mod:`repro.analysis.determinism`) share
this module's seed tables, so a pattern added here tightens both the flat
and the transitive checks at once.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis import astutil, callgraph
from repro.analysis.callgraph import (
    MODULE_FUNCTION,
    CallGraph,
    FunctionNode,
    ModuleInfo,
    walk_owned,
)
from repro.analysis.framework import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    FileContext,
    Finding,
    Rule,
    rule,
)

# ---------------------------------------------------------------------------
# the effect lattice
# ---------------------------------------------------------------------------
NONDETERMINISTIC = "nondeterministic"
ENV_READ = "env-read"
FS_WRITE = "fs-write"
NETWORK = "network"
BLOCKING_IO = "blocking-io"
GLOBAL_MUTATION = "global-mutation"

EFFECTS = (
    NONDETERMINISTIC, ENV_READ, FS_WRITE, NETWORK, BLOCKING_IO,
    GLOBAL_MUTATION,
)

# ---------------------------------------------------------------------------
# intrinsic seed tables (shared with repro.analysis.determinism)
# ---------------------------------------------------------------------------
#: directory-enumeration calls whose result order is filesystem-dependent
LISTING_CALLS = {"listdir", "scandir", "iterdir", "glob", "rglob"}

#: wall-clock reads (monotonic clocks used for telemetry durations are fine)
WALLCLOCK_CALLS = {
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today", "datetime.date.today",
}

#: process-global RNG entry points (a seeded ``random.Random`` is fine)
GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular",
}

#: fully-qualified filesystem mutators
FS_WRITE_CALLS = {
    "os.fdopen", "os.makedirs", "os.mkdir", "os.remove", "os.unlink",
    "os.rename", "os.replace", "os.rmdir", "os.symlink", "os.link",
    "os.truncate", "os.utime",
    "shutil.rmtree", "shutil.copy", "shutil.copy2", "shutil.copyfile",
    "shutil.copytree", "shutil.move",
}

#: method suffixes that write regardless of receiver (pathlib idiom);
#: never ``.replace``/``.rename`` — those collide with ``str`` methods
FS_WRITE_METHODS = {"write_text", "write_bytes", "mkdir", "touch", "rmtree"}

NETWORK_CALL_PREFIXES = ("socket.", "urllib.", "http.client.")
NETWORK_CALLS = {"asyncio.open_connection", "asyncio.start_server"}

#: calls that block the calling thread (poison inside an event loop)
BLOCKING_CALLS = {"time.sleep", "os.system", "input"}

#: container/deque methods that mutate their receiver in place
MUTATING_METHODS = {
    "append", "appendleft", "add", "update", "setdefault", "pop",
    "popleft", "popitem", "clear", "extend", "extendleft", "remove",
    "discard", "insert", "sort", "reverse",
}

#: files allowed to keep ``fs-write`` inside ``repro.obs``: the exporters
#: (trace/metrics snapshots) and the append-only run ledger
OBS_EXPORTER_FILES = ("obs/export.py", "obs/ledger.py")


# ---------------------------------------------------------------------------
# analysis results
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Witness:
    """Why a function carries an effect: its seed, or the carrying call."""

    kind: str  # "seed" | "call"
    lineno: int
    detail: str  # seed description, or the callee qualname


@dataclass(frozen=True)
class MutationSite:
    """One write to a module-level name inside a function body."""

    name: str
    lineno: int
    col: int
    locked: bool
    kind: str  # "rebind" | "item" | "attr" | "mutate"

    def describe(self) -> str:
        verbs = {
            "rebind": "rebinds module global",
            "item": "stores an item into module global",
            "attr": "sets an attribute on module global",
            "mutate": "mutates module global",
        }
        return f"{verbs[self.kind]} '{self.name}'"


@dataclass
class EffectProject:
    """The fully-propagated effect analysis of one project tree."""

    root: Path
    graph: CallGraph
    effects: Dict[str, Set[str]] = field(default_factory=dict)
    witnesses: Dict[Tuple[str, str], Witness] = field(default_factory=dict)
    mutation_sites: Dict[str, List[MutationSite]] = field(default_factory=dict)
    #: thread-reachability BFS tree: fn -> (calling fn, call line) | None for roots
    thread_pred: Dict[str, Optional[Tuple[str, int]]] = field(default_factory=dict)

    def effects_of(self, qualname: str) -> Set[str]:
        return self.effects.get(qualname, set())

    def thread_chain(self, qualname: str) -> List[str]:
        """Root-first call chain by which a thread reaches *qualname*."""
        chain = [qualname]
        current = qualname
        while True:
            pred = self.thread_pred.get(current)
            if pred is None:
                break
            current = pred[0]
            chain.append(current)
        chain.reverse()
        return chain

    def effect_chain(self, qualname: str,
                     effect: str) -> List[Tuple[str, int, str]]:
        """The witness chain carrying *effect* into *qualname*.

        Returns ``[(function, line, step)]`` ending at the seed; ``step``
        is either ``"calls <callee>"`` or the seed description.
        """
        chain: List[Tuple[str, int, str]] = []
        current = qualname
        seen: Set[str] = set()
        while current not in seen:
            seen.add(current)
            witness = self.witnesses.get((current, effect))
            if witness is None:
                break
            if witness.kind == "seed":
                chain.append((current, witness.lineno, witness.detail))
                break
            chain.append((current, witness.lineno,
                          f"calls {witness.detail}"))
            current = witness.detail
        return chain


def short_name(qualname: str) -> str:
    """The function part of ``module:qual`` (``Cls.m`` stays qualified)."""
    return qualname.rsplit(":", 1)[-1]


def chain_text(project: EffectProject, qualname: str, effect: str) -> str:
    """Compact one-line rendering of an effect chain for finding messages."""
    chain = project.effect_chain(qualname, effect)
    if not chain:
        return short_name(qualname)
    hops = " -> ".join(short_name(step[0]) for step in chain)
    last_fn, last_line, last_step = chain[-1]
    relpath = project.graph.functions[last_fn].relpath \
        if last_fn in project.graph.functions else "?"
    if last_step.startswith("calls "):
        return f"{hops} -> {last_step[len('calls '):]}"
    return f"{hops}: {last_step} ({relpath}:{last_line})"


# ---------------------------------------------------------------------------
# seed extraction
# ---------------------------------------------------------------------------
def normalized_call_target(info: ModuleInfo, func: ast.AST) -> Optional[str]:
    """Alias-normalized dotted name of a call's callee expression."""
    if isinstance(func, ast.Name):
        name = func.id
        if name in info.import_objects:
            module, obj = info.import_objects[name]
            return f"{module}.{obj}"
        return name
    if isinstance(func, ast.Attribute):
        dotted = astutil.dotted_name(func)
        if dotted is None:
            return f"?.{func.attr}"
        head, _, rest = dotted.partition(".")
        if rest and head in info.import_modules:
            return f"{info.import_modules[head]}.{rest}"
        if rest and head in info.import_objects:
            module, obj = info.import_objects[head]
            return f"{module}.{obj}.{rest}"
        return dotted
    return None


def sorted_wrapped_ids(nodes: Sequence[ast.AST]) -> Set[int]:
    """ids of AST nodes anywhere inside the first argument of ``sorted(...)``.

    The whole subtree counts, not just the direct argument:
    ``sorted(p.stem for p in d.glob("*"))`` neutralizes the enumeration
    order exactly as well as ``sorted(d.glob("*"))`` does.
    """
    wrapped: Set[int] = set()
    for node in nodes:
        if isinstance(node, ast.Call) \
                and astutil.call_name(node) == "sorted" and node.args:
            for sub in ast.walk(node.args[0]):
                wrapped.add(id(sub))
    return wrapped


def _open_mode_writes(call: ast.Call) -> bool:
    """Does this ``open(...)``-style call request a writable mode?"""
    mode: Optional[ast.AST] = None
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None and len(call.args) >= 2:
        mode = call.args[1]
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(flag in mode.value for flag in "wax+")
    return True  # non-constant mode: assume the worst


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) \
            and astutil.call_name(node) in ("set", "frozenset"):
        return True
    return False


def _call_seeds(info: ModuleInfo, call: ast.Call,
                wrapped: Set[int]) -> Iterator[Tuple[str, str]]:
    """Yield ``(effect, description)`` seeds for one call expression."""
    dotted = normalized_call_target(info, call.func)
    if dotted is None:
        return
    last = dotted.rsplit(".", 1)[-1]
    if dotted in WALLCLOCK_CALLS:
        yield NONDETERMINISTIC, f"wall-clock read {dotted}()"
    if dotted.startswith("random.") and last in GLOBAL_RANDOM_FUNCS:
        yield NONDETERMINISTIC, f"process-global RNG draw {dotted}()"
    if last in LISTING_CALLS and id(call) not in wrapped:
        yield NONDETERMINISTIC, f"unsorted directory enumeration {last}()"
    if isinstance(call.func, ast.Name) and call.func.id in ("id", "hash"):
        yield NONDETERMINISTIC, f"per-process identity {call.func.id}()"
    if dotted == "os.getenv" or dotted.startswith("os.environ."):
        yield ENV_READ, f"environment read {dotted}()"
    if dotted in ("open", "io.open", "os.fdopen") and _open_mode_writes(call):
        yield FS_WRITE, f"{dotted}() with a writable mode"
    if dotted in FS_WRITE_CALLS and dotted != "os.fdopen":
        yield FS_WRITE, f"filesystem mutation {dotted}()"
    if "." in dotted and last in FS_WRITE_METHODS:
        yield FS_WRITE, f"filesystem mutation .{last}()"
    if dotted in NETWORK_CALLS \
            or dotted.startswith(NETWORK_CALL_PREFIXES):
        yield NETWORK, f"network operation {dotted}()"
    if dotted in BLOCKING_CALLS or dotted.startswith("subprocess."):
        yield BLOCKING_IO, f"blocking call {dotted}()"


def _function_seeds(info: ModuleInfo,
                    owner: FunctionNode) -> List[Tuple[str, int, int, str]]:
    """All intrinsic ``(effect, line, col, description)`` seeds of *owner*."""
    is_module = owner.name == MODULE_FUNCTION
    nodes = list(walk_owned(owner.node, is_module=is_module))
    wrapped = sorted_wrapped_ids(nodes)

    seeds: List[Tuple[str, int, int, str]] = []

    def note(effect: str, node: ast.AST, description: str) -> None:
        seeds.append((effect, node.lineno, node.col_offset, description))

    def flag_set_iteration(iterable: ast.AST) -> None:
        if _is_set_expression(iterable) and id(iterable) not in wrapped:
            note(NONDETERMINISTIC, iterable,
                 "iteration over a set expression (hash order)")

    for node in nodes:
        if isinstance(node, ast.Call):
            for effect, description in _call_seeds(info, node, wrapped):
                note(effect, node, description)
        elif isinstance(node, ast.Attribute) and node.attr == "environ" \
                and astutil.dotted_name(node) == "os.environ":
            note(ENV_READ, node, "environment read os.environ")
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and info.import_objects.get(node.id) == ("os", "environ"):
            note(ENV_READ, node, "environment read os.environ")
        if isinstance(node, (ast.For, ast.AsyncFor)):
            flag_set_iteration(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                flag_set_iteration(generator.iter)
        elif isinstance(node, ast.Call) \
                and astutil.call_name(node) in ("list", "tuple") and node.args:
            flag_set_iteration(node.args[0])
    return seeds


# ---------------------------------------------------------------------------
# global-mutation scanning
# ---------------------------------------------------------------------------
def _is_lock_expression(node: ast.AST) -> bool:
    dotted = astutil.dotted_name(node) or (
        node.id if isinstance(node, ast.Name) else None)
    if dotted is None and isinstance(node, ast.Call):
        return _is_lock_expression(node.func)
    return dotted is not None and "lock" in dotted.lower()


class _MutationScanner(ast.NodeVisitor):
    """Collect module-global write sites, tracking ``with <lock>:`` depth."""

    def __init__(self, module_globals: Set[str], global_decls: Set[str],
                 local_binds: Set[str]) -> None:
        self.module_globals = module_globals
        self.global_decls = global_decls
        self.local_binds = local_binds
        self.lock_depth = 0
        self.sites: List[MutationSite] = []

    # -- lock scoping ---------------------------------------------------
    def _visit_with(self, node: ast.AST) -> None:
        locked = any(_is_lock_expression(item.context_expr)
                     for item in node.items)
        if locked:
            self.lock_depth += 1
        self.generic_visit(node)
        if locked:
            self.lock_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # -- write sites ----------------------------------------------------
    def _site(self, name: str, node: ast.AST, kind: str) -> None:
        self.sites.append(MutationSite(
            name=name, lineno=node.lineno, col=node.col_offset,
            locked=self.lock_depth > 0, kind=kind))

    def _is_global_receiver(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name) and node.id in self.module_globals \
                and node.id not in self.local_binds:
            return node.id
        return None

    def _scan_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_decls:
                self._site(target.id, target, "rebind")
        elif isinstance(target, ast.Subscript):
            name = self._is_global_receiver(target.value)
            if name is not None:
                self._site(name, target, "item")
        elif isinstance(target, ast.Attribute):
            name = self._is_global_receiver(target.value)
            if name is not None:
                self._site(name, target, "attr")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(element)
        elif isinstance(target, ast.Starred):
            self._scan_target(target.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._scan_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._scan_target(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._scan_target(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATING_METHODS:
            name = self._is_global_receiver(node.func.value)
            if name is not None:
                self._site(name, node, "mutate")
        self.generic_visit(node)


def _scan_mutations(info: ModuleInfo,
                    owner: FunctionNode) -> List[MutationSite]:
    if owner.name == MODULE_FUNCTION:
        return []  # module-level assignments are definitions, not races
    global_decls: Set[str] = set()
    local_binds: Set[str] = set()
    for node in ast.walk(owner.node):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
        elif isinstance(node, ast.arg):
            local_binds.add(node.arg)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            local_binds.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            if node is not owner.node:
                local_binds.add(node.name)
    local_binds -= global_decls
    scanner = _MutationScanner(info.global_names, global_decls, local_binds)
    body = owner.node.body if hasattr(owner.node, "body") else []
    for statement in body:
        scanner.visit(statement)
    return scanner.sites


# ---------------------------------------------------------------------------
# fixpoint propagation
# ---------------------------------------------------------------------------
def analyze_project(root: Path,
                    single_relpath: Optional[str] = None) -> EffectProject:
    """Build the call graph, seed effects, and propagate to fixpoint."""
    graph = callgraph.build_call_graph(root, single_relpath=single_relpath)
    project = EffectProject(root=Path(root), graph=graph)

    for qualname in sorted(graph.functions):
        owner = graph.functions[qualname]
        info = graph.modules[owner.module]
        effects: Set[str] = set()
        seeds = sorted(_function_seeds(info, owner),
                       key=lambda seed: (seed[1], seed[2], seed[0]))
        for effect, lineno, _col, description in seeds:
            if effect not in effects:
                effects.add(effect)
                project.witnesses[(qualname, effect)] = Witness(
                    kind="seed", lineno=lineno, detail=description)
        sites = _scan_mutations(info, owner)
        if sites:
            project.mutation_sites[qualname] = sites
            if GLOBAL_MUTATION not in effects:
                first = sites[0]
                effects.add(GLOBAL_MUTATION)
                project.witnesses[(qualname, GLOBAL_MUTATION)] = Witness(
                    kind="seed", lineno=first.lineno,
                    detail=first.describe())
        project.effects[qualname] = effects

    callers = graph.callers_of()
    worklist = deque(sorted(
        qualname for qualname, effects in project.effects.items() if effects))
    while worklist:
        callee = worklist.popleft()
        for caller, site in callers.get(callee, ()):
            caller_effects = project.effects.setdefault(caller, set())
            changed = False
            for effect in sorted(project.effects[callee]):
                if effect not in caller_effects:
                    caller_effects.add(effect)
                    project.witnesses[(caller, effect)] = Witness(
                        kind="call", lineno=site.lineno, detail=callee)
                    changed = True
            if changed:
                worklist.append(caller)

    # thread-reachability BFS (deterministic: sorted roots, call order)
    queue = deque()
    for thread_root in graph.thread_roots:
        if thread_root not in project.thread_pred:
            project.thread_pred[thread_root] = None
            queue.append(thread_root)
    while queue:
        current = queue.popleft()
        node = graph.functions.get(current)
        if node is None:
            continue
        for site in node.calls:
            if site.target in graph.functions \
                    and site.target not in project.thread_pred:
                project.thread_pred[site.target] = (current, site.lineno)
                queue.append(site.target)
    return project


# ---------------------------------------------------------------------------
# project cache (one build per tree per process)
# ---------------------------------------------------------------------------
_PROJECT_CACHE: Dict[Tuple[str, Optional[str]], EffectProject] = {}


def project_for_root(root: Path,
                     single_relpath: Optional[str] = None) -> EffectProject:
    key = (str(Path(root).resolve()), single_relpath)
    if key not in _PROJECT_CACHE:
        _PROJECT_CACHE[key] = analyze_project(Path(root), single_relpath)
    return _PROJECT_CACHE[key]


def project_for(ctx: FileContext) -> EffectProject:
    """The effect project containing *ctx*'s file (cached per tree)."""
    root, single = callgraph.project_root_for(ctx.path, ctx.relpath)
    return project_for_root(root, single)


def clear_effect_cache() -> None:
    """Drop memoized projects (tests that rewrite files on disk)."""
    _PROJECT_CACHE.clear()


# ---------------------------------------------------------------------------
# explain rendering (repro analyze --explain)
# ---------------------------------------------------------------------------
def resolve_function_spec(project: EffectProject, spec: str) -> List[str]:
    """Resolve a user-supplied function spec to graph qualnames.

    Accepts an exact ``module:qual`` name, a ``:``-suffix (``tasks:run``),
    or a bare function name; returns every match, sorted.
    """
    if spec in project.graph.functions:
        return [spec]
    matches = set()
    for qualname in project.graph.functions:
        module, _, qual = qualname.partition(":")
        if qual == spec or qualname.endswith(f".{spec}") \
                or (":" in spec and qualname.endswith(spec)):
            matches.add(qualname)
    return sorted(matches)


def render_explain(project: EffectProject, spec: str) -> str:
    """Human-readable effect chains for every function matching *spec*."""
    matches = resolve_function_spec(project, spec)
    if not matches:
        return (f"no function matches {spec!r} "
                f"(expected module:function, e.g. "
                f"repro.benchmark.tasks:run_benchmark_cell)")
    blocks: List[str] = []
    for qualname in matches:
        node = project.graph.functions[qualname]
        effects = sorted(project.effects_of(qualname))
        header = f"{qualname}  ({node.relpath}:{node.lineno})"
        lines = [header]
        if not effects:
            lines.append("  no inferred effects")
        for effect in effects:
            lines.append(f"  {effect}:")
            for step_fn, step_line, step in project.effect_chain(
                    qualname, effect):
                step_rel = project.graph.functions[step_fn].relpath \
                    if step_fn in project.graph.functions else "?"
                lines.append(f"    {short_name(step_fn)} "
                             f"({step_rel}:{step_line}) {step}")
        if qualname in project.thread_pred:
            chain = " -> ".join(
                short_name(hop) for hop in project.thread_chain(qualname))
            lines.append(f"  thread-reachable via: {chain}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# the contract rules
# ---------------------------------------------------------------------------
def effect_rule_ids() -> List[str]:
    """Ids of the interprocedural rules (the ``--effects`` selection)."""
    return [
        "effect-async-blocking",
        "effect-obs-write",
        "effect-thread-shared-state",
        "effect-worker-env",
        "effect-worker-purity",
    ]


def _worker_findings(rule_: Rule, ctx: FileContext, effect: str,
                     consequence: str) -> Iterator[Finding]:
    project = project_for(ctx)
    for qualname in project.graph.worker_roots:
        node = project.graph.functions[qualname]
        if node.relpath != ctx.relpath:
            continue
        if effect not in project.effects_of(qualname):
            continue
        witness = project.witnesses[(qualname, effect)]
        yield ctx.finding(
            rule_, None,
            f"fabric worker {short_name(qualname)}() is transitively "
            f"{effect} via {chain_text(project, qualname, effect)}; "
            f"{consequence}",
            line=witness.lineno, col=0)


@rule("effect-worker-purity", severity=SEVERITY_ERROR,
      description="fabric worker transitively nondeterministic "
                  "(call-graph effect inference)",
      suggestion="workers must be pure functions of their payload; move the "
                 "nondeterministic read into the parent process and pass its "
                 "value through the payload (repro analyze --explain "
                 "<module:function> prints the carrying chain)")
def check_worker_purity(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    yield from _worker_findings(
        rule_, ctx, NONDETERMINISTIC,
        "serial and --jobs N sweeps may produce different bytes")


@rule("effect-worker-env", severity=SEVERITY_WARNING,
      description="fabric worker transitively reads the environment",
      suggestion="resolve environment configuration in the parent process "
                 "and pass it through the payload so two machines agree "
                 "byte-for-byte")
def check_worker_env(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    yield from _worker_findings(
        rule_, ctx, ENV_READ,
        "results now depend on the invoking machine, not the payload")


@rule("effect-obs-write", severity=SEVERITY_ERROR, scope=("obs/",),
      description="repro.obs function transitively writes the filesystem "
                  "outside the exporter files",
      suggestion="observability must be inert: route all file output "
                 "through obs/export.py (or the ledger), invoked explicitly "
                 "from the CLI layer")
def check_obs_write(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    if ctx.relpath in OBS_EXPORTER_FILES:
        return
    project = project_for(ctx)
    for node in project.graph.functions_in(ctx.relpath):
        if FS_WRITE not in project.effects_of(node.qualname):
            continue
        witness = project.witnesses[(node.qualname, FS_WRITE)]
        yield ctx.finding(
            rule_, None,
            f"{short_name(node.qualname)}() transitively writes the "
            f"filesystem via "
            f"{chain_text(project, node.qualname, FS_WRITE)}; repro.obs "
            f"must be inert outside its exporters",
            line=witness.lineno, col=0)


@rule("effect-async-blocking", severity=SEVERITY_ERROR, scope=("serve/",),
      description="async def in serve/ transitively performs blocking I/O",
      suggestion="a blocking call inside a coroutine stalls every "
                 "connection on the event loop; dispatch the blocking "
                 "callable through loop.run_in_executor(...) instead of "
                 "calling it")
def check_async_blocking(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    project = project_for(ctx)
    for node in project.graph.functions_in(ctx.relpath):
        if not node.is_async:
            continue
        if BLOCKING_IO not in project.effects_of(node.qualname):
            continue
        witness = project.witnesses[(node.qualname, BLOCKING_IO)]
        yield ctx.finding(
            rule_, None,
            f"coroutine {short_name(node.qualname)}() transitively blocks "
            f"the event loop via "
            f"{chain_text(project, node.qualname, BLOCKING_IO)}",
            line=witness.lineno, col=0)


@rule("effect-thread-shared-state", severity=SEVERITY_ERROR,
      description="module global written without a lock from a "
                  "thread-reachable function",
      suggestion="take a module-level threading.Lock() (with _LOCK: ...) "
                 "around every write to state shared across ThreadExecutor "
                 "/ ServerThread paths, or confine the state to one thread")
def check_thread_shared_state(rule_: Rule,
                              ctx: FileContext) -> Iterator[Finding]:
    project = project_for(ctx)
    for node in project.graph.functions_in(ctx.relpath):
        if node.qualname not in project.thread_pred:
            continue
        for site in project.mutation_sites.get(node.qualname, ()):
            if site.locked:
                continue
            chain = " -> ".join(
                short_name(hop)
                for hop in project.thread_chain(node.qualname))
            yield ctx.finding(
                rule_, None,
                f"{short_name(node.qualname)}() {site.describe()} without "
                f"a lock in scope, and is reachable from a thread entry "
                f"point ({chain})",
                line=site.lineno, col=site.col)
