"""Project-wide call graph: module-qualified function resolution over imports.

The effect-analysis engine (:mod:`repro.analysis.effects`) needs to answer
"who can this function call?" across the whole package, not one file at a
time.  This module builds that graph statically:

* every module-level function, every method of a module-level class, and a
  ``<module>`` pseudo-function per file (import-time statements) becomes a
  :class:`FunctionNode` with a stable qualified name ``module:qualname``
  (``repro.exec.workers:run_task``,
  ``repro.serve.service:ReproService._dispatch``);
* calls are resolved through import aliases (``import a.b as c``,
  ``from a.b import f as g``), through re-export chains (``from repro.obs
  import span`` resolves into ``repro.obs.trace:span``), through ``self.``/
  ``cls.`` receivers within a class, and — for dynamic dispatch — through a
  conservative unique-method heuristic: ``x.golden_for(...)`` binds to
  ``TemporalGoldenSelector.golden_for`` only when exactly one project class
  defines that method name and the name is not a builtin-container method;
* calls that cannot be resolved are kept as :class:`ExternalCall` records
  (dotted name + location) so the effect engine can match them against its
  intrinsic-seed tables;
* **worker roots** (functions referenced by ``"module:function"`` fabric
  worker strings) and **thread roots** (functions handed to
  ``Thread(target=...)``, ``pool.submit(...)``, ``loop.run_in_executor``,
  or ``asyncio.start_server`` callbacks) are discovered while linking, so
  the concurrency rules know where reachability starts.

Nested functions and lambdas are attributed to their enclosing top-level
function: a call inside ``lambda: build()`` counts as a call by the function
that created the lambda.  That deliberately over-approximates "the callee
may run whenever the caller runs", which is exactly the contract
``worker_context(key, builder)`` gives its builder.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis import astutil

#: a fabric worker reference: ``package.module:function``
WORKER_REF_RE = re.compile(r"^[A-Za-z_][\w.]*:[A-Za-z_]\w*$")

#: the per-file pseudo-function holding import-time statements
MODULE_FUNCTION = "<module>"

#: method names never resolved by the unique-method heuristic: they collide
#: with builtin container/str/file/concurrency APIs, so a lone project class
#: defining one must not capture every ``x.name(...)`` call in the tree
COMMON_METHOD_NAMES = frozenset({
    "add", "append", "clear", "close", "copy", "count", "decode", "discard",
    "encode", "endswith", "extend", "flush", "format", "get", "index",
    "insert", "items", "join", "keys", "lower", "pop", "popitem", "read",
    "readline", "readlines", "remove", "replace", "reverse", "rsplit",
    "rstrip", "seek", "set", "setdefault", "sort", "split", "splitlines",
    "startswith", "strip", "tell", "title", "update", "upper", "values",
    "wait", "write",
    "acquire", "release", "cancel", "done", "result", "shutdown", "submit",
    "is_set", "start", "stop", "run",
})


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored at its source location."""

    target: str
    lineno: int
    col: int


@dataclass(frozen=True)
class ExternalCall:
    """A call the graph cannot resolve to a project function.

    ``dotted`` is the best available name: the alias-substituted dotted path
    (``time.time``, ``os.path.exists``), a bare name (``sorted``), or —
    for attribute calls on unknown receivers — ``?.<attr>`` so suffix
    matching still works.
    """

    dotted: str
    lineno: int
    col: int
    #: True when the call appears as the first argument of ``sorted(...)``
    sorted_wrapped: bool = False


@dataclass
class FunctionNode:
    """One project function (or method, or module pseudo-function)."""

    qualname: str
    module: str
    relpath: str
    name: str
    lineno: int
    is_async: bool = False
    cls: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)
    external_calls: List[ExternalCall] = field(default_factory=list)
    #: the AST subtree of this function (module AST for ``<module>``)
    node: Optional[ast.AST] = None


@dataclass
class ModuleInfo:
    """Per-module symbol tables used during linking."""

    name: str
    relpath: str
    path: Path
    tree: ast.AST
    #: local alias -> module dotted path (``import a.b as c``)
    import_modules: Dict[str, str] = field(default_factory=dict)
    #: local name -> (module, object) (``from a.b import f as g``)
    import_objects: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: module-level function/method local-quals (``f``, ``Cls.m``)
    functions: Dict[str, str] = field(default_factory=dict)
    #: module-level class name -> its method names
    classes: Dict[str, Set[str]] = field(default_factory=dict)
    #: every module-level assigned name (the shared-state candidates)
    global_names: Set[str] = field(default_factory=set)


class CallGraph:
    """The linked project: functions, edges, and concurrency roots."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionNode] = {}
        #: method bare name -> qualnames defining it (unique-method lookup)
        self.methods_by_name: Dict[str, List[str]] = {}
        #: fabric worker entry points ("module:function" references)
        self.worker_roots: List[str] = []
        #: functions handed to threads / pools / event-loop callbacks
        self.thread_roots: List[str] = []

    # ------------------------------------------------------------------
    def functions_in(self, relpath: str) -> List[FunctionNode]:
        """Functions defined in one file, in definition order."""
        nodes = [node for node in self.functions.values()
                 if node.relpath == relpath]
        return sorted(nodes, key=lambda node: (node.lineno, node.qualname))

    def callers_of(self) -> Dict[str, List[Tuple[str, CallSite]]]:
        """Reverse adjacency: callee -> [(caller, site), ...]."""
        reverse: Dict[str, List[Tuple[str, CallSite]]] = {}
        for qualname in sorted(self.functions):
            for site in self.functions[qualname].calls:
                reverse.setdefault(site.target, []).append((qualname, site))
        return reverse

    # ------------------------------------------------------------------
    def resolve_object(self, module: str, name: str,
                       _seen: Optional[Set[Tuple[str, str]]] = None) -> Optional[str]:
        """Resolve ``module:name`` through re-export chains to a qualname."""
        seen = _seen if _seen is not None else set()
        if (module, name) in seen:
            return None
        seen.add((module, name))
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.functions:
            return f"{module}:{info.functions[name]}"
        if name in info.classes:
            # calling a class constructs it: bind to __init__ when defined
            if "__init__" in info.classes[name]:
                return f"{module}:{name}.__init__"
            return None
        if name in info.import_objects:
            source_module, source_name = info.import_objects[name]
            return self.resolve_object(source_module, source_name, seen)
        return None

    def resolve_worker_ref(self, reference: str) -> Optional[str]:
        """Resolve a ``module:function`` worker string to a graph qualname."""
        module, _, function_name = reference.partition(":")
        if f"{module}:{function_name}" in self.functions:
            return f"{module}:{function_name}"
        return self.resolve_object(module, function_name)


# ---------------------------------------------------------------------------
# project discovery
# ---------------------------------------------------------------------------
def module_name_for(root: Path, relpath: str) -> str:
    """Dotted module path of *relpath* under *root*.

    The root directory's own name joins the path only when the root is
    itself a package (has ``__init__.py``): scanning ``src/repro`` yields
    ``repro.exec.workers``, while scanning ``src`` (or a loose fixture
    directory) yields the same name from the path parts alone — so
    ``"module:function"`` worker references resolve either way.
    """
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    package = root.name if root.is_dir() \
        and (root / "__init__.py").exists() else None
    if package:
        parts = [package] + parts
    return ".".join(parts) if parts else (package or relpath)


def iter_project_files(root: Path) -> Iterator[Tuple[Path, str]]:
    root = Path(root)
    if root.is_file():
        yield root, root.name
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path, path.relative_to(root).as_posix()


def _collect_imports(info: ModuleInfo, known_modules: Set[str]) -> None:
    """Fill the alias tables (flow-insensitive: function-local imports count)."""
    package_parts = info.name.split(".")
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.import_modules[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    info.import_modules.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # relative import: resolve against this module's package
                base = package_parts[:-node.level] if node.level <= len(package_parts) else []
                module = ".".join(base + ([node.module] if node.module else []))
            else:
                module = node.module or ""
            if not module:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                if f"{module}.{alias.name}" in known_modules:
                    info.import_modules[local] = f"{module}.{alias.name}"
                else:
                    info.import_objects[local] = (module, alias.name)


def _collect_definitions(graph: CallGraph, info: ModuleInfo) -> None:
    module_body = info.tree.body if isinstance(info.tree, ast.Module) else []
    for node in module_body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _add_function(graph, info, node, cls=None)
        elif isinstance(node, ast.ClassDef):
            methods: Set[str] = set()
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(child.name)
                    _add_function(graph, info, child, cls=node.name)
            info.classes[node.name] = methods
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    info.global_names.add(target.id)
    # the import-time pseudo-function
    pseudo = FunctionNode(
        qualname=f"{info.name}:{MODULE_FUNCTION}", module=info.name,
        relpath=info.relpath, name=MODULE_FUNCTION, lineno=1, node=info.tree)
    graph.functions[pseudo.qualname] = pseudo


def _add_function(graph: CallGraph, info: ModuleInfo,
                  node: ast.AST, cls: Optional[str]) -> None:
    local_qual = f"{cls}.{node.name}" if cls else node.name
    qualname = f"{info.name}:{local_qual}"
    info.functions[local_qual] = local_qual
    if cls is None:
        info.functions[node.name] = node.name
    graph.functions[qualname] = FunctionNode(
        qualname=qualname, module=info.name, relpath=info.relpath,
        name=node.name, lineno=node.lineno,
        is_async=isinstance(node, ast.AsyncFunctionDef), cls=cls, node=node)
    if cls is not None:
        graph.methods_by_name.setdefault(node.name, []).append(qualname)


# ---------------------------------------------------------------------------
# call linking
# ---------------------------------------------------------------------------
def walk_owned(owner: ast.AST, *, is_module: bool) -> Iterator[ast.AST]:
    """Walk the statements *owned* by a function (or module pseudo-function).

    For a module, stop at function/class-method boundaries (those calls
    belong to the defs themselves); for a function, descend everywhere —
    nested defs and lambdas run at the enclosing function's behest.
    """
    if is_module:
        stack = list(ast.iter_child_nodes(owner))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))
    else:
        for index, node in enumerate(ast.walk(owner)):
            if index == 0:
                continue
            yield node


def _function_ref_target(graph: CallGraph, info: ModuleInfo,
                         owner: FunctionNode, node: ast.AST) -> Optional[str]:
    """Resolve a *function reference* expression (not a call) to a qualname."""
    if isinstance(node, ast.Name):
        return _resolve_name_call(graph, info, node.id)
    if isinstance(node, ast.Attribute):
        dotted = astutil.dotted_name(node)
        if dotted and owner.cls is not None:
            head, _, attr = dotted.partition(".")
            if head in ("self", "cls") and attr and "." not in attr:
                if attr in info.classes.get(owner.cls, ()):
                    return f"{info.name}:{owner.cls}.{attr}"
        if dotted:
            return _resolve_dotted_call(graph, info, dotted)
    return None


def _resolve_name_call(graph: CallGraph, info: ModuleInfo,
                       name: str) -> Optional[str]:
    if name in info.functions and "." not in info.functions[name]:
        return f"{info.name}:{name}"
    if name in info.classes:
        return graph.resolve_object(info.name, name)
    if name in info.import_objects:
        module, object_name = info.import_objects[name]
        return graph.resolve_object(module, object_name)
    return None


def _resolve_dotted_call(graph: CallGraph, info: ModuleInfo,
                         dotted: str) -> Optional[str]:
    """Resolve ``alias.attr[.attr]`` through the module alias tables."""
    head, _, rest = dotted.partition(".")
    if not rest:
        return _resolve_name_call(graph, info, head)
    if head in info.import_modules:
        full = info.import_modules[head] + "." + rest
    elif head in info.classes:
        # ClassName.method(...) within the defining module
        attr = rest.split(".")[0]
        if attr in info.classes[head]:
            return f"{info.name}:{head}.{attr}"
        return None
    else:
        return None
    # longest known-module prefix wins; the remainder is the object path
    parts = full.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        module = ".".join(parts[:cut])
        if module in graph.modules:
            remainder = parts[cut:]
            if len(remainder) == 1:
                return graph.resolve_object(module, remainder[0])
            if len(remainder) == 2:
                target = f"{module}:{remainder[0]}.{remainder[1]}"
                return target if target in graph.functions else None
            return None
    return None


def _substituted_dotted(info: ModuleInfo, dotted: str) -> str:
    """Rewrite the leading alias of *dotted* to its real module path."""
    head, _, rest = dotted.partition(".")
    real = info.import_modules.get(head)
    if real and rest:
        return f"{real}.{rest}"
    return dotted


def _unique_method_target(graph: CallGraph, method: str) -> Optional[str]:
    if method in COMMON_METHOD_NAMES or method.startswith("__"):
        return None
    candidates = graph.methods_by_name.get(method, ())
    if len(candidates) == 1:
        return candidates[0]
    return None


def _sorted_wrapped_ids(owner: ast.AST, is_module: bool) -> Set[int]:
    wrapped: Set[int] = set()
    nodes = walk_owned(owner, is_module=is_module)
    for node in nodes:
        if isinstance(node, ast.Call) and astutil.call_name(node) == "sorted" \
                and node.args:
            wrapped.add(id(node.args[0]))
    return wrapped


def _link_function(graph: CallGraph, info: ModuleInfo,
                   owner: FunctionNode) -> None:
    is_module = owner.name == MODULE_FUNCTION
    wrapped = _sorted_wrapped_ids(owner.node, is_module)
    for node in walk_owned(owner.node, is_module=is_module):
        if not isinstance(node, ast.Call):
            continue
        _link_call(graph, info, owner, node, wrapped)


def _link_call(graph: CallGraph, info: ModuleInfo, owner: FunctionNode,
               call: ast.Call, wrapped: Set[int]) -> None:
    func = call.func
    target: Optional[str] = None
    external: Optional[str] = None

    if isinstance(func, ast.Name):
        target = _resolve_name_call(graph, info, func.id)
        if target is None:
            external = func.id
    elif isinstance(func, ast.Attribute):
        dotted = astutil.dotted_name(func)
        if dotted is not None:
            head = dotted.split(".")[0]
            if head in ("self", "cls") and owner.cls is not None:
                attr = dotted.split(".")[1] if dotted.count(".") >= 1 else ""
                if dotted.count(".") == 1 \
                        and attr in info.classes.get(owner.cls, ()):
                    target = f"{info.name}:{owner.cls}.{attr}"
                else:
                    target = _unique_method_target(graph, func.attr)
            else:
                target = _resolve_dotted_call(graph, info, dotted)
                if target is None and head not in info.import_modules \
                        and head not in info.classes:
                    # unknown receiver: fall back to dynamic dispatch
                    target = _unique_method_target(graph, func.attr)
            if target is None:
                external = _substituted_dotted(info, dotted)
        else:
            # call on a computed receiver: x().attr(...), d[k].attr(...)
            target = _unique_method_target(graph, func.attr)
            if target is None:
                external = f"?.{func.attr}"

    if target is not None:
        owner.calls.append(CallSite(target=target, lineno=call.lineno,
                                    col=call.col_offset))
    elif external is not None:
        owner.external_calls.append(ExternalCall(
            dotted=external, lineno=call.lineno, col=call.col_offset,
            sorted_wrapped=id(call) in wrapped))

    _detect_roots(graph, info, owner, call)


#: (callable-name, argument-index) pairs whose argument is run on another
#: thread or the event loop: Thread(target=...), pool.submit(f, ...),
#: loop.run_in_executor(pool, f, ...), asyncio.start_server(cb, ...)
_THREAD_DISPATCHERS = {
    "submit": 0,
    "run_in_executor": 1,
    "start_server": 0,
}


def _detect_roots(graph: CallGraph, info: ModuleInfo, owner: FunctionNode,
                  call: ast.Call) -> None:
    name = astutil.call_name(call)
    candidates: List[ast.AST] = []
    if name == "Thread":
        for keyword in call.keywords:
            if keyword.arg == "target":
                candidates.append(keyword.value)
    elif name in _THREAD_DISPATCHERS:
        index = _THREAD_DISPATCHERS[name]
        if len(call.args) > index:
            candidates.append(call.args[index])
    for candidate in candidates:
        target = _function_ref_target(graph, info, owner, candidate)
        if target is not None and target not in graph.thread_roots:
            graph.thread_roots.append(target)


def _detect_worker_roots(graph: CallGraph) -> None:
    references: Set[str] = set()
    for module_name in sorted(graph.modules):
        for node in ast.walk(graph.modules[module_name].tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                    and WORKER_REF_RE.match(node.value):
                references.add(node.value)
    for reference in sorted(references):
        target = graph.resolve_worker_ref(reference)
        if target is not None and target not in graph.worker_roots:
            graph.worker_roots.append(target)
            # fabric workers also run under the in-process ThreadExecutor
            if target not in graph.thread_roots:
                graph.thread_roots.append(target)


# ---------------------------------------------------------------------------
# the entry point
# ---------------------------------------------------------------------------
def build_call_graph(root: Path,
                     single_relpath: Optional[str] = None) -> CallGraph:
    """Parse and link every python file under *root* into a :class:`CallGraph`.

    *single_relpath* overrides the scope path when *root* is one file (the
    fixture tests analyze a lone file under a synthetic relpath).
    """
    root = Path(root)
    graph = CallGraph()
    parsed: List[ModuleInfo] = []
    for path, relpath in iter_project_files(root):
        if single_relpath is not None:
            relpath = single_relpath
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
        except SyntaxError:
            continue  # analyze_file reports the parse error separately
        info = ModuleInfo(name=module_name_for(root, relpath)
                          if root.is_dir() else path.stem,
                          relpath=relpath, path=path, tree=tree)
        graph.modules[info.name] = info
        parsed.append(info)

    known_modules = set(graph.modules)
    for info in parsed:
        _collect_imports(info, known_modules)
        _collect_definitions(graph, info)
    for info in parsed:
        for local_qual in sorted(set(info.functions.values())):
            owner = graph.functions.get(f"{info.name}:{local_qual}")
            if owner is not None and not owner.calls:
                _link_function(graph, info, owner)
        _link_function(graph, info,
                       graph.functions[f"{info.name}:{MODULE_FUNCTION}"])
    _detect_worker_roots(graph)
    graph.thread_roots.sort()
    graph.worker_roots.sort()
    return graph


def project_root_for(path: Path, relpath: str) -> Tuple[Path, Optional[str]]:
    """Derive the project root from a file and its scope path.

    When the file's real path ends with its scope path the project is the
    tree above it (``.../src/repro`` for ``exec/workers.py``); otherwise the
    file stands alone (fixtures analyzed under synthetic scope paths) and
    the scope path is carried through for rule matching.
    """
    path = Path(path).resolve()
    posix = path.as_posix()
    if posix.endswith("/" + relpath):
        return Path(posix[:-(len(relpath) + 1)]), None
    return path, relpath
