"""Obs-inertness rules: telemetry must never perturb results or digests.

PR 6's contract: enabling tracing/metrics changes *nothing* about what a
sweep computes, digests, or caches.  Three statically checkable consequences:

* ``repro.obs`` is a leaf layer — it may not import the pipeline it
  observes (``obs-layering``);
* no value produced by obs code may flow into a task payload or digest
  input (``obs-payload-write``);
* the ``raw["obs"]`` wire side-channel is created in exactly two sanctioned
  places — the parallel executor's ``_to_wire`` (the marker) and the
  worker's ``run_task`` (the captured telemetry) — anywhere else is a new,
  unaudited transport (``obs-side-channel``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis import astutil
from repro.analysis.framework import (
    SEVERITY_ERROR,
    FileContext,
    Finding,
    Rule,
    rule,
)

#: repro sub-packages the obs layer must not depend on
_LAYERS_ABOVE_OBS = (
    "repro.exec", "repro.benchmark", "repro.cost", "repro.scenarios",
    "repro.synthesis", "repro.llm", "repro.core", "repro.cli",
    "repro.sandbox", "repro.techniques", "repro.graph", "repro.frames",
    "repro.sqlengine", "repro.apps", "repro.analysis",
)

#: the only files allowed to create the ``["obs"]`` wire side-channel
_SIDE_CHANNEL_FILES = ("exec/executors.py", "exec/workers.py")

#: call targets that feed digest/cache-key material
_DIGEST_SINKS = ("Task", "canonical_payload")


@rule("obs-layering", severity=SEVERITY_ERROR, scope=("obs/",),
      description="repro.obs importing a layer it observes",
      suggestion="keep repro.obs a leaf: move shared helpers into "
                 "repro.utils, or invert the dependency")
def check_obs_layering(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    def forbidden(module: str) -> bool:
        return any(module == layer or module.startswith(layer + ".")
                   for layer in _LAYERS_ABOVE_OBS)

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if forbidden(alias.name):
                    yield ctx.finding(
                        rule_, node,
                        f"obs module imports {alias.name!r}; the obs layer "
                        f"must not depend on the pipeline it observes")
        elif isinstance(node, ast.ImportFrom) and node.module:
            if forbidden(node.module):
                yield ctx.finding(
                    rule_, node,
                    f"obs module imports from {node.module!r}; the obs layer "
                    f"must not depend on the pipeline it observes")


def _obs_names(tree: ast.AST) -> Set[str]:
    """Local names in this module that resolve to repro.obs objects."""
    names = astutil.from_imports(tree, "repro.obs")
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module \
                and node.module.startswith("repro.obs."):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.obs" or alias.name.startswith("repro.obs."):
                    names.add(alias.asname or alias.name.split(".")[0])
    return names


def _names_in(node: ast.AST, wanted: Set[str]) -> Iterator[ast.Name]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in wanted:
            yield child


@rule("obs-payload-write", severity=SEVERITY_ERROR,
      description="obs-layer value flowing into a task payload or digest input",
      suggestion="telemetry rides the wire-form 'obs' field only; payloads "
                 "and digest inputs must not mention obs objects")
def check_obs_payload_write(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    if ctx.relpath.startswith("obs/"):
        return  # the obs layer itself builds no tasks; covered by obs-layering
    obs_names = _obs_names(ctx.tree)
    if not obs_names:
        return
    for call in astutil.walk_calls(ctx.tree):
        name = astutil.call_name(call)
        if name in _DIGEST_SINKS:
            for offender in _names_in(call, obs_names):
                yield ctx.finding(
                    rule_, offender,
                    f"obs name {offender.id!r} appears inside a {name}(...) "
                    f"expression; telemetry must never reach payloads or "
                    f"digest material")
        elif isinstance(call.func, ast.Attribute) and call.func.attr == "digest":
            for offender in _names_in(call, obs_names):
                yield ctx.finding(
                    rule_, offender,
                    f"obs name {offender.id!r} appears in a .digest(...) "
                    f"call; digests must be a pure function of task "
                    f"identity")
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) \
                        and astutil.dotted_name(target.value) in ("payload",) \
                        and any(_names_in(node.value, obs_names)):
                    yield ctx.finding(
                        rule_, node,
                        "assignment writes an obs-derived value into a "
                        "payload mapping")


@rule("obs-side-channel", severity=SEVERITY_ERROR,
      description="creation of an ['obs'] wire field outside the sanctioned sites",
      suggestion="ship telemetry through the existing side-channel "
                 "(executors._to_wire marker + workers.run_task capture) "
                 "instead of inventing a new transport")
def check_obs_side_channel(rule_: Rule, ctx: FileContext) -> Iterator[Finding]:
    if ctx.relpath in _SIDE_CHANNEL_FILES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Subscript) \
                    and astutil.subscript_key(target) == "obs":
                yield ctx.finding(
                    rule_, node,
                    "assignment to a ['obs'] field: the obs wire "
                    "side-channel may only be created in "
                    "exec/executors.py (_to_wire) and exec/workers.py "
                    "(run_task)")
