"""End-to-end query pipeline (the full loop of the paper's Figure 2).

For one natural-language query the pipeline builds the prompt, calls the
(simulated) LLM, extracts the code from the response, runs it in the
execution sandbox against the chosen backend representation, and converts the
mutated state back into a :class:`PropertyGraph` so the application wrapper —
or the benchmark evaluator — can inspect it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.application import NetworkApplication
from repro.core.codeblocks import extract_python_code, extract_sql_code
from repro.core.prompts import PromptBundle, build_prompt
from repro.graph import PropertyGraph
from repro.graph.convert import from_frames, from_networkx, from_sql_database
from repro.llm.base import LlmProvider, LlmRequest, LlmResponse, TokenLimitExceeded
from repro.sandbox import ExecutionOutcome, ExecutionSandbox
from repro.sqlengine import SqlError
from repro.utils.validation import require_in


@dataclass
class QueryRequest:
    """One query to run through the pipeline."""

    query: str
    backend: str
    metadata: Dict[str, Any] = field(default_factory=dict)
    attempt: int = 0
    feedback: Optional[str] = None


@dataclass
class PipelineResult:
    """Everything produced while answering one query."""

    request: QueryRequest
    prompt: Optional[PromptBundle] = None
    response: Optional[LlmResponse] = None
    code: str = ""
    execution: Optional[ExecutionOutcome] = None
    result_value: Any = None
    updated_graph: Optional[PropertyGraph] = None
    error_stage: Optional[str] = None    # "prompt", "llm", "extract", "execute"
    error_message: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        """True when code was produced and executed without an error."""
        return self.error_stage is None

    @property
    def cost_usd(self) -> float:
        return self.response.cost_usd if self.response else 0.0


class NetworkManagementPipeline:
    """Wire an application, an LLM provider, and the sandbox together."""

    def __init__(self, application: NetworkApplication, provider: LlmProvider,
                 backend: str, sandbox: Optional[ExecutionSandbox] = None) -> None:
        require_in(backend, ("networkx", "pandas", "sql", "strawman"), "backend")
        self.application = application
        self.provider = provider
        self.backend = backend
        self.sandbox = sandbox or ExecutionSandbox()

    # ------------------------------------------------------------------
    def run(self, request: QueryRequest) -> PipelineResult:
        """Answer one query end to end."""
        result = PipelineResult(request=request)
        metadata = dict(request.metadata)
        metadata.setdefault("backend", self.backend)
        metadata.setdefault("query", request.query)
        metadata.setdefault("application", self.application.name)

        result.prompt = build_prompt(self.application, request.query, self.backend,
                                     extra_metadata=metadata)
        llm_request = LlmRequest(prompt=result.prompt.text, metadata=result.prompt.metadata,
                                 attempt=request.attempt, feedback=request.feedback)
        try:
            result.response = self.provider.complete(llm_request)
        except TokenLimitExceeded as exc:
            result.error_stage = "llm"
            result.error_message = str(exc)
            return result

        if self.backend == "strawman":
            self._interpret_strawman(result)
            return result

        if self.backend == "sql":
            result.code = extract_sql_code(result.response.text)
        else:
            result.code = extract_python_code(result.response.text)
        if not result.code:
            result.error_stage = "extract"
            result.error_message = "the response contained no code"
            return result

        if self.backend == "sql":
            self._execute_sql(result)
        else:
            self._execute_python(result)
        return result

    def run_query(self, query: str, **metadata: Any) -> PipelineResult:
        """Convenience wrapper accepting a bare query string."""
        return self.run(QueryRequest(query=query, backend=self.backend, metadata=metadata))

    # ------------------------------------------------------------------
    def _execute_python(self, result: PipelineResult) -> None:
        if self.backend == "networkx":
            namespace: Dict[str, Any] = {"G": self.application.networkx_view()}
        else:
            nodes_df, edges_df = self.application.frame_view()
            namespace = {"nodes_df": nodes_df, "edges_df": edges_df}

        outcome = self.sandbox.execute(result.code, namespace)
        result.execution = outcome
        if outcome.failed:
            result.error_stage = "execute"
            result.error_message = outcome.describe_error()
            return
        result.result_value = outcome.result
        if self.backend == "networkx":
            result.updated_graph = from_networkx(outcome.namespace["G"])
        else:
            result.updated_graph = from_frames(outcome.namespace["nodes_df"],
                                               outcome.namespace["edges_df"],
                                               directed=self.application.graph.directed)

    def _execute_sql(self, result: PipelineResult) -> None:
        database = self.application.sql_view()
        statements = [stmt.strip() for stmt in result.code.split(";") if stmt.strip()]
        last_result = None
        try:
            for statement in statements:
                returned = database.execute(statement)
                if returned is not None:
                    last_result = returned
        except SqlError as exc:
            result.execution = ExecutionOutcome(
                success=False, error_type=type(exc).__name__, error_message=str(exc))
            result.error_stage = "execute"
            result.error_message = f"{type(exc).__name__}: {exc}"
            return
        result.execution = ExecutionOutcome(success=True, result=last_result)
        result.result_value = last_result
        result.updated_graph = from_sql_database(
            database, directed=self.application.graph.directed)

    def _interpret_strawman(self, result: PipelineResult) -> None:
        """Parse the strawman's direct answer (JSON value and/or graph)."""
        from repro.graph.serialization import graph_from_dict

        text = result.response.text.strip()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            # a bare textual answer: keep it as the result value
            result.result_value = text
            return
        if isinstance(payload, dict) and "kind" in payload:
            result.result_value = payload.get("value")
            if payload.get("graph") is not None:
                result.updated_graph = graph_from_dict(payload["graph"])
        else:
            result.result_value = payload
