"""The Figure-2 system framework.

This package wires together the components of the paper's architecture:

* :class:`~repro.core.application.NetworkApplication` — the application
  wrapper ( 1 ) that turns raw network data into a property graph and
  describes it to the LLM;
* :class:`~repro.core.prompts.ApplicationPromptGenerator` ( 2 ) and
  :class:`~repro.core.prompts.CodeGenPromptGenerator` ( 3 ) — prompt
  construction;
* the LLM itself ( 4 ) lives in :mod:`repro.llm`;
* the execution sandbox ( 5 ) lives in :mod:`repro.sandbox`;
* :class:`~repro.core.pipeline.NetworkManagementPipeline` — the end-to-end
  session loop ( 6 ), including code extraction, execution, and state sync.
"""

from repro.core.application import NetworkApplication, ApplicationContext
from repro.core.codeblocks import extract_code_blocks, extract_python_code, extract_sql_code
from repro.core.prompts import (
    ApplicationPromptGenerator,
    CodeGenPromptGenerator,
    PromptBundle,
)
from repro.core.pipeline import (
    NetworkManagementPipeline,
    PipelineResult,
    QueryRequest,
)

__all__ = [
    "NetworkApplication",
    "ApplicationContext",
    "ApplicationPromptGenerator",
    "CodeGenPromptGenerator",
    "PromptBundle",
    "NetworkManagementPipeline",
    "PipelineResult",
    "QueryRequest",
    "extract_code_blocks",
    "extract_python_code",
    "extract_sql_code",
]
