"""Application wrapper base class (component  1  of the paper's Figure 2).

An application wrapper owns the raw network data of one management
application, converts it into the shared :class:`PropertyGraph`
representation, and describes the graph's structure (what nodes, edges, and
attributes mean) in natural language for the prompt generator.  It is also
the component that receives the updated graph back after the operator
approves a state-changing query ("sync state" in the paper's figure).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.graph import PropertyGraph, compute_stats
from repro.graph.convert import to_frames, to_networkx, to_sql_database


@dataclass
class ApplicationContext:
    """Everything the prompt generator needs to know about an application."""

    application_name: str
    application_description: str
    graph_description: str
    node_schema: Dict[str, str]
    edge_schema: Dict[str, str]
    terminology: Dict[str, str] = field(default_factory=dict)
    example_queries: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Render the context as the natural-language block used in prompts."""
        lines = [
            f"Application: {self.application_name}",
            self.application_description,
            "",
            "Graph structure:",
            self.graph_description,
            "",
            "Node attributes:",
        ]
        for key, meaning in self.node_schema.items():
            lines.append(f"  - {key}: {meaning}")
        lines.append("Edge attributes:")
        for key, meaning in self.edge_schema.items():
            lines.append(f"  - {key}: {meaning}")
        if self.terminology:
            lines.append("Terminology:")
            for term, meaning in self.terminology.items():
                lines.append(f"  - {term}: {meaning}")
        return "\n".join(lines)


class NetworkApplication(abc.ABC):
    """Base class for the two benchmark applications.

    Subclasses provide the raw-data-to-graph conversion and the
    natural-language context; this base class provides the representation
    conversions shared by every backend and the state-sync hook.
    """

    #: short machine-readable identifier ("traffic_analysis", "malt")
    name: str = "application"

    def __init__(self, graph: PropertyGraph) -> None:
        self._graph = graph
        self._history: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PropertyGraph:
        """The current network state as a property graph."""
        return self._graph

    def networkx_view(self):
        """The state as a ``networkx`` graph (NetworkX backend input)."""
        return to_networkx(self._graph)

    def frame_view(self):
        """The state as ``(node_frame, edge_frame)`` (pandas-style backend input)."""
        return to_frames(self._graph)

    def sql_view(self):
        """The state as an in-memory SQL database (SQL backend input)."""
        return to_sql_database(self._graph)

    # ------------------------------------------------------------------
    # description for prompt generation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def context(self) -> ApplicationContext:
        """Return the natural-language application context."""

    def graph_summary(self) -> str:
        """One-paragraph quantitative summary of the current graph."""
        stats = compute_stats(self._graph)
        return (f"The graph has {stats.node_count} nodes and {stats.edge_count} edges; "
                f"node attributes: {', '.join(stats.node_attribute_keys) or 'none'}; "
                f"edge attributes: {', '.join(stats.edge_attribute_keys) or 'none'}.")

    # ------------------------------------------------------------------
    # state synchronisation ( 1  <- 6  in Figure 2)
    # ------------------------------------------------------------------
    def sync_state(self, updated_graph: PropertyGraph, query: str,
                   approved_by: Optional[str] = None) -> None:
        """Accept an operator-approved updated graph as the new network state."""
        self._history.append({
            "query": query,
            "approved_by": approved_by,
            "previous_nodes": self._graph.node_count,
            "previous_edges": self._graph.edge_count,
            "new_nodes": updated_graph.node_count,
            "new_edges": updated_graph.edge_count,
        })
        self._graph = updated_graph

    @property
    def history(self) -> List[Dict[str, Any]]:
        """Log of approved state changes (used for future prompt enhancement)."""
        return list(self._history)
