"""Extraction and light validation of code returned by an LLM.

LLM responses interleave prose and fenced code blocks.  The pipeline must
pull out the code before handing it to the sandbox; the paper calls this the
"Extract code & Validate" step.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional


_FENCE_PATTERN = re.compile(r"```([A-Za-z0-9_+-]*)\n(.*?)```", re.DOTALL)


def extract_code_blocks(text: str, language: Optional[str] = None) -> List[str]:
    """Return the contents of all fenced code blocks in *text*.

    When *language* is given, only blocks tagged with that language (or
    untagged blocks) are returned.
    """
    blocks = []
    for tag, body in _FENCE_PATTERN.findall(text):
        if language is None or not tag or tag.lower() == language.lower():
            blocks.append(body.strip())
    return blocks


def extract_python_code(text: str) -> str:
    """Extract Python source from an LLM response.

    Preference order: tagged ``python`` blocks, then untagged blocks, then —
    if the whole response already parses as Python — the raw text.
    """
    blocks = extract_code_blocks(text, language="python")
    if blocks:
        return "\n\n".join(blocks)
    blocks = extract_code_blocks(text)
    if blocks:
        return "\n\n".join(blocks)
    stripped = text.strip()
    if stripped and looks_like_python(stripped):
        return stripped
    return ""


def extract_sql_code(text: str) -> str:
    """Extract SQL from an LLM response (tagged ``sql`` blocks first)."""
    blocks = extract_code_blocks(text, language="sql")
    if blocks:
        return ";\n".join(blocks)
    blocks = extract_code_blocks(text)
    if blocks:
        return ";\n".join(blocks)
    stripped = text.strip()
    upper = stripped.upper()
    if upper.startswith(("SELECT", "INSERT", "UPDATE", "DELETE", "WITH")):
        return stripped
    return ""


def looks_like_python(source: str) -> bool:
    """True when *source* parses as Python."""
    try:
        ast.parse(source)
    except SyntaxError:
        return False
    return True


def python_syntax_error(source: str) -> Optional[str]:
    """Return the syntax-error message for *source*, or ``None`` if it parses."""
    try:
        ast.parse(source)
    except SyntaxError as exc:
        return f"{exc.msg} (line {exc.lineno})"
    return None
