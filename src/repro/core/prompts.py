"""Prompt generation (components  2  and  3  of the paper's Figure 2).

The paper splits prompt construction into an *application* part (what the
network and its graph mean) and a *code-generation* part (which library to
use, how to return the answer).  Keeping them separate lets either side
evolve independently — e.g. swapping pandas for NetworkX only changes the
code-gen prompt generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.application import ApplicationContext, NetworkApplication
from repro.graph.serialization import graph_to_json
from repro.utils.validation import require_in


#: the code-generation backends evaluated in the paper
BACKENDS = ("networkx", "pandas", "sql", "strawman")


@dataclass
class PromptBundle:
    """A fully rendered prompt plus the structured metadata it was built from.

    ``metadata`` exists so that the *simulated* LLM providers can answer the
    query without re-parsing the prose prompt; a real remote LLM would only
    ever see :attr:`text`.
    """

    text: str
    backend: str
    query: str
    application_name: str
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def character_count(self) -> int:
        return len(self.text)


class ApplicationPromptGenerator:
    """Render the application-specific context block for a user query."""

    def __init__(self, application: NetworkApplication) -> None:
        self._application = application

    @property
    def application(self) -> NetworkApplication:
        return self._application

    def render_context(self, query: str) -> str:
        """Application context tailored to *query*.

        The dynamic part mirrors the paper's suggestion of selecting relevant
        entities/relationships: the rendered context always contains the
        schema, and adds the quantitative graph summary so the LLM knows the
        data's scale without seeing the data itself.
        """
        context: ApplicationContext = self._application.context()
        lines = [context.render(), "", f"The operator's request is: {query!r}"]
        return "\n".join(lines)


class CodeGenPromptGenerator:
    """Render backend-specific code-generation instructions."""

    _BACKEND_INSTRUCTIONS = {
        "networkx": (
            "Write Python code that uses the networkx library. The communication "
            "graph is available as the variable `G`, a networkx.DiGraph whose nodes "
            "and edges carry the attributes described above. Modify `G` in place for "
            "manipulation requests. Store the final answer for analysis requests in a "
            "variable named `result`. Do not read or write files and do not print."),
        "pandas": (
            "Write Python code that uses dataframes. Two dataframes are available: "
            "`nodes_df` (one row per node, column `id` plus the node attributes) and "
            "`edges_df` (one row per edge, columns `source` and `target` plus the edge "
            "attributes). Use filtering, sorting, grouping and merging on these frames. "
            "For manipulation requests assign the updated frames back to `nodes_df` / "
            "`edges_df`. Store the final answer for analysis requests in a variable "
            "named `result`. Do not read or write files and do not print."),
        "sql": (
            "Write one or more SQL statements. The database has two tables: `nodes` "
            "(column `id` plus the node attributes) and `edges` (columns `source` and "
            "`target` plus the edge attributes). Use standard SELECT / UPDATE / INSERT / "
            "DELETE statements. The result of the final SELECT is the answer."),
        "strawman": (
            "The full network data is included below in JSON form. Answer the "
            "operator's request directly from the data and reply with the answer only."),
    }

    def __init__(self, backend: str, result_variable: str = "result") -> None:
        require_in(backend, BACKENDS, "backend")
        self.backend = backend
        self.result_variable = result_variable

    def render_instructions(self) -> str:
        return self._BACKEND_INSTRUCTIONS[self.backend]

    def few_shot_block(self, examples: Optional[List[Dict[str, str]]] = None) -> str:
        """Render optional few-shot examples (query -> code) into the prompt."""
        if not examples:
            return ""
        lines = ["Here are examples of previous requests and correct code:"]
        for example in examples:
            lines.append(f"Request: {example['query']}")
            lines.append("Code:")
            lines.append("```")
            lines.append(example["code"])
            lines.append("```")
        return "\n".join(lines)


def build_prompt(application: NetworkApplication, query: str, backend: str,
                 few_shot_examples: Optional[List[Dict[str, str]]] = None,
                 extra_metadata: Optional[Dict[str, Any]] = None) -> PromptBundle:
    """Build the complete prompt for one query against one backend.

    For the three code-generation backends the prompt contains only the
    schema and the query — never the network data itself (that is the
    privacy/scalability argument of the paper).  For the strawman baseline the
    serialized graph JSON is embedded, which is what makes its cost grow with
    graph size and eventually exceed the token window.
    """
    application_prompts = ApplicationPromptGenerator(application)
    codegen_prompts = CodeGenPromptGenerator(backend)

    sections = [
        "You are a network management assistant.",
        application_prompts.render_context(query),
        codegen_prompts.render_instructions(),
    ]
    few_shot = codegen_prompts.few_shot_block(few_shot_examples)
    if few_shot:
        sections.append(few_shot)
    if backend == "strawman":
        sections.append("Network data (JSON):")
        sections.append(graph_to_json(application.graph))
    sections.append(f"Operator request: {query}")

    metadata: Dict[str, Any] = {
        "query": query,
        "backend": backend,
        "application": application.name,
    }
    if extra_metadata:
        metadata.update(extra_metadata)

    return PromptBundle(
        text="\n\n".join(sections),
        backend=backend,
        query=query,
        application_name=application.name,
        metadata=metadata,
    )
