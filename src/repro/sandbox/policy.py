"""Static (AST-level) safety policy for LLM-generated code."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from repro.utils.validation import ValidationError


class PolicyViolation(ValidationError):
    """Raised when generated code violates the sandbox policy."""


@dataclass(frozen=True)
class PolicyFinding:
    """One policy violation, anchored to its source location.

    ``line`` is 1-based and ``col`` 0-based, matching :mod:`ast`; both the
    sandbox rejection message and ``repro analyze`` render them, so a
    violation in generated code and a violation in a checked-in template
    point at the same place.
    """

    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"line {self.line}, col {self.col}: {self.message}"


#: modules that generated code is allowed to import
DEFAULT_ALLOWED_IMPORTS: FrozenSet[str] = frozenset({
    "networkx", "math", "statistics", "collections", "itertools", "functools",
    "json", "re", "ipaddress", "heapq", "operator", "random", "numpy",
})

#: call names that are never allowed, even if reachable some other way
DEFAULT_FORBIDDEN_CALLS: FrozenSet[str] = frozenset({
    "eval", "exec", "compile", "open", "input", "__import__", "globals",
    "locals", "vars", "exit", "quit", "breakpoint", "help", "memoryview",
})

#: attribute names that indicate an escape attempt
DEFAULT_FORBIDDEN_ATTRIBUTES: FrozenSet[str] = frozenset({
    "__globals__", "__builtins__", "__subclasses__", "__bases__", "__mro__",
    "__code__", "__closure__", "__getattribute__", "__reduce__", "__reduce_ex__",
    "__class__", "__dict__", "__loader__", "__spec__",
})


@dataclass
class SandboxPolicy:
    """Configurable limits applied to generated code."""

    allowed_imports: FrozenSet[str] = DEFAULT_ALLOWED_IMPORTS
    forbidden_calls: FrozenSet[str] = DEFAULT_FORBIDDEN_CALLS
    forbidden_attributes: FrozenSet[str] = DEFAULT_FORBIDDEN_ATTRIBUTES
    max_source_lines: int = 400
    max_seconds: float = 10.0
    max_operations: int = 5_000_000

    def with_extra_imports(self, *modules: str) -> "SandboxPolicy":
        """Return a copy of the policy that also allows importing *modules*."""
        return SandboxPolicy(
            allowed_imports=frozenset(self.allowed_imports) | set(modules),
            forbidden_calls=self.forbidden_calls,
            forbidden_attributes=self.forbidden_attributes,
            max_source_lines=self.max_source_lines,
            max_seconds=self.max_seconds,
            max_operations=self.max_operations,
        )


class PolicyVisitor(ast.NodeVisitor):
    """Collect policy violations over the whole AST (not just the first).

    Also reused by :mod:`repro.analysis` to statically vet the checked-in
    emitter templates, so violations carry structured locations
    (:class:`PolicyFinding`) rather than bare strings.
    """

    def __init__(self, policy: SandboxPolicy) -> None:
        self.policy = policy
        self.violations: List[PolicyFinding] = []

    def _record(self, node: ast.AST, message: str) -> None:
        self.violations.append(PolicyFinding(
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root not in self.policy.allowed_imports:
                self._record(node, f"import of module {alias.name!r} is not allowed")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root not in self.policy.allowed_imports:
            self._record(node, f"import from module {node.module!r} is not allowed")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in self.policy.forbidden_calls:
            self._record(node, f"call to {name!r} is not allowed")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in self.policy.forbidden_attributes:
            self._record(node, f"access to attribute {node.attr!r} is not allowed")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in ("__builtins__",):
            self._record(node, "access to __builtins__ is not allowed")
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._record(node, "the 'global' statement is not allowed")

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:  # noqa: D102
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        # `with open(...)` is already caught by the call check; other context
        # managers over exposed objects are fine.
        self.generic_visit(node)


#: backward-compatible private alias (pre-analysis callers)
_PolicyVisitor = PolicyVisitor


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def validate_source(source: str, policy: Optional[SandboxPolicy] = None) -> None:
    """Validate *source* against *policy*, raising :class:`PolicyViolation`.

    A :class:`SyntaxError` raised here propagates to the caller unchanged so
    the benchmark's error classifier can distinguish "syntax error" from
    "policy violation".
    """
    policy = policy or SandboxPolicy()
    lines = source.splitlines()
    if len(lines) > policy.max_source_lines:
        raise PolicyViolation(
            f"generated code has {len(lines)} lines; the policy allows "
            f"{policy.max_source_lines}")
    tree = ast.parse(source)
    visitor = PolicyVisitor(policy)
    visitor.visit(tree)
    if visitor.violations:
        raise PolicyViolation("; ".join(str(v) for v in visitor.violations))
