"""Execution sandbox (component  5  of the paper's Figure 2).

LLM-generated code must never run with the operator's full privileges; the
paper highlights virtualization/containerization plus library and syscall
restrictions.  In this reproduction the sandbox is an in-process restricted
interpreter:

* an AST policy check rejects dangerous constructs *before* execution
  (imports outside an allowlist, file/OS access, ``exec``/``eval``,
  dunder attribute access);
* execution happens under a curated builtins table and a namespace containing
  only the objects the backend intentionally exposes (the graph, the frames,
  or the SQL database);
* a wall-clock budget and a statement budget bound runaway code;
* the outcome (result value, mutated namespace, stdout, or the normalized
  error) is captured in a :class:`~repro.sandbox.executor.ExecutionOutcome`.
"""

from repro.sandbox.policy import (
    PolicyFinding,
    PolicyViolation,
    PolicyVisitor,
    SandboxPolicy,
    validate_source,
)
from repro.sandbox.executor import ExecutionOutcome, ExecutionSandbox, SandboxTimeout

__all__ = [
    "SandboxPolicy",
    "PolicyFinding",
    "PolicyViolation",
    "PolicyVisitor",
    "validate_source",
    "ExecutionOutcome",
    "ExecutionSandbox",
    "SandboxTimeout",
]
