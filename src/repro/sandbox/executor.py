"""Restricted execution of LLM-generated code."""

from __future__ import annotations

import builtins
import contextlib
import io
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.obs import default_registry, span
from repro.sandbox.policy import PolicyViolation, SandboxPolicy, validate_source


class SandboxTimeout(RuntimeError):
    """Raised (and captured) when generated code exceeds the time budget."""


#: builtins exposed to generated code — enough for data manipulation, nothing
#: that touches the filesystem, processes, or the interpreter internals.
_SAFE_BUILTIN_NAMES = (
    "abs", "all", "any", "bool", "dict", "divmod", "enumerate", "filter",
    "float", "format", "frozenset", "getattr", "hasattr", "hash", "int",
    "isinstance", "issubclass", "iter", "len", "list", "map", "max", "min",
    "next", "object", "pow", "print", "range", "repr", "reversed", "round",
    "set", "setattr", "slice", "sorted", "str", "sum", "tuple", "type", "zip",
    "Exception", "ValueError", "TypeError", "KeyError", "IndexError",
    "AttributeError", "ZeroDivisionError", "StopIteration", "RuntimeError",
    "ArithmeticError", "LookupError", "NotImplementedError", "True", "False",
    "None",
)


def _safe_builtins() -> Dict[str, Any]:
    table: Dict[str, Any] = {}
    for name in _SAFE_BUILTIN_NAMES:
        if hasattr(builtins, name):
            table[name] = getattr(builtins, name)
    # a controlled __import__ that honours the sandbox policy is installed
    # per-execution in ExecutionSandbox.execute
    return table


@dataclass
class ExecutionOutcome:
    """Everything captured from one sandboxed execution."""

    success: bool
    result: Any = None
    namespace: Dict[str, Any] = field(default_factory=dict)
    stdout: str = ""
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    traceback_text: Optional[str] = None
    duration_seconds: float = 0.0

    @property
    def failed(self) -> bool:
        return not self.success

    def describe_error(self) -> str:
        if self.success:
            return ""
        return f"{self.error_type}: {self.error_message}"


class ExecutionSandbox:
    """Run generated Python in a restricted namespace with a time budget.

    Parameters
    ----------
    policy:
        The static and dynamic limits to enforce.
    result_variable:
        Name of the variable the generated code is asked to leave its answer
        in (the prompt instructs the LLM to assign to ``result``).
    """

    def __init__(self, policy: Optional[SandboxPolicy] = None,
                 result_variable: str = "result") -> None:
        self.policy = policy or SandboxPolicy()
        self.result_variable = result_variable

    # ------------------------------------------------------------------
    def _restricted_import(self, name: str, globals=None, locals=None,
                           fromlist=(), level=0):
        root = name.split(".")[0]
        if root not in self.policy.allowed_imports:
            raise PolicyViolation(f"import of module {name!r} is not allowed")
        return __import__(name, globals, locals, fromlist, level)

    def execute(self, source: str, namespace: Optional[Dict[str, Any]] = None,
                validate: bool = True) -> ExecutionOutcome:
        """Execute *source* and capture its outcome.

        The provided *namespace* (graph objects, frames, databases, helper
        libraries) is copied into the execution globals; the same dictionary
        is returned in the outcome so callers can inspect mutations.
        """
        attrs: Dict[str, Any] = {"source_bytes": len(source)}
        with span("sandbox.execute", attrs=attrs):
            outcome = self._execute(source, namespace, validate)
            if outcome.failed:
                attrs["error"] = outcome.error_type
        registry = default_registry()
        registry.counter("sandbox.runs").inc()
        if outcome.failed:
            registry.counter("sandbox.failures").inc()
        return outcome

    def _execute(self, source: str, namespace: Optional[Dict[str, Any]],
                 validate: bool) -> ExecutionOutcome:
        start = time.perf_counter()
        exec_globals: Dict[str, Any] = dict(namespace or {})
        builtin_table = _safe_builtins()
        builtin_table["__import__"] = self._restricted_import
        exec_globals["__builtins__"] = builtin_table
        stdout_buffer = io.StringIO()

        if validate:
            try:
                validate_source(source, self.policy)
            except SyntaxError as exc:
                return self._failure(exc, stdout_buffer, exec_globals, start)
            except PolicyViolation as exc:
                return self._failure(exc, stdout_buffer, exec_globals, start)

        try:
            compiled = compile(source, "<generated-code>", "exec")
        except SyntaxError as exc:
            return self._failure(exc, stdout_buffer, exec_globals, start)

        error_holder: Dict[str, BaseException] = {}

        def _run() -> None:
            try:
                with contextlib.redirect_stdout(stdout_buffer):
                    exec(compiled, exec_globals)  # noqa: S102 - sandboxed by policy
            except BaseException as exc:  # noqa: BLE001 - captured and reported
                error_holder["error"] = exc

        worker = threading.Thread(target=_run, daemon=True)
        worker.start()
        worker.join(self.policy.max_seconds)
        if worker.is_alive():
            timeout = SandboxTimeout(
                f"generated code exceeded the {self.policy.max_seconds:.1f}s time budget")
            return self._failure(timeout, stdout_buffer, exec_globals, start)
        if "error" in error_holder:
            return self._failure(error_holder["error"], stdout_buffer, exec_globals, start)

        duration = time.perf_counter() - start
        exec_globals.pop("__builtins__", None)
        return ExecutionOutcome(
            success=True,
            result=exec_globals.get(self.result_variable),
            namespace=exec_globals,
            stdout=stdout_buffer.getvalue(),
            duration_seconds=duration,
        )

    # ------------------------------------------------------------------
    def _failure(self, exc: BaseException, stdout_buffer: io.StringIO,
                 exec_globals: Dict[str, Any], start: float) -> ExecutionOutcome:
        duration = time.perf_counter() - start
        exec_globals.pop("__builtins__", None)
        if isinstance(exc, SyntaxError):
            message = f"{exc.msg} (line {exc.lineno})"
        else:
            message = str(exc)
        return ExecutionOutcome(
            success=False,
            namespace=exec_globals,
            stdout=stdout_buffer.getvalue(),
            error_type=type(exc).__name__,
            error_message=message,
            traceback_text="".join(traceback.format_exception_only(type(exc), exc)),
            duration_seconds=duration,
        )
