"""The content-keyed on-disk result cache.

Entries are keyed by :meth:`repro.exec.task.Task.digest` — a SHA-256 over
the fabric version, task key, worker reference, and canonical payload — so a
cache hit is only possible for the *same computation*.  Any change to a task
(a re-seeded scenario, a different model list, a renamed cell) changes the
digest and misses naturally; stale entries are simply never read again.

Values are stored with :mod:`pickle` (results are arbitrary Python objects:
evaluation records, cost points).  The cache is safe for concurrent writers
because entries are immutable once written and writes go through a
same-directory temporary file followed by an atomic ``os.replace``.

With ``max_entries`` set the cache enforces a cross-run LRU bound: every hit
refreshes its entry's mtime, and every store evicts the stalest entries once
the directory exceeds the limit — so a long-lived cache directory swept by
many differing configurations stops growing without bound.
"""

from __future__ import annotations

import itertools
import logging
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Iterator, Optional, Tuple

from repro.obs import default_registry

logger = logging.getLogger(__name__)


#: default cache location (repo-local, covered by .gitignore)
DEFAULT_CACHE_DIR = ".repro-cache"

#: per-process store counter: combined with the wall clock it stamps every
#: entry with a monotonic store sequence, so LRU eviction can order a burst
#: of stores that lands inside one filesystem-timestamp granule
_STORE_COUNTER = itertools.count(1)


def _store_sequence() -> Tuple[int, int]:
    # recency metadata only — ordered LRU bookkeeping that never feeds
    # digests, payloads, or cached values
    return (time.time_ns(), next(_STORE_COUNTER))  # repro: allow[det-wallclock]


class ResultCache:
    """A directory of pickled task results keyed by content digest."""

    def __init__(self, root=DEFAULT_CACHE_DIR,
                 max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be at least 1, got {max_entries}")
        self.root = Path(root)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        # approximate entry count, maintained so a bounded cache only pays
        # for a directory scan when the bound is actually exceeded (None =
        # not yet counted; lazily initialized on the first store)
        self._approx_count: Optional[int] = None

    # ------------------------------------------------------------------
    def entry_path(self, digest: str) -> Path:
        # two-level fan-out keeps directories small on big sweeps
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Tuple[bool, Any]:
        """Look up a digest; returns ``(hit, value)``."""
        path = self.entry_path(digest)
        try:
            with open(path, "rb") as handle:
                # entries are two stacked pickles: a tiny store-sequence
                # header, then the entry dict (legacy single-pickle entries
                # surface the dict first and are still readable)
                first = pickle.load(handle)
                entry = first if isinstance(first, dict) else pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            # missing, torn, or unreadable entries — including entries whose
            # result class has since moved or been renamed — are all misses
            self.misses += 1
            default_registry().counter("cache.misses").inc()
            return False, None
        self.hits += 1
        default_registry().counter("cache.hits").inc()
        try:
            os.utime(path)  # refresh recency so LRU eviction spares hot entries
        except OSError:
            pass  # a concurrent evictor removed the entry; the hit stands
        return True, entry["value"]

    def put(self, digest: str, key: str, value: Any) -> None:
        """Store one result atomically (last writer wins, entries identical).

        The store sequence is written as a separate fixed-small pickle ahead
        of the entry so LRU eviction can rank tied entries without loading
        their (arbitrarily large) result values.
        """
        path = self.entry_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"digest": digest, "key": key, "value": value}
        descriptor, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        existed = path.exists()
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(_store_sequence(), handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        default_registry().counter("cache.stores").inc()
        if self.max_entries is None:
            return
        if self._approx_count is None:
            self._approx_count = len(self)
        elif not existed:
            self._approx_count += 1
        if self._approx_count > self.max_entries:
            self.evict_excess()

    def evict_excess(self) -> int:
        """Delete least-recently-used entries beyond ``max_entries``.

        Recency is the entry file's ``st_mtime_ns`` (stores and hits both
        touch it).  On coarse-granularity filesystems a burst of stores can
        tie even at nanosecond resolution, and a path tie-break would turn
        eviction effectively alphabetical — so ties are broken by the store
        sequence stamped into each entry's header at :meth:`put` time (the
        path stays as the final tie-break so concurrent evictors agree on
        the victim order).  A hit refreshes the mtime but not the stamped
        sequence, so within one timestamp granule a just-hit old entry still
        orders by its original store time — the window of that imprecision
        is bounded by the filesystem's timestamp granularity.  Returns how
        many entries were removed.
        """
        if self.max_entries is None:
            return 0
        entries = list(self.entries())
        excess = len(entries) - self.max_entries
        if excess <= 0:
            self._approx_count = len(entries)
            return 0

        stats = []
        tie_counts: dict = {}
        for path in entries:
            try:
                mtime_ns = path.stat().st_mtime_ns
            except OSError:
                mtime_ns = 0  # vanished underneath us: oldest
            stats.append((mtime_ns, path))
            tie_counts[mtime_ns] = tie_counts.get(mtime_ns, 0) + 1

        def stored_sequence(path: Path) -> Tuple[int, int]:
            try:
                # new-format entries stop after the tiny header pickle; a
                # legacy single-pickle entry deserializes fully here (a
                # one-time cost that disappears as entries are re-stored)
                with open(path, "rb") as handle:
                    header = pickle.load(handle)
                if isinstance(header, (tuple, list)) and len(header) == 2:
                    return tuple(header)
                return (0, 0)  # legacy single-pickle entry: oldest in its group
            except (OSError, pickle.PickleError, EOFError, AttributeError,
                    ImportError):
                return (0, 0)  # unreadable: oldest within its tie group

        def recency(item):
            mtime_ns, path = item
            # only tied groups pay for reading the entry's store sequence
            sequence = (stored_sequence(path) if tie_counts[mtime_ns] > 1
                        else (0, 0))
            return (mtime_ns, sequence, str(path))

        removed = 0
        for _, path in sorted(stats, key=recency)[:excess]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._approx_count = len(entries) - removed
        if removed:
            default_registry().counter("cache.evictions").inc(removed)
            logger.debug("evicted %d cache entr%s from %s (bound %d)",
                         removed, "y" if removed == 1 else "ies", self.root,
                         self.max_entries)
        return removed

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Path]:
        if not self.root.exists():
            return iter(())
        return iter(sorted(self.root.glob("*/*.pkl")))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._approx_count = 0
        return removed


def resolve_cache(cache) -> Optional[ResultCache]:
    """Coerce ``None`` / path-like / :class:`ResultCache` into a cache or None."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
