"""``run_tasks`` — the one entry point of the execution fabric.

The call sequence is always: check the cache for every task (in the
parent), dispatch only the misses through the chosen executor, fold cached
and fresh results back into task-set order, and persist fresh successes.
Cache lookups and stores stay in the parent process so the cache never
needs cross-process coordination.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.exec.cache import ResultCache, resolve_cache
from repro.exec.executors import ParallelExecutor, SerialExecutor
from repro.exec.report import RunReport, TaskResult
from repro.exec.task import TaskSet
from repro.exec.workers import clear_worker_contexts
from repro.obs import ingest_observations, span

logger = logging.getLogger(__name__)


@dataclass
class ExecutionOptions:
    """How a sweep owner (runner, analyzer, CLI) wants its task sets run."""

    jobs: int = 1
    cache: Union[None, str, ResultCache] = None
    chunk_size: Optional[int] = None


def run_tasks(task_set: TaskSet,
              jobs: int = 1,
              cache: Union[None, str, ResultCache] = None,
              chunk_size: Optional[int] = None,
              executor=None) -> RunReport:
    """Run every task of *task_set* and return the ordered :class:`RunReport`.

    Parameters
    ----------
    task_set:
        The ordered, uniquely-keyed work description.
    jobs:
        Worker process count; ``1`` selects the in-process serial executor.
    cache:
        ``None`` (no caching), a directory path, or a :class:`ResultCache`.
        Only successful results are cached; errors always re-execute.
    chunk_size:
        Tasks per pool submission (parallel executor only).
    executor:
        Explicit executor instance, overriding ``jobs``/``chunk_size``.

    The report's ``results`` are in task-set order regardless of executor or
    completion order — the determinism contract every consumer builds on.
    """
    task_set.validate()
    if executor is None:
        executor = (SerialExecutor() if jobs <= 1
                    else ParallelExecutor(jobs=jobs, chunk_size=chunk_size))
    result_cache = resolve_cache(cache)
    started = time.perf_counter()

    dispatch_attrs = {"task_set": task_set.name, "tasks": len(task_set),
                      "jobs": getattr(executor, "jobs", jobs)}
    with span("exec.run_tasks", attrs=dispatch_attrs):
        results = {}
        pending = []
        if result_cache is not None:
            with span("cache.lookup", attrs={"tasks": len(task_set)}):
                for task in task_set:
                    hit, value = result_cache.get(task.digest())
                    if hit:
                        results[task.key] = TaskResult(key=task.key, value=value,
                                                       cached=True)
                    else:
                        pending.append(task)
        else:
            pending = list(task_set)
        dispatch_attrs["cache_hits"] = len(task_set) - len(pending)

        try:
            for raw in executor.execute(pending):
                # telemetry captured by pool children rides next to the
                # result; merge it into the parent's tracer/registry and
                # drop it before the result value is seen by any consumer
                ingest_observations(raw.get("obs"))
                result = TaskResult(key=raw["key"], value=raw["value"],
                                    error=raw["error"],
                                    duration_s=raw["duration_s"])
                results[result.key] = result
        finally:
            if isinstance(executor, SerialExecutor):
                # serial execution memoizes worker contexts (rebuilt
                # applications) in *this* process; drop them so long-lived
                # sessions don't accumulate one graph per swept
                # configuration.  Pool workers die with their pool, so the
                # parallel path needs no cleanup.
                clear_worker_contexts()

        if result_cache is not None:
            fresh_by_key = {task.key: task for task in pending}
            with span("cache.store", attrs={"tasks": len(fresh_by_key)}):
                for key, task in fresh_by_key.items():
                    result = results[key]
                    if result.ok:
                        result_cache.put(task.digest(), key, result.value)

    report = RunReport(
        task_set=task_set.name,
        jobs=getattr(executor, "jobs", jobs),
        results=[results[task.key] for task in task_set],
        wall_time_s=time.perf_counter() - started,
    )
    logger.debug("run_tasks %s: %d tasks, %d cache hits, %d failed, %.3fs",
                 report.task_set, len(report.results), report.cache_hits,
                 len(report.failures()), report.wall_time_s)
    return report


def run_with_options(task_set: TaskSet,
                     options: Optional[ExecutionOptions]) -> RunReport:
    """Dispatch *task_set* under *options* (``None`` means serial, uncached)."""
    options = options or ExecutionOptions()
    return run_tasks(task_set, jobs=options.jobs, cache=options.cache,
                     chunk_size=options.chunk_size)
