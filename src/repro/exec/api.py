"""``run_tasks`` — the one entry point of the execution fabric.

The call sequence is always: check the cache for every task (in the
parent), dispatch only the misses through the executor the
:class:`~repro.exec.policy.ExecutorPolicy` selected, fold cached and fresh
results back into task-set order, and persist fresh successes.  Cache
lookups and stores stay in the parent process so the cache never needs
cross-process coordination.

The policy object is the API: owners (runner, cost analyzer, CLI, serve)
describe *how* they want work run once — mode, jobs, cache, chunking,
context retention — and hand the same value everywhere.  The pre-policy
``jobs``/``cache``/``chunk_size`` kwargs still work for one release behind
a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import logging
import time
import warnings
from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.exec.cache import ResultCache, resolve_cache
from repro.exec.executors import SerialExecutor, ThreadExecutor
from repro.exec.policy import ExecutorPolicy
from repro.exec.report import RunReport, TaskResult
from repro.exec.task import TaskSet
from repro.exec.workers import clear_worker_contexts
from repro.obs import ingest_observations, span
from repro.utils.validation import ValidationError

logger = logging.getLogger(__name__)

#: distinguishes "caller omitted the kwarg" from every real value,
#: including ``None`` (a meaningful cache setting)
_UNSET: Any = object()

_LEGACY_KWARGS_MESSAGE = (
    "run_tasks(jobs=/cache=/chunk_size=) is deprecated; pass "
    "policy=ExecutorPolicy(...) instead (ExecutorPolicy.from_legacy mirrors "
    "the old behaviour exactly)")


@dataclass
class ExecutionOptions:
    """Pre-policy bag of execution kwargs (deprecated).

    Kept one release for callers that stored these options; new code holds
    an :class:`ExecutorPolicy` instead, which adds mode selection and
    context retention on top of the same three fields.
    """

    jobs: int = 1
    cache: Union[None, str, ResultCache] = None
    chunk_size: Optional[int] = None

    def to_policy(self) -> ExecutorPolicy:
        """The policy with exactly this option bag's historical behaviour."""
        return ExecutorPolicy.from_legacy(jobs=self.jobs, cache=self.cache,
                                          chunk_size=self.chunk_size)


def run_tasks(task_set: TaskSet,
              jobs: int = _UNSET,
              cache: Union[None, str, ResultCache] = _UNSET,
              chunk_size: Optional[int] = _UNSET,
              executor=None,
              policy: Optional[ExecutorPolicy] = None) -> RunReport:
    """Run every task of *task_set* and return the ordered :class:`RunReport`.

    Parameters
    ----------
    task_set:
        The ordered, uniquely-keyed work description.
    policy:
        The :class:`ExecutorPolicy` deciding mechanism (serial / threads /
        processes / auto), worker count, caching, chunking, and whether
        worker contexts outlive the run.  ``None`` means the default policy
        (serial, uncached).
    executor:
        Explicit executor instance, overriding the policy's mechanism
        selection (the policy still governs caching and context retention).
    jobs, cache, chunk_size:
        Deprecated pre-policy kwargs; still honored for one release (with a
        :class:`DeprecationWarning`) and mapped through
        :meth:`ExecutorPolicy.from_legacy`.  Mutually exclusive with
        ``policy``.

    The report's ``results`` are in task-set order regardless of executor or
    completion order — the determinism contract every consumer builds on.
    """
    legacy = {name: value for name, value in
              (("jobs", jobs), ("cache", cache), ("chunk_size", chunk_size))
              if value is not _UNSET}
    if legacy:
        if policy is not None:
            raise ValidationError(
                "run_tasks() got both policy= and deprecated kwargs "
                f"({', '.join(sorted(legacy))}); pass only the policy")
        warnings.warn(_LEGACY_KWARGS_MESSAGE, DeprecationWarning, stacklevel=2)
        policy = ExecutorPolicy.from_legacy(**legacy)
    elif policy is None:
        policy = ExecutorPolicy.serial()
    policy.validate()

    task_set.validate()
    if executor is None:
        executor = policy.build_executor(task_set)
    result_cache = resolve_cache(policy.cache)
    started = time.perf_counter()

    dispatch_attrs = {"task_set": task_set.name, "tasks": len(task_set),
                      "jobs": getattr(executor, "jobs", policy.jobs),
                      "executor": type(executor).__name__}
    with span("exec.run_tasks", attrs=dispatch_attrs):
        results = {}
        pending = []
        if result_cache is not None:
            with span("cache.lookup", attrs={"tasks": len(task_set)}):
                for task in task_set:
                    hit, value = result_cache.get(task.digest())
                    if hit:
                        results[task.key] = TaskResult(key=task.key, value=value,
                                                       cached=True)
                    else:
                        pending.append(task)
        else:
            pending = list(task_set)
        dispatch_attrs["cache_hits"] = len(task_set) - len(pending)

        try:
            for raw in executor.execute(pending):
                # telemetry captured by pool children rides next to the
                # result; merge it into the parent's tracer/registry and
                # drop it before the result value is seen by any consumer
                ingest_observations(raw.get("obs"))
                result = TaskResult(key=raw["key"], value=raw["value"],
                                    error=raw["error"],
                                    duration_s=raw["duration_s"])
                results[result.key] = result
        finally:
            if (isinstance(executor, (SerialExecutor, ThreadExecutor))
                    and not policy.keep_contexts):
                # in-process execution memoizes worker contexts (rebuilt
                # applications) in *this* process; drop them so long-lived
                # sessions don't accumulate one graph per swept
                # configuration.  Pool workers die with their pool, so the
                # parallel path needs no cleanup.  Long-lived owners (the
                # serve layer) opt out via policy.keep_contexts to reuse
                # per-scenario state across runs.
                clear_worker_contexts()

        if result_cache is not None:
            fresh_by_key = {task.key: task for task in pending}
            with span("cache.store", attrs={"tasks": len(fresh_by_key)}):
                for key, task in fresh_by_key.items():
                    result = results[key]
                    if result.ok:
                        result_cache.put(task.digest(), key, result.value)

    report = RunReport(
        task_set=task_set.name,
        jobs=getattr(executor, "jobs", policy.jobs),
        results=[results[task.key] for task in task_set],
        wall_time_s=time.perf_counter() - started,
    )
    logger.debug("run_tasks %s [%s]: %d tasks, %d cache hits, %d failed, %.3fs",
                 report.task_set, type(executor).__name__, len(report.results),
                 report.cache_hits, len(report.failures()), report.wall_time_s)
    return report



def run_with_options(task_set: TaskSet,
                     options: Optional[ExecutionOptions]) -> RunReport:
    """Deprecated: dispatch *task_set* under a pre-policy option bag.

    ``None`` means serial, uncached.  New code calls
    ``run_tasks(task_set, policy=...)`` directly.
    """
    warnings.warn(
        "run_with_options() is deprecated; call run_tasks(task_set, "
        "policy=options.to_policy()) instead", DeprecationWarning, stacklevel=2)
    options = options or ExecutionOptions()
    return run_tasks(task_set, policy=options.to_policy())
