"""Executors: the pluggable dispatch strategies of the fabric.

Every executor honors the same contract: take an ordered list of tasks,
return one raw result dict per task **in input order**, and never raise for
a failing cell — failures (including hard worker crashes that break the
process pool) surface as per-task errors.

:class:`SerialExecutor` runs everything in-process and is the reference
implementation the determinism tests compare against.
:class:`ThreadExecutor` overlaps latency-bound cells on an in-process thread
pool — no pickling, no pool spin-up, shared worker contexts.
:class:`ParallelExecutor` fans chunks of tasks out over a process pool for
cpu-bound work.  Because workers are pure functions of their payloads,
completion order is irrelevant and every reordered output is byte-identical
to a serial run.
"""

from __future__ import annotations

import math
import multiprocessing
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                ThreadPoolExecutor, wait)
from typing import Any, Dict, List, Optional, Sequence

from repro.exec.task import Task
from repro.exec.workers import run_chunk, run_task  # noqa: F401 - run_task is pool-submitted
from repro.obs import sampling_enabled, tracing_enabled
from repro.utils.validation import require


def shard_tasks(tasks: Sequence[Task], jobs: int,
                chunk_size: Optional[int] = None) -> List[List[Task]]:
    """Split tasks into submission chunks, respecting shard groups.

    Tasks sharing a ``group`` are kept in the same chunks (in task order) so
    that per-process context — a rebuilt application, a replayed scenario —
    is constructed once per chunk rather than once per task.  With no
    explicit ``chunk_size`` the policy aims for ~4 chunks per worker, which
    balances load without drowning the pool in tiny submissions.
    """
    require(jobs >= 1, "jobs must be at least 1")
    if not tasks:
        return []
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(tasks) / (jobs * 4)))
    require(chunk_size >= 1, "chunk_size must be at least 1")

    grouped: Dict[str, List[Task]] = {}
    order: List[str] = []
    for task in tasks:
        if task.group not in grouped:
            grouped[task.group] = []
            order.append(task.group)
        grouped[task.group].append(task)

    chunks: List[List[Task]] = []
    for group in order:
        members = grouped[group]
        for start in range(0, len(members), chunk_size):
            chunks.append(members[start:start + chunk_size])
    return chunks


class SerialExecutor:
    """Run every task in the calling process, in task order."""

    jobs = 1

    def execute(self, tasks: Sequence[Task]) -> List[Dict[str, Any]]:
        return [run_task(task.to_wire()) for task in tasks]


class ThreadExecutor:
    """Run task chunks on an in-process thread pool.

    The executor of choice for **latency-bound** task sets: cells that spend
    their time waiting (provider round trips, simulated API latency) overlap
    under the GIL without paying the process pool's serialization and
    spin-up costs, and they share the parent's caches and worker contexts
    directly.  For cpu-bound cells the GIL serializes the work, so a thread
    pool degenerates to (slightly slower) serial execution — the executor
    policy steers those to processes instead.

    Tasks run in this process, so — exactly like :class:`SerialExecutor` —
    spans and metrics land directly in the parent's tracer and registry and
    no ``obs`` wire marker is needed.  Workers must be pure functions of
    their payloads and :func:`~repro.exec.workers.worker_context` is
    thread-safe, so concurrent completion order cannot leak into results:
    the output list is in input order, byte-identical to a serial run.
    """

    def __init__(self, jobs: int = 2, chunk_size: Optional[int] = None) -> None:
        require(jobs >= 1, "jobs must be at least 1")
        self.jobs = jobs
        self.chunk_size = chunk_size

    def execute(self, tasks: Sequence[Task]) -> List[Dict[str, Any]]:
        if not tasks:
            return []
        chunks = shard_tasks(tasks, self.jobs, self.chunk_size)
        by_key: Dict[str, Dict[str, Any]] = {}
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = [pool.submit(run_chunk, [task.to_wire() for task in chunk])
                       for chunk in chunks]
            # run_chunk never raises (run_task captures every cell failure),
            # so draining futures in submission order is deadlock-free
            for future in futures:
                for raw in future.result():
                    by_key[raw["key"]] = raw
        return [by_key[task.key] for task in tasks]


class ParallelExecutor:
    """Run task chunks on a process pool.

    Parameters
    ----------
    jobs:
        Number of worker processes.
    chunk_size:
        Tasks per pool submission (default: auto, ~4 chunks per worker).
    start_method:
        Optional :mod:`multiprocessing` start method (``fork`` / ``spawn`` /
        ``forkserver``).  ``None`` uses the platform default.  Workers are
        resolved by dotted path, so every start method behaves identically.
    """

    def __init__(self, jobs: int = 2, chunk_size: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        require(jobs >= 1, "jobs must be at least 1")
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.start_method = start_method

    # ------------------------------------------------------------------
    @staticmethod
    def _to_wire(task: Task) -> Dict[str, Any]:
        """Wire form plus the out-of-band observability marker.

        The marker rides *next to* the payload, never inside it — task
        digests (and therefore cache keys) hash only key/fn/payload, so
        enabling tracing cannot change what is (or was) cached.  Pool
        children capture their spans and metric deltas per task and the
        parent merges them back into one trace.
        """
        wire = task.to_wire()
        wire["obs"] = {"trace": tracing_enabled(), "sample": sampling_enabled()}
        return wire

    def execute(self, tasks: Sequence[Task]) -> List[Dict[str, Any]]:
        if not tasks:
            return []
        chunks = shard_tasks(tasks, self.jobs, self.chunk_size)
        context = (multiprocessing.get_context(self.start_method)
                   if self.start_method else None)
        by_key: Dict[str, Dict[str, Any]] = {}
        suspects: List[Task] = []
        pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=context)
        try:
            pending = {pool.submit(run_chunk, [self._to_wire(task) for task in chunk]): chunk
                       for chunk in chunks}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk = pending.pop(future)
                    error = future.exception()
                    if error is None:
                        for raw in future.result():
                            by_key[raw["key"]] = raw
                    else:
                        # A hard worker crash (killed process, unpicklable
                        # result) breaks the whole pool, so *every* pending
                        # chunk lands here — innocents included.
                        suspects.extend(chunk)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        for raw in self._retry_isolated(suspects, context):
            by_key[raw["key"]] = raw
        return [by_key[task.key] for task in tasks]

    # ------------------------------------------------------------------
    def _retry_isolated(self, tasks: Sequence[Task], context) -> List[Dict[str, Any]]:
        """Re-run crash suspects one at a time, each behind a disposable pool.

        Workers are pure, so re-running an innocent task is free; only the
        task that genuinely kills its process keeps a crash error.  The pool
        is recreated after each breakage, so a sweep with one crasher costs
        one extra pool spin-up, never a hang.
        """
        results: List[Dict[str, Any]] = []
        pool: Optional[ProcessPoolExecutor] = None
        try:
            for task in tasks:
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=1, mp_context=context)
                try:
                    results.append(pool.submit(run_task, self._to_wire(task)).result())
                except BaseException as error:  # noqa: BLE001 - crash, not raise
                    if isinstance(error, KeyboardInterrupt):
                        raise
                    results.append({
                        "key": task.key, "ok": False, "value": None,
                        "error": (f"worker crashed before returning a result "
                                  f"({type(error).__name__}: {error})"),
                        "duration_s": 0.0,
                    })
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return results
