"""``repro.exec`` — the deterministic parallel execution fabric.

Sweeps in this repository (benchmark grids, cost sweeps) are embarrassingly
parallel collections of *pure* cells: every provider, golden, generator, and
scenario replay is a deterministic function of its inputs.  The fabric
exploits that purity:

* a :class:`Task` names one cell with a stable key and describes it as data
  (worker dotted path + JSON payload);
* :func:`run_tasks` dispatches a :class:`TaskSet` under an
  :class:`ExecutorPolicy` — ``serial`` in-process, ``threads`` for
  latency-bound cells, ``processes`` for cpu-bound cells, or ``auto``,
  which resolves per task set from its declared workload profile and the
  host's core count;
* a content-keyed :class:`ResultCache` skips cells whose digest (fabric
  version + key + worker + canonical payload) already has a stored result;
* the :class:`RunReport` carries per-task timing/telemetry and returns
  results **in task-set order**, never completion order.

The headline guarantee — serial and parallel runs produce byte-identical
tables — follows from pure workers plus order-stable reporting, and is
enforced by the tier-1 tests.
"""

from repro.exec.api import ExecutionOptions, run_tasks, run_with_options
from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache, resolve_cache
from repro.exec.executors import (ParallelExecutor, SerialExecutor,
                                  ThreadExecutor, shard_tasks)
from repro.exec.policy import EXECUTOR_MODES, ExecutorPolicy
from repro.exec.report import RunReport, TaskExecutionError, TaskResult
from repro.exec.task import (FABRIC_VERSION, PROFILE_CPU, PROFILE_LATENCY,
                             TASK_PROFILES, Task, TaskSet)
from repro.exec.workers import clear_worker_contexts, resolve_worker, worker_context

__all__ = [
    "DEFAULT_CACHE_DIR",
    "EXECUTOR_MODES",
    "ExecutionOptions",
    "ExecutorPolicy",
    "FABRIC_VERSION",
    "PROFILE_CPU",
    "PROFILE_LATENCY",
    "ParallelExecutor",
    "ResultCache",
    "RunReport",
    "SerialExecutor",
    "TASK_PROFILES",
    "Task",
    "TaskExecutionError",
    "TaskResult",
    "TaskSet",
    "ThreadExecutor",
    "clear_worker_contexts",
    "resolve_cache",
    "resolve_worker",
    "run_tasks",
    "run_with_options",
    "shard_tasks",
    "worker_context",
]
