"""The task model of the execution fabric.

A :class:`Task` names one unit of work with a stable, human-readable key
(e.g. ``bench/traffic_analysis/networkx/tq-03/gpt-4``) and describes the
work as *data*: a dotted-path reference to a worker function plus a
JSON-serializable payload.  Because the description is pure data, tasks
cross process boundaries trivially and their content digest doubles as the
on-disk cache key — two tasks with the same key, worker, and payload are the
same computation.

A :class:`TaskSet` is an ordered collection of tasks with unique keys.  The
order is part of the contract: executors may *complete* tasks in any order,
but results are always reported in task-set order, which is what makes
serial and parallel runs byte-identical downstream.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List

from repro import __version__ as _PACKAGE_VERSION
from repro.utils.validation import require


#: bumping this invalidates every cached result (change it when the result
#: representation or the worker contract changes incompatibly)
FABRIC_VERSION = 1

#: cells dominated by waiting (provider round trips, simulated API latency);
#: threads overlap the waits with no pickling or pool spin-up cost
PROFILE_LATENCY = "latency"
#: cells dominated by computation (sandbox runs, graph replays); real
#: parallelism needs processes — and spare cores to be worth the overhead
PROFILE_CPU = "cpu"

#: the workload profiles a task set may declare; the ``auto`` executor
#: policy resolves its mechanism from this hint
TASK_PROFILES = (PROFILE_CPU, PROFILE_LATENCY)


def canonical_payload(payload: Any) -> str:
    """Canonical JSON text of a task payload (sorted keys, stable scalars).

    Strict JSON only: anything non-serializable raises ``TypeError`` rather
    than degrading to ``str()``, whose output can vary across processes
    (e.g. set ordering) and would corrupt content digests.
    """
    return json.dumps(payload, sort_keys=True)


@dataclass(frozen=True)
class Task:
    """One named, self-describing unit of work."""

    #: stable human-readable identity of the cell (unique within a task set)
    key: str
    #: worker reference as ``package.module:function``
    fn: str
    #: JSON-serializable arguments handed to the worker
    payload: Dict[str, Any] = field(default_factory=dict)
    #: shard affinity — tasks sharing a group are chunked together so that
    #: per-process context (e.g. a rebuilt application) is reused, not rebuilt
    group: str = ""

    def validate(self) -> None:
        require(bool(self.key), "task key must be non-empty")
        require(":" in self.fn,
                f"task fn must be a 'module:function' reference, got {self.fn!r}")
        try:
            canonical_payload(self.payload)
        except (TypeError, ValueError) as error:
            raise type(error)(
                f"task {self.key!r} payload is not serializable: {error}") from error

    def digest(self) -> str:
        """Content key: identical (key, fn, payload) => identical digest.

        The package version participates so cached results never survive a
        release boundary — worker *code* may have changed even when the task
        description has not.
        """
        hasher = hashlib.sha256()
        for part in (str(FABRIC_VERSION), _PACKAGE_VERSION, self.key, self.fn,
                     canonical_payload(self.payload)):
            hasher.update(part.encode("utf-8"))
            hasher.update(b"\x1f")
        return hasher.hexdigest()

    def to_wire(self) -> Dict[str, Any]:
        """The plain-data form shipped to worker processes."""
        return {"key": self.key, "fn": self.fn, "payload": self.payload}


@dataclass
class TaskSet:
    """An ordered, uniquely-keyed collection of tasks swept as one unit."""

    name: str
    tasks: List[Task] = field(default_factory=list)
    #: workload hint for executor selection (:data:`TASK_PROFILES`); purely
    #: advisory — it never participates in task digests or cache keys, so
    #: changing a profile can never invalidate cached results
    profile: str = PROFILE_CPU

    def validate(self) -> None:
        require(bool(self.name), "task set name must be non-empty")
        require(self.profile in TASK_PROFILES,
                f"task set profile must be one of {list(TASK_PROFILES)!r}, "
                f"got {self.profile!r}")
        seen = set()
        for task in self.tasks:
            task.validate()
            require(task.key not in seen,
                    f"duplicate task key {task.key!r} in task set {self.name!r}")
            seen.add(task.key)

    def add(self, task: Task) -> Task:
        self.tasks.append(task)
        return task

    def extend(self, tasks: Iterable[Task]) -> None:
        self.tasks.extend(tasks)

    def keys(self) -> List[str]:
        return [task.key for task in self.tasks]

    def groups(self) -> List[str]:
        """Distinct shard groups in first-appearance order."""
        ordered: List[str] = []
        for task in self.tasks:
            if task.group not in ordered:
                ordered.append(task.group)
        return ordered

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)
