"""Run reports: per-task telemetry aggregated over one fabric dispatch.

The report is the single return value of :func:`repro.exec.run_tasks`.  Its
``results`` list is ordered exactly like the input task set — never by
completion order — so consumers that fold results into tables inherit the
fabric's determinism for free.  Timing fields are telemetry only: they vary
run to run and must never influence any derived table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.utils.tables import format_table


@dataclass
class TaskResult:
    """Outcome of one task: a value or an error, plus telemetry."""

    key: str
    value: Any = None
    error: Optional[str] = None
    duration_s: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


class TaskExecutionError(RuntimeError):
    """Raised when a sweep is asked to be strict and at least one cell failed."""

    def __init__(self, task_set: str, failures: List[TaskResult]) -> None:
        self.task_set = task_set
        self.failures = failures
        lines = [f"{len(failures)} task(s) failed in task set {task_set!r}:"]
        for result in failures[:5]:
            first_line = (result.error or "").strip().splitlines()[0] if result.error else ""
            lines.append(f"  - {result.key}: {first_line}")
        if len(failures) > 5:
            lines.append(f"  ... and {len(failures) - 5} more")
        super().__init__("\n".join(lines))


@dataclass
class RunReport:
    """Everything known about one dispatch of a task set."""

    task_set: str
    jobs: int
    results: List[TaskResult] = field(default_factory=list)
    wall_time_s: float = 0.0

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def failures(self) -> List[TaskResult]:
        return [result for result in self.results if not result.ok]

    def values(self) -> List[Any]:
        """Task values in task-set order (failed cells raise)."""
        self.raise_on_error()
        return [result.value for result in self.results]

    def value_by_key(self) -> Dict[str, Any]:
        self.raise_on_error()
        return {result.key: result.value for result in self.results}

    def raise_on_error(self) -> None:
        failures = self.failures()
        if failures:
            raise TaskExecutionError(self.task_set, failures)

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(1 for result in self.results if result.cached)

    @property
    def executed(self) -> int:
        return sum(1 for result in self.results if not result.cached)

    @property
    def task_time_s(self) -> float:
        """Summed per-task compute time (> wall time when workers overlap)."""
        return sum(result.duration_s for result in self.results)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable telemetry dump (values are *not* included)."""
        return {
            "task_set": self.task_set,
            "jobs": self.jobs,
            "tasks": len(self.results),
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": len(self.failures()),
            "wall_time_s": round(self.wall_time_s, 6),
            "task_time_s": round(self.task_time_s, 6),
            "results": [
                {"key": result.key, "ok": result.ok, "cached": result.cached,
                 "duration_s": round(result.duration_s, 6),
                 "error": (result.error or "").strip().splitlines()[0] if result.error else None}
                for result in self.results
            ],
        }

    def summary(self) -> str:
        """Render the run telemetry as a table."""
        rows = []
        for result in self.results:
            status = "cached" if result.cached else ("ok" if result.ok else "FAILED")
            rows.append([result.key, status, f"{result.duration_s:.4f}"])
        title = (f"Run report — {self.task_set} "
                 f"(jobs={self.jobs}, wall={self.wall_time_s:.3f}s, "
                 f"hits={self.cache_hits}/{len(self.results)})")
        return format_table(["task", "status", "seconds"], rows, title=title)
