"""Worker-side machinery of the execution fabric.

Everything here runs inside the executing process — which is the parent for
:class:`~repro.exec.executors.SerialExecutor` and a pool child for
:class:`~repro.exec.executors.ParallelExecutor`.  Workers are referenced by
dotted path (``package.module:function``) rather than by object so that task
descriptions pickle trivially and survive any multiprocessing start method.

Two contracts matter:

* a worker is a **pure function of its payload** — same payload, same
  result, in any process, in any order (the fabric's determinism guarantee
  rests on this);
* a worker never lets an exception escape :func:`run_task` — failures are
  captured as per-task error strings so one bad cell cannot take down a
  sweep.

:func:`worker_context` offers process-local memoization for expensive
deterministic setup (rebuilding an application from its config, replaying a
scenario).  Chunking tasks by shard group means cells sharing a context land
in the same process and rebuild it once.
"""

from __future__ import annotations

import importlib
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Tuple

from repro.obs import collect_observations, sample_now, span


def resolve_worker(reference: str) -> Callable[[Dict[str, Any]], Any]:
    """Import and return the worker named by a ``module:function`` reference."""
    module_name, _, function_name = reference.partition(":")
    if not module_name or not function_name:
        raise ValueError(
            f"worker reference must look like 'package.module:function', "
            f"got {reference!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, function_name)
    except AttributeError as error:
        raise ValueError(
            f"module {module_name!r} has no worker function "
            f"{function_name!r}") from error


# ---------------------------------------------------------------------------
# process-local context memoization
# ---------------------------------------------------------------------------
_CONTEXT_CACHE: Dict[Tuple[Any, ...], Any] = {}
_MISSING = object()
_CONTEXT_CACHE_LOCK = threading.Lock()
_CONTEXT_BUILD_LOCKS: Dict[Tuple[Any, ...], threading.Lock] = {}


def worker_context(key: Tuple[Any, ...], builder: Callable[[], Any]) -> Any:
    """Build-once-per-process memoization for deterministic setup work.

    *key* must capture every input of *builder* (configs, spec digests); the
    built value is shared by every task of the same process, so it must be
    treated as immutable by workers (copy before mutating).

    Thread-safe: under :class:`~repro.exec.executors.ThreadExecutor` (and
    the serve layer) concurrent tasks may request the same context, and
    exactly one of them builds it — a per-key build lock keeps unrelated
    contexts from serializing each other's construction while guaranteeing
    every caller observes the same built value.
    """
    value = _CONTEXT_CACHE.get(key, _MISSING)
    if value is not _MISSING:
        return value
    with _CONTEXT_CACHE_LOCK:
        build_lock = _CONTEXT_BUILD_LOCKS.setdefault(key, threading.Lock())
    with build_lock:
        if key not in _CONTEXT_CACHE:
            _CONTEXT_CACHE[key] = builder()
    return _CONTEXT_CACHE[key]


def clear_worker_contexts() -> None:
    """Drop all memoized contexts (test isolation + session hygiene hook)."""
    with _CONTEXT_CACHE_LOCK:
        _CONTEXT_CACHE.clear()
        _CONTEXT_BUILD_LOCKS.clear()


# ---------------------------------------------------------------------------
# task execution
# ---------------------------------------------------------------------------
def run_task(wire_task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one wire-form task, capturing failure, timing, and telemetry.

    Returns a plain dict (never raises): ``{"key", "ok", "value", "error",
    "duration_s"}``.  ``value`` is only meaningful when ``ok`` is true.

    When the wire form carries an ``obs`` marker (set by the parallel
    executor for pool children), the task runs under an isolated
    observability capture and its spans/metric deltas ride back to the
    parent in an extra ``obs`` result field — *never* inside ``value``, so
    telemetry cannot perturb results, digests, or cached entries.
    """
    observe = wire_task.get("obs")
    if observe is None:
        # in-process execution: spans and metrics land directly in this
        # process's (the parent's) tracer and registry
        return _execute_wire_task(wire_task)
    with collect_observations(trace=bool(observe.get("trace"))) as capture:
        raw = _execute_wire_task(wire_task)
        if observe.get("sample"):
            # one resource reading per task: the gauges max-merge, so the
            # parent ends up with each worker process's peak footprint
            sample_now()
    raw["obs"] = capture.to_wire()
    return raw


def _execute_wire_task(wire_task: Dict[str, Any]) -> Dict[str, Any]:
    key = wire_task["key"]
    started = time.perf_counter()
    try:
        with span("exec.task", attrs={"key": key}):
            worker = resolve_worker(wire_task["fn"])
            value = worker(wire_task["payload"])
        return {"key": key, "ok": True, "value": value, "error": None,
                "duration_s": time.perf_counter() - started}
    except BaseException as error:  # noqa: BLE001 - a sweep must survive any cell
        if isinstance(error, (KeyboardInterrupt, SystemExit)):
            raise
        detail = traceback.format_exc(limit=8)
        return {"key": key, "ok": False, "value": None,
                "error": f"{type(error).__name__}: {error}\n{detail}",
                "duration_s": time.perf_counter() - started}


def run_chunk(wire_tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Execute a chunk of tasks sequentially in this process.

    The pool submits chunks (not single tasks) so that shard groups reuse
    their :func:`worker_context` and per-submission overhead amortizes.
    """
    return [run_task(wire_task) for wire_task in wire_tasks]
