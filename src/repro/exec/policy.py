"""Executor selection: how a task set decides *where* its cells run.

`benchmarks/results/parallel_speedup.json` records the fact this module
encodes: on a 1-core host the process pool *loses* on cpu-bound work
(0.85x at 2 workers — serialization and pool spin-up with no spare core to
hide them) while winning ~3.5x on latency-bound work, where workers spend
their time waiting on a provider round trip.  So "how parallel" (``jobs``)
and "which mechanism" (serial / threads / processes) are different
decisions, and the right mechanism depends on the *task set*, not on the
caller:

* latency-bound cells (provider round trips, network waits) overlap
  perfectly under threads — no pickling, no pool spin-up, shared caches;
* cpu-bound cells (sandbox runs, graph replays) need real cores, which in
  CPython means processes — but only when the host actually has spare
  cores;
* a single task never benefits from any pool.

:class:`ExecutorPolicy` is the value object that carries the whole
decision — mode, worker count, chunking, caching, context retention — and
resolves it per :class:`~repro.exec.task.TaskSet` via the set's declared
:attr:`~repro.exec.task.TaskSet.profile`.  It replaces the ad-hoc
``jobs``/``cache_dir``/``no_cache`` kwarg threading that the runner, the
cost analyzer, and the CLI used to push through every layer.

Whatever the policy picks, the fabric's determinism contract holds: the
three mechanisms produce byte-identical reports for the same task set.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.exec.cache import ResultCache
from repro.exec.executors import ParallelExecutor, SerialExecutor, ThreadExecutor
from repro.exec.task import PROFILE_LATENCY, TaskSet
from repro.utils.validation import require, require_in

#: the selectable dispatch mechanisms; ``auto`` resolves per task set
EXECUTOR_MODES = ("auto", "serial", "threads", "processes")


@dataclass(frozen=True)
class ExecutorPolicy:
    """How (and where) a sweep owner wants its task sets executed.

    ``mode`` names the dispatch mechanism; ``auto`` defers the choice to
    :meth:`resolve_mode`, which inspects the task set's profile and the
    host's core count.  The policy is immutable and JSON-free on purpose:
    it never travels inside task payloads, so the choice of executor can
    never perturb digests, cache keys, or results.
    """

    mode: str = "auto"
    #: worker count; 1 always means the in-process serial executor
    jobs: int = 1
    #: tasks per pool submission (None = auto, ~4 chunks per worker)
    chunk_size: Optional[int] = None
    #: ``None`` (no caching), a directory path, or a live :class:`ResultCache`
    cache: Union[None, str, ResultCache] = None
    #: optional :mod:`multiprocessing` start method (processes mode only)
    start_method: Optional[str] = None
    #: keep :func:`~repro.exec.workers.worker_context` memos alive after an
    #: in-process run — long-lived owners (the serve layer) opt in so
    #: per-scenario state survives across requests instead of rebuilding
    keep_contexts: bool = False

    # ------------------------------------------------------------------
    def validate(self) -> None:
        require_in(self.mode, EXECUTOR_MODES, "executor mode")
        require(self.jobs >= 1, f"jobs must be at least 1, got {self.jobs}")
        if self.chunk_size is not None:
            require(self.chunk_size >= 1,
                    f"chunk_size must be at least 1, got {self.chunk_size}")

    # ------------------------------------------------------------------
    def resolve_mode(self, task_set: TaskSet,
                     cpu_count: Optional[int] = None) -> str:
        """The concrete mechanism this policy uses for *task_set*.

        Fixed modes resolve to themselves (``jobs=1`` always collapses to
        serial — there is no 1-worker pool worth paying for).  ``auto``
        chooses from the task set's profile:

        * ``latency`` → threads: waiting overlaps without pickling costs;
        * ``cpu`` → processes, but only when the host has more than one
          core (*cpu_count* overrides :func:`os.cpu_count` for tests) —
          a 1-core host runs cpu-bound work serially, which the committed
          speedup baseline shows is strictly faster than a pool;
        * a task set of one never leaves the calling process.
        """
        self.validate()
        if self.jobs <= 1 or self.mode == "serial":
            return "serial"
        if self.mode != "auto":
            return self.mode
        if len(task_set) <= 1:
            return "serial"
        if task_set.profile == PROFILE_LATENCY:
            return "threads"
        cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
        return "processes" if cores > 1 else "serial"

    def build_executor(self, task_set: TaskSet,
                       cpu_count: Optional[int] = None):
        """Instantiate the executor :meth:`resolve_mode` picked."""
        mode = self.resolve_mode(task_set, cpu_count=cpu_count)
        if mode == "serial":
            return SerialExecutor()
        if mode == "threads":
            return ThreadExecutor(jobs=self.jobs, chunk_size=self.chunk_size)
        return ParallelExecutor(jobs=self.jobs, chunk_size=self.chunk_size,
                                start_method=self.start_method)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def serial(cls, cache: Union[None, str, ResultCache] = None,
               **overrides) -> "ExecutorPolicy":
        return cls(mode="serial", jobs=1, cache=cache, **overrides)

    @classmethod
    def threads(cls, jobs: int = 2, cache: Union[None, str, ResultCache] = None,
                **overrides) -> "ExecutorPolicy":
        return cls(mode="threads", jobs=jobs, cache=cache, **overrides)

    @classmethod
    def processes(cls, jobs: int = 2, cache: Union[None, str, ResultCache] = None,
                  **overrides) -> "ExecutorPolicy":
        return cls(mode="processes", jobs=jobs, cache=cache, **overrides)

    @classmethod
    def auto(cls, jobs: int = 2, cache: Union[None, str, ResultCache] = None,
             **overrides) -> "ExecutorPolicy":
        return cls(mode="auto", jobs=jobs, cache=cache, **overrides)

    @classmethod
    def from_legacy(cls, jobs: int = 1,
                    cache: Union[None, str, ResultCache] = None,
                    chunk_size: Optional[int] = None) -> "ExecutorPolicy":
        """The policy equivalent of the pre-policy kwargs.

        Preserves the historical behaviour exactly: ``jobs > 1`` meant the
        process pool, anything else the serial executor — never ``auto``,
        so code migrated mechanically cannot change executors under a
        caller's feet.
        """
        return cls(mode="processes" if jobs > 1 else "serial",
                   jobs=jobs, cache=cache, chunk_size=chunk_size)

    def with_cache(self, cache: Union[None, str, ResultCache]) -> "ExecutorPolicy":
        return replace(self, cache=cache)
