"""Reference workers for the fabric's own tests and benchmarks.

Real sweeps reference workers in :mod:`repro.benchmark.tasks` and
:mod:`repro.cost.tasks`; the functions here exist so the fabric can be
exercised (and its failure modes provoked) without dragging in the whole
evaluation stack.  They are importable from worker processes under any
multiprocessing start method, which is exactly why they live in the package
rather than in a test module.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from repro.utils.hashing import stable_hash


def echo(payload: Dict[str, Any]) -> Any:
    """Return ``payload['value']`` unchanged."""
    return payload["value"]


def square(payload: Dict[str, Any]) -> int:
    """Return ``payload['x']`` squared."""
    return payload["x"] ** 2


def record_and_echo(payload: Dict[str, Any]) -> Any:
    """Append one line to ``payload['log_path']`` then echo ``value``.

    The side-effect lets tests count actual executions, distinguishing a
    cache hit (no new line) from a recomputation.
    """
    with open(payload["log_path"], "a", encoding="utf-8") as handle:
        handle.write(f"{payload['value']}\n")
    return payload["value"]


def boom(payload: Dict[str, Any]) -> None:
    """Raise — the well-behaved failure (captured as a per-task error)."""
    raise RuntimeError(payload.get("message", "boom"))


def hard_crash(payload: Dict[str, Any]) -> None:
    """Kill the worker process outright — the ill-behaved failure.

    ``os._exit`` bypasses every exception handler, simulating a segfaulting
    or OOM-killed worker; the pool breaks and the fabric must still surface
    a per-task error instead of hanging.
    """
    os._exit(payload.get("code", 3))


def busy_checksum(payload: Dict[str, Any]) -> int:
    """Burn deterministic CPU and return a checksum (speedup benchmarking)."""
    rounds = payload.get("rounds", 10_000)
    value = 0
    for index in range(rounds):
        value = (value + stable_hash(payload.get("seed", 0), index)) % (1 << 61)
    return value
