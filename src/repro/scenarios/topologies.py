"""Structured topology families.

The paper evaluates only two synthetic datasets — a random communication
graph and one MALT hierarchy.  This module widens the scenario axis with
parametric generators for the classic network shapes: fat-tree/Clos fabrics,
WAN backbones, rings, stars, full/partial meshes, and geometric (MANET-style)
radio topologies.  Every family is registered under a stable name so that a
declarative :class:`~repro.scenarios.spec.ScenarioSpec` can reference it, and
every generated graph carries ``capacity_gbps`` and ``latency_ms`` edge
attributes (the traffic overlay derives flow weights from them).

Generation is fully deterministic in the seed: the same ``(family, params,
seed)`` triple always produces an identical :class:`PropertyGraph`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.graph import PropertyGraph
from repro.utils.rng import DeterministicRng
from repro.utils.validation import require


BuilderFn = Callable[[Dict[str, Any], DeterministicRng], PropertyGraph]


@dataclass(frozen=True)
class TopologyFamily:
    """One named, parametric topology generator."""

    name: str
    description: str
    builder: BuilderFn
    defaults: Dict[str, Any]


_FAMILIES: Dict[str, TopologyFamily] = {}


def register_family(family: TopologyFamily) -> TopologyFamily:
    """Register (or replace) a topology family under its name."""
    require(bool(family.name), "topology family name must be non-empty")
    _FAMILIES[family.name] = family
    return family


def family_names() -> List[str]:
    """Names of all registered families, sorted."""
    return sorted(_FAMILIES)


def get_family(name: str) -> TopologyFamily:
    """Look up a family by name."""
    require(name in _FAMILIES,
            f"unknown topology family {name!r}; known families: {family_names()}")
    return _FAMILIES[name]


def build_topology(family: str, params: Optional[Dict[str, Any]] = None,
                   seed: int = 7) -> PropertyGraph:
    """Build one topology from a family name, parameter overrides and a seed.

    Unknown parameter names are rejected so that a typo in a scenario spec
    fails loudly instead of silently falling back to the default.
    """
    entry = get_family(family)
    merged = dict(entry.defaults)
    for key, value in (params or {}).items():
        require(key in merged,
                f"unknown parameter {key!r} for family {family!r}; "
                f"known parameters: {sorted(merged)}")
        merged[key] = value
    rng = DeterministicRng(seed, f"scenario-topology/{family}")
    graph = entry.builder(merged, rng)
    graph.graph_attributes.setdefault("family", family)
    graph.graph_attributes["seed"] = seed
    graph.graph_attributes["params"] = dict(merged)
    return graph


# ---------------------------------------------------------------------------
# fat-tree / Clos
# ---------------------------------------------------------------------------
def _build_fat_tree(params: Dict[str, Any], rng: DeterministicRng) -> PropertyGraph:
    k = params["k"]
    require(k >= 2 and k % 2 == 0, f"fat-tree parameter k must be even and >= 2, got {k}")
    hosts_per_edge = params["hosts_per_edge"]
    require(hosts_per_edge >= 0, "hosts_per_edge must be non-negative")
    half = k // 2

    graph = PropertyGraph(name=f"fat-tree-k{k}", directed=False)
    for c in range(half * half):
        graph.add_node(f"core-{c}", role="core", name=f"core-{c}")
    for pod in range(k):
        for i in range(half):
            agg = f"pod{pod}-agg{i}"
            graph.add_node(agg, role="aggregation", name=agg, pod=pod)
            # each aggregation switch uplinks to a distinct half-sized core group
            for c in range(i * half, (i + 1) * half):
                graph.add_edge(agg, f"core-{c}",
                               capacity_gbps=params["core_capacity_gbps"],
                               latency_ms=0.05)
        for i in range(half):
            edge = f"pod{pod}-edge{i}"
            graph.add_node(edge, role="edge", name=edge, pod=pod)
            for j in range(half):
                graph.add_edge(f"pod{pod}-agg{j}", edge,
                               capacity_gbps=params["agg_capacity_gbps"],
                               latency_ms=0.1)
            for h in range(hosts_per_edge):
                host = f"pod{pod}-edge{i}-h{h}"
                graph.add_node(host, role="host", name=host, pod=pod)
                graph.add_edge(edge, host,
                               capacity_gbps=params["host_capacity_gbps"],
                               latency_ms=0.2)

    # shared-risk link groups: every aggregation switch is one chassis (its
    # uplinks and downlinks die with it), and each pod's core uplinks run
    # through one cable conduit out of the pod
    srlgs = {}
    for pod in range(k):
        conduit = []
        for i in range(half):
            agg = f"pod{pod}-agg{i}"
            uplinks = [[agg, f"core-{c}"] for c in range(i * half, (i + 1) * half)]
            downlinks = [[agg, f"pod{pod}-edge{j}"] for j in range(half)]
            srlgs[f"chassis-{agg}"] = sorted(uplinks + downlinks)
            conduit.extend(uplinks)
        srlgs[f"conduit-pod{pod}"] = sorted(conduit)
    graph.graph_attributes["srlgs"] = {name: srlgs[name] for name in sorted(srlgs)}
    return graph


# ---------------------------------------------------------------------------
# WAN backbone
# ---------------------------------------------------------------------------
def _build_wan_backbone(params: Dict[str, Any], rng: DeterministicRng) -> PropertyGraph:
    pops = params["pop_count"]
    require(pops >= 3, f"wan-backbone needs at least 3 POPs, got {pops}")
    extra = params["extra_links"]
    require(extra >= 0, "extra_links must be non-negative")

    graph = PropertyGraph(name=f"wan-{pops}pops", directed=False)
    position_rng = rng.fork("positions")
    mass_rng = rng.fork("masses")
    for i in range(pops):
        x = round(position_rng.uniform(0.0, 1.0), 4)
        y = round(position_rng.uniform(0.0, 1.0), 4)
        # the POP's plane quadrant is its region; its "mass" is the
        # population-like weight gravity traffic matrices are derived from
        region = ("n" if y >= 0.5 else "s") + ("e" if x >= 0.5 else "w")
        graph.add_node(f"pop-{i}", role="pop", name=f"pop-{i}", x=x, y=y,
                       region=region, mass=round(mass_rng.uniform(1.0, 10.0), 3))

    def link(a: str, b: str) -> None:
        ax, ay = graph.node_attributes(a)["x"], graph.node_attributes(a)["y"]
        bx, by = graph.node_attributes(b)["x"], graph.node_attributes(b)["y"]
        distance = math.hypot(ax - bx, ay - by)
        graph.add_edge(a, b,
                       capacity_gbps=capacity_rng.choice(params["capacities_gbps"]),
                       latency_ms=round(1.0 + distance * 40.0, 3))

    capacity_rng = rng.fork("capacities")
    for i in range(pops):
        link(f"pop-{i}", f"pop-{(i + 1) % pops}")
    chord_rng = rng.fork("chords")
    added = 0
    attempts = 0
    while added < extra and attempts < extra * 50 + 50:
        attempts += 1
        a = chord_rng.randint(0, pops - 1)
        b = chord_rng.randint(0, pops - 1)
        if a == b or graph.has_edge(f"pop-{a}", f"pop-{b}"):
            continue
        link(f"pop-{a}", f"pop-{b}")
        added += 1

    # shared-risk link groups: spans between the same pair of regions share
    # one physical conduit (a backhoe through it cuts them all at once)
    srlgs = {}
    for source, target in graph.edges():
        pair = sorted((graph.node_attributes(source)["region"],
                       graph.node_attributes(target)["region"]))
        srlgs.setdefault(f"conduit-{pair[0]}-{pair[1]}", []).append([source, target])
    graph.graph_attributes["srlgs"] = {name: sorted(srlgs[name])
                                       for name in sorted(srlgs)}
    return graph


# ---------------------------------------------------------------------------
# ring / star / mesh
# ---------------------------------------------------------------------------
def _build_ring(params: Dict[str, Any], rng: DeterministicRng) -> PropertyGraph:
    n = params["node_count"]
    require(n >= 3, f"ring needs at least 3 nodes, got {n}")
    graph = PropertyGraph(name=f"ring-{n}", directed=False)
    for i in range(n):
        graph.add_node(f"ring-{i}", role="switch", name=f"ring-{i}")
    for i in range(n):
        graph.add_edge(f"ring-{i}", f"ring-{(i + 1) % n}",
                       capacity_gbps=params["capacity_gbps"],
                       latency_ms=params["latency_ms"])
    return graph


def _build_star(params: Dict[str, Any], rng: DeterministicRng) -> PropertyGraph:
    leaves = params["leaf_count"]
    require(leaves >= 1, f"star needs at least 1 leaf, got {leaves}")
    graph = PropertyGraph(name=f"star-{leaves}", directed=False)
    graph.add_node("hub", role="hub", name="hub")
    for i in range(leaves):
        leaf = f"leaf-{i}"
        graph.add_node(leaf, role="leaf", name=leaf)
        graph.add_edge("hub", leaf,
                       capacity_gbps=params["capacity_gbps"],
                       latency_ms=params["latency_ms"])
    return graph


def _build_mesh(params: Dict[str, Any], rng: DeterministicRng) -> PropertyGraph:
    n = params["node_count"]
    require(n >= 2, f"mesh needs at least 2 nodes, got {n}")
    connectivity = params["connectivity"]
    require(0.0 <= connectivity <= 1.0,
            f"mesh connectivity must be in [0, 1], got {connectivity}")
    graph = PropertyGraph(name=f"mesh-{n}", directed=False)
    for i in range(n):
        graph.add_node(f"m{i}", role="router", name=f"mesh-{i}")
    pick = rng.fork("pairs")
    for i in range(n):
        for j in range(i + 1, n):
            # the ring of consecutive nodes is always kept so a partial mesh
            # stays connected; other chords appear with the given probability
            consecutive = j == i + 1 or (i == 0 and j == n - 1)
            if not consecutive and pick.random() >= connectivity:
                continue
            graph.add_edge(f"m{i}", f"m{j}",
                           capacity_gbps=params["capacity_gbps"],
                           latency_ms=params["latency_ms"])
    return graph


# ---------------------------------------------------------------------------
# geometric (MANET-style)
# ---------------------------------------------------------------------------
def _build_geometric(params: Dict[str, Any], rng: DeterministicRng) -> PropertyGraph:
    n = params["node_count"]
    require(n >= 2, f"geometric needs at least 2 nodes, got {n}")
    radius = params["radius"]
    require(radius > 0, f"geometric radius must be positive, got {radius}")
    max_capacity = params["max_capacity_gbps"]

    graph = PropertyGraph(name=f"geometric-{n}", directed=False)
    position_rng = rng.fork("positions")
    positions = []
    for i in range(n):
        x = round(position_rng.uniform(0.0, 1.0), 4)
        y = round(position_rng.uniform(0.0, 1.0), 4)
        positions.append((x, y))
        graph.add_node(f"mn-{i}", role="mobile", name=f"mobile-{i}", x=x, y=y)
    for i in range(n):
        for j in range(i + 1, n):
            xi, yi = positions[i]
            xj, yj = positions[j]
            distance = math.hypot(xi - xj, yi - yj)
            if distance > radius:
                continue
            # link quality (and hence capacity) decays with distance, the way
            # a shared radio medium behaves in the SiNE-style emulations
            quality = 1.0 - distance / radius
            graph.add_edge(f"mn-{i}", f"mn-{j}",
                           capacity_gbps=max(round(max_capacity * quality, 2), 0.01),
                           latency_ms=round(0.5 + distance * 10.0, 3))
    return graph


# ---------------------------------------------------------------------------
# wrappers around the two seed generators
# ---------------------------------------------------------------------------
def _build_random_traffic(params: Dict[str, Any], rng: DeterministicRng) -> PropertyGraph:
    from repro.traffic.generator import CommunicationGraphConfig, generate_communication_graph

    config = CommunicationGraphConfig(node_count=params["node_count"],
                                      edge_count=params["edge_count"],
                                      prefix_count=params["prefix_count"],
                                      seed=rng.seed)
    return generate_communication_graph(config)


def _build_malt(params: Dict[str, Any], rng: DeterministicRng) -> PropertyGraph:
    from repro.malt.generator import MaltTopologyConfig, generate_malt_topology

    config = MaltTopologyConfig(seed=rng.seed, **params)
    return generate_malt_topology(config)


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------
register_family(TopologyFamily(
    name="fat-tree",
    description="k-ary fat-tree/Clos fabric: core, aggregation and edge "
                "switches plus optional hosts per edge switch",
    builder=_build_fat_tree,
    defaults={"k": 4, "hosts_per_edge": 2, "core_capacity_gbps": 40,
              "agg_capacity_gbps": 10, "host_capacity_gbps": 1},
))

register_family(TopologyFamily(
    name="wan-backbone",
    description="continental WAN backbone: POPs on a plane, a resilient ring "
                "plus random chords, distance-proportional latency",
    builder=_build_wan_backbone,
    defaults={"pop_count": 12, "extra_links": 6,
              "capacities_gbps": (10, 40, 100)},
))

register_family(TopologyFamily(
    name="ring",
    description="bidirectional ring of switches",
    builder=_build_ring,
    defaults={"node_count": 8, "capacity_gbps": 10, "latency_ms": 1.0},
))

register_family(TopologyFamily(
    name="star",
    description="hub-and-spoke star",
    builder=_build_star,
    defaults={"leaf_count": 8, "capacity_gbps": 10, "latency_ms": 0.5},
))

register_family(TopologyFamily(
    name="mesh",
    description="full or partial mesh (connectivity 1.0 = full); a ring "
                "backbone keeps partial meshes connected",
    builder=_build_mesh,
    defaults={"node_count": 6, "connectivity": 1.0, "capacity_gbps": 25,
              "latency_ms": 0.8},
))

register_family(TopologyFamily(
    name="geometric",
    description="MANET-style random geometric graph: nodes on the unit "
                "square, links within a radio radius, capacity decaying "
                "with distance",
    builder=_build_geometric,
    defaults={"node_count": 30, "radius": 0.35, "max_capacity_gbps": 1.0},
))

register_family(TopologyFamily(
    name="random-traffic",
    description="the seed random communication graph (traffic dispersion "
                "graph) with byte/connection/packet edge weights",
    builder=_build_random_traffic,
    defaults={"node_count": 40, "edge_count": 40, "prefix_count": 4},
))

register_family(TopologyFamily(
    name="malt",
    description="the seed synthetic MALT hierarchy (datacenters, pods, "
                "racks, chassis, switches, ports, control points)",
    builder=_build_malt,
    defaults={"datacenters": 1, "pods_per_datacenter": 2, "racks_per_pod": 2,
              "chassis_per_rack": 2, "switches_per_chassis": 2,
              "ports_per_switch": 3, "control_points": 4, "port_links": 6},
))
