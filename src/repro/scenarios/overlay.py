"""Build benchmark applications from scenarios.

Topology families describe the *physical* network (capacity, latency); the
benchmark's traffic-analysis application reasons about *traffic* (addresses,
byte/connection/packet counters).  :func:`annotate_traffic_attributes`
bridges the two: it deterministically assigns IPv4 addresses and device
types to nodes and derives flow counters from link capacity, so that every
topology family can serve the full traffic query corpus (including the
prefix queries, via the allocator's pinned ``15.76`` prefix).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.graph import PropertyGraph
from repro.scenarios.engine import replay_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.traffic.addressing import AddressAllocator
from repro.utils.rng import DeterministicRng
from repro.utils.validation import require


SpecOrName = Union[ScenarioSpec, str]

DEVICE_TYPES = ("host", "router", "switch", "server")


def resolve_spec(spec_or_name: SpecOrName) -> ScenarioSpec:
    """Accept either a spec or a registered scenario name."""
    if isinstance(spec_or_name, ScenarioSpec):
        return spec_or_name
    from repro.scenarios.registry import get_scenario

    return get_scenario(spec_or_name)


def annotate_traffic_attributes(graph: PropertyGraph, seed: int = 7) -> PropertyGraph:
    """Return a copy of *graph* carrying the traffic-analysis schema.

    Nodes gain ``address``/``type``/``name`` attributes where missing; edges
    gain ``bytes``/``connections``/``packets`` counters where missing, scaled
    by the link's ``capacity_gbps`` so fat links look busy and thin radio
    links look quiet.  Graphs that already carry the schema (the
    ``random-traffic`` family) pass through with only a copy.
    """
    annotated = graph.copy()
    rng = DeterministicRng(seed, "scenario-traffic-overlay")
    allocator = AddressAllocator(rng)
    type_rng = rng.fork("types")
    weight_rng = rng.fork("weights")

    for node_id in annotated.nodes():
        attrs = annotated.node_attributes(node_id)
        if "address" not in attrs:
            attrs["address"] = allocator.allocate()
        if "type" not in attrs:
            attrs["type"] = type_rng.choice(DEVICE_TYPES)
        if "name" not in attrs:
            attrs["name"] = str(node_id)

    for source, target, attrs in annotated.edges(data=True):
        if all(key in attrs for key in ("bytes", "connections", "packets")):
            continue
        # a link's observed traffic is a random fraction of its capacity;
        # links with no capacity annotation get a nominal 1 Gbps
        capacity = attrs.get("capacity_gbps", 1.0)
        utilization = weight_rng.uniform(0.05, 0.8)
        attrs.setdefault("bytes", max(int(capacity * utilization * 1_000_000), 100))
        attrs.setdefault("connections", max(int(capacity * utilization * 40), 1))
        attrs.setdefault("packets", max(int(capacity * utilization * 10_000), 10))
    annotated.graph_attributes["application"] = "traffic_analysis"
    return annotated


def scenario_graph(spec_or_name: SpecOrName,
                   at_time: Optional[float] = None) -> PropertyGraph:
    """Replay a scenario and return its graph (final state by default)."""
    spec = resolve_spec(spec_or_name)
    timeline = replay_scenario(spec)
    if at_time is None:
        return timeline.final_graph
    return timeline.graph_at(at_time)


def traffic_application_from_scenario(spec_or_name: SpecOrName,
                                      at_time: Optional[float] = None,
                                      application_cls=None):
    """A :class:`TrafficAnalysisApplication` (or subclass) over a scenario's state."""
    from repro.traffic.application import TrafficAnalysisApplication

    spec = resolve_spec(spec_or_name)
    require(spec.family != "malt",
            f"scenario {spec.name!r} uses the 'malt' family; build it with "
            f"MaltApplication.from_scenario instead")
    graph = scenario_graph(spec, at_time)
    application_cls = application_cls or TrafficAnalysisApplication
    return application_cls(
        graph=annotate_traffic_attributes(graph, seed=spec.seed))


def malt_application_from_scenario(spec_or_name: SpecOrName,
                                   at_time: Optional[float] = None,
                                   application_cls=None):
    """A :class:`MaltApplication` (or subclass) over a MALT-family scenario's state."""
    from repro.malt.application import MaltApplication

    spec = resolve_spec(spec_or_name)
    require(spec.family == "malt",
            f"scenario {spec.name!r} uses family {spec.family!r}; "
            f"MaltApplication requires the 'malt' family")
    application_cls = application_cls or MaltApplication
    return application_cls(graph=scenario_graph(spec, at_time))


def application_from_scenario(spec_or_name: SpecOrName,
                              at_time: Optional[float] = None):
    """Build whichever application matches the scenario's family."""
    spec = resolve_spec(spec_or_name)
    if spec.family == "malt":
        return malt_application_from_scenario(spec, at_time)
    return traffic_application_from_scenario(spec, at_time)
