"""Structured topology families, declarative scenarios, and dynamic events.

The paper evaluates two fixed synthetic datasets; this subsystem grows the
scenario axis toward "as many scenarios as you can imagine":

* :mod:`repro.scenarios.topologies` — parametric generators for fat-tree/
  Clos, WAN backbone, ring, star, full/partial mesh, and geometric
  (MANET-style) families, plus wrappers over the seed random-traffic and
  MALT generators, all registered by name;
* :mod:`repro.scenarios.events` — timestamped dynamic events (link down/up,
  capacity degradation, node churn, traffic surge);
* :mod:`repro.scenarios.spec` — the declarative, JSON-round-trippable
  :class:`ScenarioSpec` naming a family, parameters, seed and timeline;
* :mod:`repro.scenarios.engine` — the event engine replaying a spec into
  digest-stamped graph snapshots with `repro.graph.diff` deltas;
* :mod:`repro.scenarios.registry` — named built-in scenarios;
* :mod:`repro.scenarios.overlay` — build benchmark applications from a
  scenario's state (traffic attribute overlay, MALT passthrough);
* :mod:`repro.scenarios.suite` — multi-scenario suites swept by the
  benchmark runner and the cost analyzer;
* :mod:`repro.scenarios.corpus` — the on-disk spec corpus (``scenarios/``)
  and its digest lockfile.
"""

from repro.scenarios.topologies import (
    TopologyFamily,
    build_topology,
    family_names,
    get_family,
    register_family,
)
from repro.scenarios.events import (
    CapacityDegradationEvent,
    EngineState,
    GravityTrafficEvent,
    LinkDownEvent,
    LinkUpEvent,
    MaintenanceWindowEvent,
    NodeJoinEvent,
    NodeLeaveEvent,
    ScenarioEvent,
    SrlgFailureEvent,
    TrafficSurgeEvent,
    event_from_dict,
    event_kinds,
    expand_events,
    graph_srlgs,
)
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.engine import (
    EventEngine,
    ScenarioTimeline,
    Snapshot,
    graph_digest,
    replay_scenario,
)
from repro.scenarios.registry import (
    builtin_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.overlay import (
    annotate_traffic_attributes,
    application_from_scenario,
    malt_application_from_scenario,
    scenario_graph,
    traffic_application_from_scenario,
)
from repro.scenarios.suite import ScenarioSuite, correlated_suite, default_suite
from repro.scenarios.corpus import (
    corpus_spec_paths,
    read_lockfile,
    verify_corpus,
    write_corpus,
)

__all__ = [
    "TopologyFamily",
    "build_topology",
    "family_names",
    "get_family",
    "register_family",
    "ScenarioEvent",
    "LinkDownEvent",
    "LinkUpEvent",
    "CapacityDegradationEvent",
    "NodeLeaveEvent",
    "NodeJoinEvent",
    "TrafficSurgeEvent",
    "SrlgFailureEvent",
    "MaintenanceWindowEvent",
    "GravityTrafficEvent",
    "EngineState",
    "event_from_dict",
    "event_kinds",
    "expand_events",
    "graph_srlgs",
    "ScenarioSpec",
    "EventEngine",
    "ScenarioTimeline",
    "Snapshot",
    "graph_digest",
    "replay_scenario",
    "builtin_scenarios",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "annotate_traffic_attributes",
    "application_from_scenario",
    "malt_application_from_scenario",
    "scenario_graph",
    "traffic_application_from_scenario",
    "ScenarioSuite",
    "correlated_suite",
    "default_suite",
    "corpus_spec_paths",
    "read_lockfile",
    "verify_corpus",
    "write_corpus",
]
