"""Scenario suites: ordered collections of scenarios swept as one unit.

The benchmark runner (:meth:`repro.benchmark.runner.BenchmarkRunner.
run_scenario_suite`) and the cost analyzer (:meth:`repro.cost.analysis.
CostAnalyzer.scenario_cost_sweep`) both consume suites, so one suite
definition drives both the accuracy and the cost axes of an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.scenarios.engine import ScenarioTimeline, replay_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.utils.validation import require


@dataclass
class ScenarioSuite:
    """A named, ordered collection of scenario specs."""

    name: str
    scenarios: List[ScenarioSpec] = field(default_factory=list)

    def validate(self) -> None:
        require(bool(self.name), "suite name must be non-empty")
        require(len(self.scenarios) > 0, "a suite needs at least one scenario")
        seen: Set[str] = set()
        for spec in self.scenarios:
            spec.validate()
            require(spec.name not in seen,
                    f"duplicate scenario name {spec.name!r} in suite {self.name!r}")
            seen.add(spec.name)

    def families(self) -> List[str]:
        """Distinct topology families covered by the suite, sorted."""
        return sorted({spec.family for spec in self.scenarios})

    def replay_all(self) -> Dict[str, ScenarioTimeline]:
        """Replay every scenario; scenario name -> timeline."""
        self.validate()
        return {spec.name: replay_scenario(spec) for spec in self.scenarios}


def default_suite() -> ScenarioSuite:
    """The default multi-family sweep used by tests and the CLI.

    Small scenarios from four distinct families, so an end-to-end sweep
    (topology build, event replay, traffic overlay, benchmark queries) stays
    fast enough for CI.
    """
    from repro.scenarios.registry import get_scenario

    suite = ScenarioSuite(
        name="default",
        scenarios=[
            get_scenario("fat-tree-failover"),
            get_scenario("ring-maintenance"),
            get_scenario("traffic-flashcrowd"),
            get_scenario("star-hub-brownout"),
        ],
    )
    suite.validate()
    return suite


def correlated_suite() -> ScenarioSuite:
    """The correlated-dynamics sweep: SRLG cuts, maintenance windows, and
    gravity traffic matrices, one scenario per new event kind."""
    from repro.scenarios.registry import get_scenario

    suite = ScenarioSuite(
        name="correlated",
        scenarios=[
            get_scenario("wan-conduit-cut"),
            get_scenario("fattree-maintenance"),
            get_scenario("wan-gravity-hotspot"),
        ],
    )
    suite.validate()
    return suite
