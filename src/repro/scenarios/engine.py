"""The dynamic-event engine: replay a scenario into graph snapshots.

The engine builds the scenario's initial topology, applies the event
timeline in timestamp order, and records one :class:`Snapshot` per distinct
event time.  Each snapshot carries a deep copy of the graph, a canonical
content digest (replaying the same spec twice yields byte-identical
digests), and the structural delta from the previous snapshot computed with
:func:`repro.graph.diff.diff_graphs` — the same comparison machinery the
benchmark's results evaluator uses.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph import PropertyGraph
from repro.graph.diff import GraphDiff, diff_graphs
from repro.obs import span
from repro.scenarios.events import EngineState, expand_events
from repro.scenarios.spec import ScenarioSpec
from repro.utils.tables import format_table


def graph_digest(graph: PropertyGraph, length: int = 16) -> str:
    """Canonical content digest of a graph.

    Nodes and edges are sorted before hashing so the digest depends only on
    graph *content*, never on insertion order — two replays of the same
    scenario (or a serialization round-trip) agree digest-for-digest.
    """
    canonical = {
        "directed": graph.directed,
        "graph_attributes": graph.graph_attributes,
        "nodes": sorted(
            ({"id": str(node_id), "attributes": attrs}
             for node_id, attrs in graph.nodes(data=True)),
            key=lambda entry: entry["id"]),
        "edges": sorted(
            ({"source": str(source), "target": str(target), "attributes": attrs}
             for source, target, attrs in graph.edges(data=True)),
            key=lambda entry: (entry["source"], entry["target"])),
    }
    payload = json.dumps(canonical, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:length]


@dataclass
class Snapshot:
    """The scenario state at one point in time."""

    time: float
    graph: PropertyGraph
    changes: List[str] = field(default_factory=list)
    diff_from_previous: Optional[GraphDiff] = None
    #: memoized content digest — snapshot graphs are immutable once recorded,
    #: so the canonical-JSON + sha256 pass runs at most once per snapshot
    _digest: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def digest(self) -> str:
        if self._digest is None:
            self._digest = graph_digest(self.graph)
        return self._digest


@dataclass
class ScenarioTimeline:
    """The full replay result: the ordered snapshot sequence."""

    scenario_name: str
    snapshots: List[Snapshot] = field(default_factory=list)

    @property
    def initial_graph(self) -> PropertyGraph:
        return self.snapshots[0].graph

    @property
    def final_graph(self) -> PropertyGraph:
        return self.snapshots[-1].graph

    def times(self) -> List[float]:
        """The ascending snapshot timestamps."""
        return [snapshot.time for snapshot in self.snapshots]

    def snapshot_at(self, time: float) -> Snapshot:
        """The most recent snapshot at or before *time* (binary search).

        Times earlier than the first snapshot raise ``ValueError``: there is
        no scenario state before the initial snapshot, and silently clamping
        to it would make a mistyped negative timestamp look like a valid
        pre-failure query.
        """
        if not self.snapshots:
            raise ValueError(f"scenario {self.scenario_name!r} has no snapshots")
        times = self.times()
        if time < times[0]:
            raise ValueError(
                f"time {time} precedes the first snapshot of scenario "
                f"{self.scenario_name!r} (t={times[0]}); the timeline has no "
                f"pre-start state")
        return self.snapshots[bisect_right(times, time) - 1]

    def graph_at(self, time: float) -> PropertyGraph:
        """The most recent snapshot graph at or before *time*."""
        return self.snapshot_at(time).graph

    def digests(self) -> List[str]:
        """Per-snapshot content digests (the determinism fingerprint)."""
        return [snapshot.digest for snapshot in self.snapshots]

    def summary(self) -> str:
        """Render the timeline as a table (used by the CLI replay view)."""
        rows = []
        for snapshot in self.snapshots:
            delta = ("initial state" if snapshot.diff_from_previous is None
                     else snapshot.diff_from_previous.summary(limit=2))
            rows.append([snapshot.time, snapshot.graph.node_count,
                         snapshot.graph.edge_count, snapshot.digest,
                         "; ".join(snapshot.changes) or delta])
        return format_table(["time", "nodes", "edges", "digest", "changes"], rows,
                            title=f"Scenario timeline — {self.scenario_name}")


# ---------------------------------------------------------------------------
# timeline serialization — the contract consumed by the timeline-aware
# synthesis backends (see DESIGN.md "Timeline-aware synthesis")
# ---------------------------------------------------------------------------
TIMELINE_FORMAT_VERSION = 1


def require_timeline_format(payload: Dict[str, object]) -> None:
    """Reject serialized timelines written by a different format version.

    Every reader of the payload calls this first, so a future format change
    fails with a clear version mismatch instead of a shape error (or a
    silently wrong timeline) deep inside graph deserialization.
    """
    from repro.utils.validation import require

    found = payload.get("format_version")
    require(found == TIMELINE_FORMAT_VERSION,
            f"serialized timeline has format_version {found!r}; this reader "
            f"understands version {TIMELINE_FORMAT_VERSION}")


def diff_to_dict(diff: GraphDiff) -> Dict[str, object]:
    """JSON-friendly structural dump of a :class:`GraphDiff`.

    Attribute mismatches are flattened to ``(entity, key)`` pairs — the
    mismatching *values* live in the adjacent snapshot graphs, and the
    ``ABSENT`` sentinel inside full mismatch tuples does not survive JSON.
    """
    return {
        "missing_nodes": [str(node) for node in diff.missing_nodes],
        "extra_nodes": [str(node) for node in diff.extra_nodes],
        "missing_edges": [[str(source), str(target)]
                          for source, target in diff.missing_edges],
        "extra_edges": [[str(source), str(target)]
                        for source, target in diff.extra_edges],
        "changed_node_attributes": [[str(node), key]
                                    for node, key, _, _ in diff.node_attribute_mismatches],
        "changed_edge_attributes": [[str(source), str(target), key]
                                    for (source, target), key, _, _
                                    in diff.edge_attribute_mismatches],
    }


def timeline_to_dict(timeline: "ScenarioTimeline") -> Dict[str, object]:
    """Serialize a replayed timeline: snapshot sequence plus diff deltas.

    The payload is pure JSON (it round-trips through the execution fabric's
    canonical-payload machinery) and carries everything a generated program
    needs: per-snapshot time, content digest, change log, the full node-link
    graph, and the structural delta from the previous snapshot.
    """
    from repro.graph.serialization import graph_to_dict

    entries = []
    for snapshot in timeline.snapshots:
        entries.append({
            "time": snapshot.time,
            "digest": snapshot.digest,
            "changes": list(snapshot.changes),
            "graph": graph_to_dict(snapshot.graph),
            "delta": (None if snapshot.diff_from_previous is None
                      else diff_to_dict(snapshot.diff_from_previous)),
        })
    return {
        "format_version": TIMELINE_FORMAT_VERSION,
        "scenario": timeline.scenario_name,
        "snapshots": entries,
    }


def timeline_from_dict(payload: Dict[str, object]) -> "ScenarioTimeline":
    """Rebuild a :class:`ScenarioTimeline` from :func:`timeline_to_dict`.

    Graphs are reconstructed node-link entry by entry and the inter-snapshot
    diffs are *recomputed* with :func:`diff_graphs` (the serialized deltas
    only carry the structural JSON projection); content digests are
    recomputed lazily and match the originals because the digest depends on
    graph content alone.
    """
    from repro.graph.serialization import graph_from_dict

    require_timeline_format(payload)
    timeline = ScenarioTimeline(scenario_name=payload["scenario"])
    previous = None
    for entry in payload["snapshots"]:
        graph = graph_from_dict(entry["graph"])
        timeline.snapshots.append(Snapshot(
            time=float(entry["time"]),
            graph=graph,
            changes=list(entry.get("changes", [])),
            diff_from_previous=(None if previous is None
                                else diff_graphs(previous, graph)),
        ))
        previous = graph
    return timeline


class EventEngine:
    """Replay one :class:`ScenarioSpec` into a :class:`ScenarioTimeline`."""

    def __init__(self, spec: ScenarioSpec) -> None:
        spec.validate()
        self.spec = spec

    def replay(self) -> ScenarioTimeline:
        """Build the topology, apply every event, snapshot each event time.

        Declarative events (maintenance windows) are first expanded into
        primitive drain/restore steps, and every event is validated against
        the initial topology — an SRLG naming a missing link or a gravity
        event on a zero-mass graph fails here, before any snapshot is taken,
        so a broken spec can never produce a half-mutated timeline.
        """
        replay_attrs = {"scenario": self.spec.name, "family": self.spec.family}
        with span("scenario.replay", attrs=replay_attrs):
            with span("scenario.build", attrs={"family": self.spec.family}):
                graph = self.spec.build_topology()
            # validate the *declared* events (windows included) against the
            # initial topology, then expand windows into drain/restore pairs
            declared = self.spec.sorted_events()
            for event in declared:
                event.validate_against(graph)
            events = expand_events(declared, graph=graph)
            state = EngineState()
            timeline = ScenarioTimeline(scenario_name=self.spec.name)
            timeline.snapshots.append(Snapshot(time=0.0, graph=graph.copy()))

            grouped: Dict[float, List] = {}
            for event in events:
                grouped.setdefault(event.at, []).append(event)

            previous = timeline.snapshots[0].graph
            for at in sorted(grouped):
                with span("scenario.snapshot", attrs={"time": at}):
                    changes: List[str] = []
                    for event in grouped[at]:
                        changes.extend(event.apply(graph, state))
                    current = graph.copy()
                    timeline.snapshots.append(Snapshot(
                        time=at,
                        graph=current,
                        changes=changes,
                        diff_from_previous=diff_graphs(previous, current),
                    ))
                    previous = current
            replay_attrs["snapshots"] = len(timeline.snapshots)
        return timeline


def replay_scenario(spec: ScenarioSpec) -> ScenarioTimeline:
    """Convenience one-shot replay."""
    return EventEngine(spec).replay()
