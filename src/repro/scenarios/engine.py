"""The dynamic-event engine: replay a scenario into graph snapshots.

The engine builds the scenario's initial topology, applies the event
timeline in timestamp order, and records one :class:`Snapshot` per distinct
event time.  Each snapshot carries a deep copy of the graph, a canonical
content digest (replaying the same spec twice yields byte-identical
digests), and the structural delta from the previous snapshot computed with
:func:`repro.graph.diff.diff_graphs` — the same comparison machinery the
benchmark's results evaluator uses.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph import PropertyGraph
from repro.graph.diff import GraphDiff, diff_graphs
from repro.scenarios.events import EngineState, expand_events
from repro.scenarios.spec import ScenarioSpec
from repro.utils.tables import format_table


def graph_digest(graph: PropertyGraph, length: int = 16) -> str:
    """Canonical content digest of a graph.

    Nodes and edges are sorted before hashing so the digest depends only on
    graph *content*, never on insertion order — two replays of the same
    scenario (or a serialization round-trip) agree digest-for-digest.
    """
    canonical = {
        "directed": graph.directed,
        "graph_attributes": graph.graph_attributes,
        "nodes": sorted(
            ({"id": str(node_id), "attributes": attrs}
             for node_id, attrs in graph.nodes(data=True)),
            key=lambda entry: entry["id"]),
        "edges": sorted(
            ({"source": str(source), "target": str(target), "attributes": attrs}
             for source, target, attrs in graph.edges(data=True)),
            key=lambda entry: (entry["source"], entry["target"])),
    }
    payload = json.dumps(canonical, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:length]


@dataclass
class Snapshot:
    """The scenario state at one point in time."""

    time: float
    graph: PropertyGraph
    changes: List[str] = field(default_factory=list)
    diff_from_previous: Optional[GraphDiff] = None
    #: memoized content digest — snapshot graphs are immutable once recorded,
    #: so the canonical-JSON + sha256 pass runs at most once per snapshot
    _digest: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def digest(self) -> str:
        if self._digest is None:
            self._digest = graph_digest(self.graph)
        return self._digest


@dataclass
class ScenarioTimeline:
    """The full replay result: the ordered snapshot sequence."""

    scenario_name: str
    snapshots: List[Snapshot] = field(default_factory=list)

    @property
    def initial_graph(self) -> PropertyGraph:
        return self.snapshots[0].graph

    @property
    def final_graph(self) -> PropertyGraph:
        return self.snapshots[-1].graph

    def times(self) -> List[float]:
        """The ascending snapshot timestamps."""
        return [snapshot.time for snapshot in self.snapshots]

    def snapshot_at(self, time: float) -> Snapshot:
        """The most recent snapshot at or before *time* (binary search).

        Times earlier than the first snapshot raise ``ValueError``: there is
        no scenario state before the initial snapshot, and silently clamping
        to it would make a mistyped negative timestamp look like a valid
        pre-failure query.
        """
        if not self.snapshots:
            raise ValueError(f"scenario {self.scenario_name!r} has no snapshots")
        times = self.times()
        if time < times[0]:
            raise ValueError(
                f"time {time} precedes the first snapshot of scenario "
                f"{self.scenario_name!r} (t={times[0]}); the timeline has no "
                f"pre-start state")
        return self.snapshots[bisect_right(times, time) - 1]

    def graph_at(self, time: float) -> PropertyGraph:
        """The most recent snapshot graph at or before *time*."""
        return self.snapshot_at(time).graph

    def digests(self) -> List[str]:
        """Per-snapshot content digests (the determinism fingerprint)."""
        return [snapshot.digest for snapshot in self.snapshots]

    def summary(self) -> str:
        """Render the timeline as a table (used by the CLI replay view)."""
        rows = []
        for snapshot in self.snapshots:
            delta = ("initial state" if snapshot.diff_from_previous is None
                     else snapshot.diff_from_previous.summary(limit=2))
            rows.append([snapshot.time, snapshot.graph.node_count,
                         snapshot.graph.edge_count, snapshot.digest,
                         "; ".join(snapshot.changes) or delta])
        return format_table(["time", "nodes", "edges", "digest", "changes"], rows,
                            title=f"Scenario timeline — {self.scenario_name}")


class EventEngine:
    """Replay one :class:`ScenarioSpec` into a :class:`ScenarioTimeline`."""

    def __init__(self, spec: ScenarioSpec) -> None:
        spec.validate()
        self.spec = spec

    def replay(self) -> ScenarioTimeline:
        """Build the topology, apply every event, snapshot each event time.

        Declarative events (maintenance windows) are first expanded into
        primitive drain/restore steps, and every event is validated against
        the initial topology — an SRLG naming a missing link or a gravity
        event on a zero-mass graph fails here, before any snapshot is taken,
        so a broken spec can never produce a half-mutated timeline.
        """
        graph = self.spec.build_topology()
        # validate the *declared* events (windows included) against the
        # initial topology, then expand windows into drain/restore pairs
        declared = self.spec.sorted_events()
        for event in declared:
            event.validate_against(graph)
        events = expand_events(declared, graph=graph)
        state = EngineState()
        timeline = ScenarioTimeline(scenario_name=self.spec.name)
        timeline.snapshots.append(Snapshot(time=0.0, graph=graph.copy()))

        grouped: Dict[float, List] = {}
        for event in events:
            grouped.setdefault(event.at, []).append(event)

        previous = timeline.snapshots[0].graph
        for at in sorted(grouped):
            changes: List[str] = []
            for event in grouped[at]:
                changes.extend(event.apply(graph, state))
            current = graph.copy()
            timeline.snapshots.append(Snapshot(
                time=at,
                graph=current,
                changes=changes,
                diff_from_previous=diff_graphs(previous, current),
            ))
            previous = current
        return timeline


def replay_scenario(spec: ScenarioSpec) -> ScenarioTimeline:
    """Convenience one-shot replay."""
    return EventEngine(spec).replay()
