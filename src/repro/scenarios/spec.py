"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the munet-style, configuration-first description
of one experiment: *which* topology family, with *which* parameters, from
*which* seed, and *what happens over time*.  Specs are plain data — they
round-trip losslessly through dictionaries and JSON, so suites of scenarios
can live in files, be generated programmatically, or be passed on the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Set

from repro.graph import PropertyGraph
from repro.scenarios.events import ScenarioEvent, event_from_dict
from repro.scenarios.topologies import build_topology, family_names
from repro.utils.validation import require


SPEC_FORMAT_VERSION = 1


@dataclass
class ScenarioSpec:
    """One declarative scenario: a topology family plus an event timeline."""

    name: str
    family: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 7
    description: str = ""
    events: List[ScenarioEvent] = field(default_factory=list)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        require(bool(self.name), "scenario name must be non-empty")
        require(self.family in family_names(),
                f"unknown topology family {self.family!r}; "
                f"known families: {family_names()}")
        for event in self.events:
            event.validate()

    def sorted_events(self) -> List[ScenarioEvent]:
        """Events in replay order (stable for equal timestamps)."""
        return sorted(self.events, key=lambda event: event.at)

    def event_kinds(self) -> Set[str]:
        """The distinct event kinds this scenario exercises."""
        return {event.kind for event in self.events}

    def build_topology(self) -> PropertyGraph:
        """Build the scenario's initial (time-zero) topology."""
        self.validate()
        graph = build_topology(self.family, self.params, self.seed)
        graph.graph_attributes["scenario"] = self.name
        return graph

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": SPEC_FORMAT_VERSION,
            "name": self.name,
            "family": self.family,
            "params": dict(self.params),
            "seed": self.seed,
            "description": self.description,
            "events": [event.to_dict() for event in self.sorted_events()],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        require(isinstance(payload, dict), "scenario payload must be a dictionary")
        require("name" in payload and "family" in payload,
                "scenario payload must contain 'name' and 'family'")
        spec = cls(
            name=payload["name"],
            family=payload["family"],
            params=dict(payload.get("params", {})),
            seed=int(payload.get("seed", 7)),
            description=payload.get("description", ""),
            events=[event_from_dict(event) for event in payload.get("events", [])],
        )
        spec.validate()
        return spec

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        """Load a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        """Write the spec to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
