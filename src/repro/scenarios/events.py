"""Timestamped dynamic events applied to a topology graph.

A scenario's timeline is a list of events, each with a time ``at`` and a
``kind``; the :mod:`~repro.scenarios.engine` replays them in time order
against the scenario's topology.  The munet/SiNE emulation plans motivate the
vocabulary: links fail and recover, capacity degrades, nodes churn in and
out, and traffic surges.

Every event serializes to a plain dictionary (``{"kind": ..., "at": ...,
...}``) so scenario specs stay JSON-loadable, and every mutation is
deterministic — an event never consults wall-clock time or unseeded
randomness.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.graph import PropertyGraph
from repro.utils.validation import require


#: default attributes for a link brought up with no remembered/explicit state
DEFAULT_LINK_ATTRIBUTES = {"capacity_gbps": 10, "latency_ms": 1.0}

#: traffic counter keys scaled by a surge
TRAFFIC_KEYS = ("bytes", "connections", "packets")


class EngineState:
    """Replay bookkeeping shared by all events of one scenario run.

    Remembers the attributes of removed links and the attributes plus
    incident edges of removed nodes, so that ``link_up`` / ``node_join``
    events can restore them exactly.
    """

    def __init__(self) -> None:
        self.removed_edges: Dict[Tuple[Any, Any], Dict[str, Any]] = {}
        self.removed_nodes: Dict[Any, Dict[str, Any]] = {}
        self.removed_incident: Dict[Any, List[Tuple[Any, Any, Dict[str, Any]]]] = {}


@dataclass
class ScenarioEvent:
    """Base class: one timestamped mutation of the scenario graph."""

    at: float

    #: stable serialization tag, overridden by every subclass
    kind = "event"

    def validate(self) -> None:
        require(self.at >= 0, f"event time must be non-negative, got {self.at}")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        """Mutate *graph* in place; return human-readable change notes."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        payload = {"kind": self.kind, "at": self.at}
        payload.update(self._payload())
        return payload

    def _payload(self) -> Dict[str, Any]:
        return {}


@dataclass
class LinkDownEvent(ScenarioEvent):
    """Take a link down (the edge is removed; its attributes are remembered)."""

    source: Any = None
    target: Any = None
    kind = "link_down"

    def validate(self) -> None:
        super().validate()
        require(self.source is not None and self.target is not None,
                "link_down requires 'source' and 'target'")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        if not graph.has_edge(self.source, self.target):
            return [f"link {self.source}->{self.target} already absent"]
        state.removed_edges[(self.source, self.target)] = dict(
            graph.edge_attributes(self.source, self.target))
        graph.remove_edge(self.source, self.target)
        return [f"link down: {self.source} -> {self.target}"]

    def _payload(self) -> Dict[str, Any]:
        return {"source": self.source, "target": self.target}


@dataclass
class LinkUpEvent(ScenarioEvent):
    """Bring a link (back) up, restoring remembered attributes when known."""

    source: Any = None
    target: Any = None
    attributes: Optional[Dict[str, Any]] = None
    kind = "link_up"

    def validate(self) -> None:
        super().validate()
        require(self.source is not None and self.target is not None,
                "link_up requires 'source' and 'target'")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        if graph.has_edge(self.source, self.target):
            return [f"link {self.source}->{self.target} already up"]
        attrs = self.attributes
        if attrs is None:
            attrs = state.removed_edges.pop((self.source, self.target),
                                            dict(DEFAULT_LINK_ATTRIBUTES))
        graph.add_edge(self.source, self.target, **dict(attrs))
        return [f"link up: {self.source} -> {self.target}"]

    def _payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"source": self.source, "target": self.target}
        if self.attributes is not None:
            payload["attributes"] = dict(self.attributes)
        return payload


@dataclass
class CapacityDegradationEvent(ScenarioEvent):
    """Scale the capacity of one link, one node's links, or every link."""

    factor: float = 0.5
    source: Any = None
    target: Any = None
    attribute: str = "capacity_gbps"
    kind = "capacity_degradation"

    def validate(self) -> None:
        super().validate()
        require(self.factor > 0, f"degradation factor must be positive, got {self.factor}")
        require(not (self.target is not None and self.source is None),
                "capacity_degradation with a 'target' also requires a 'source'")

    def _selected_edges(self, graph: PropertyGraph) -> List[Tuple[Any, Any]]:
        if self.source is not None and self.target is not None:
            return [(self.source, self.target)] if graph.has_edge(self.source, self.target) else []
        edges = [(u, v) for u, v in graph.edges()]
        if self.source is not None:
            edges = [(u, v) for u, v in edges if self.source in (u, v)]
        return edges

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        touched = 0
        for u, v in self._selected_edges(graph):
            attrs = graph.edge_attributes(u, v)
            if self.attribute not in attrs:
                continue
            attrs[self.attribute] = round(attrs[self.attribute] * self.factor, 6)
            touched += 1
        scope = (f"{self.source}->{self.target}" if self.target is not None
                 else (str(self.source) if self.source is not None else "all links"))
        return [f"capacity x{self.factor} on {scope} ({touched} links)"]

    def _payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"factor": self.factor}
        if self.source is not None:
            payload["source"] = self.source
        if self.target is not None:
            payload["target"] = self.target
        if self.attribute != "capacity_gbps":
            payload["attribute"] = self.attribute
        return payload


@dataclass
class NodeLeaveEvent(ScenarioEvent):
    """A node churns out: it and its incident edges are removed (remembered)."""

    node: Any = None
    kind = "node_leave"

    def validate(self) -> None:
        super().validate()
        require(self.node is not None, "node_leave requires 'node'")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        if not graph.has_node(self.node):
            return [f"node {self.node} already absent"]
        state.removed_nodes[self.node] = dict(graph.node_attributes(self.node))
        incident = []
        for source, target, attrs in graph.edges(data=True):
            if self.node in (source, target):
                incident.append((source, target, dict(attrs)))
        state.removed_incident[self.node] = incident
        graph.remove_node(self.node)
        return [f"node leave: {self.node} (dropped {len(incident)} links)"]

    def _payload(self) -> Dict[str, Any]:
        return {"node": self.node}


@dataclass
class NodeJoinEvent(ScenarioEvent):
    """A node churns in: a previously-removed node is restored with its
    links, or a brand-new node is added with explicit attributes/links."""

    node: Any = None
    attributes: Optional[Dict[str, Any]] = None
    links: Optional[List[Dict[str, Any]]] = None
    kind = "node_join"

    def validate(self) -> None:
        super().validate()
        require(self.node is not None, "node_join requires 'node'")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        if graph.has_node(self.node):
            return [f"node {self.node} already present"]
        attrs = self.attributes
        if attrs is None:
            attrs = state.removed_nodes.pop(self.node, {})
        graph.add_node(self.node, **dict(attrs))
        restored = 0
        if self.links is not None:
            for link in self.links:
                peer = link["peer"]
                if not graph.has_node(peer):
                    continue
                graph.add_edge(self.node, peer,
                               **dict(link.get("attributes", DEFAULT_LINK_ATTRIBUTES)))
                restored += 1
        else:
            for source, target, edge_attrs in state.removed_incident.pop(self.node, []):
                if graph.has_node(source) and graph.has_node(target):
                    graph.add_edge(source, target, **dict(edge_attrs))
                    restored += 1
        return [f"node join: {self.node} (restored {restored} links)"]

    def _payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"node": self.node}
        if self.attributes is not None:
            payload["attributes"] = dict(self.attributes)
        if self.links is not None:
            payload["links"] = [dict(link) for link in self.links]
        return payload


@dataclass
class TrafficSurgeEvent(ScenarioEvent):
    """Scale traffic counters (bytes/connections/packets) by a factor.

    With ``node`` set only edges incident to that node surge; otherwise every
    edge carrying traffic counters does.  Integer counters stay integers.
    """

    factor: float = 2.0
    node: Any = None
    keys: Tuple[str, ...] = field(default_factory=lambda: TRAFFIC_KEYS)
    kind = "traffic_surge"

    def validate(self) -> None:
        super().validate()
        require(self.factor > 0, f"surge factor must be positive, got {self.factor}")
        require(len(self.keys) > 0, "traffic_surge requires at least one counter key")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        touched = 0
        for source, target, attrs in graph.edges(data=True):
            if self.node is not None and self.node not in (source, target):
                continue
            hit = False
            for key in self.keys:
                if key not in attrs:
                    continue
                value = attrs[key] * self.factor
                attrs[key] = int(round(value)) if isinstance(attrs[key], int) else round(value, 6)
                hit = True
            touched += hit
        scope = str(self.node) if self.node is not None else "all edges"
        return [f"traffic x{self.factor} on {scope} ({touched} edges)"]

    def _payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"factor": self.factor}
        if self.node is not None:
            payload["node"] = self.node
        if tuple(self.keys) != TRAFFIC_KEYS:
            payload["keys"] = list(self.keys)
        return payload


#: serialization registry: kind tag -> event class
EVENT_TYPES: Dict[str, Type[ScenarioEvent]] = {
    cls.kind: cls
    for cls in (LinkDownEvent, LinkUpEvent, CapacityDegradationEvent,
                NodeLeaveEvent, NodeJoinEvent, TrafficSurgeEvent)
}


def event_kinds() -> List[str]:
    """All known event kind tags, sorted."""
    return sorted(EVENT_TYPES)


def event_from_dict(payload: Dict[str, Any]) -> ScenarioEvent:
    """Rebuild an event from its dictionary form."""
    require(isinstance(payload, dict), "event payload must be a dictionary")
    require("kind" in payload, "event payload must contain 'kind'")
    require("at" in payload, "event payload must contain 'at'")
    kind = payload["kind"]
    require(kind in EVENT_TYPES,
            f"unknown event kind {kind!r}; known kinds: {event_kinds()}")
    event_cls = EVENT_TYPES[kind]
    fields = {key: value for key, value in payload.items() if key != "kind"}
    allowed = {f.name for f in dataclasses.fields(event_cls)}
    unknown = sorted(set(fields) - allowed)
    require(not unknown,
            f"unknown field(s) {unknown} for event kind {kind!r}; "
            f"known fields: {sorted(allowed)}")
    if kind == "traffic_surge" and "keys" in fields:
        fields["keys"] = tuple(fields["keys"])
    event = event_cls(**fields)
    event.validate()
    return event
