"""Timestamped dynamic events applied to a topology graph.

A scenario's timeline is a list of events, each with a time ``at`` and a
``kind``; the :mod:`~repro.scenarios.engine` replays them in time order
against the scenario's topology.  The munet/SiNE emulation plans motivate the
vocabulary: links fail and recover, capacity degrades, nodes churn in and
out, and traffic surges.

Beyond the independent primitives, three *correlated-dynamics* events model
how real networks actually change: :class:`SrlgFailureEvent` fails a whole
shared-risk link group (conduit, chassis, region bundle) atomically,
:class:`MaintenanceWindowEvent` declares a drain window the engine expands
into guaranteed drain/restore pairs, and :class:`GravityTrafficEvent`
replaces a uniform surge with a gravity-model traffic matrix derived from
node masses.

Every event serializes to a plain dictionary (``{"kind": ..., "at": ...,
...}``) so scenario specs stay JSON-loadable, and every mutation is
deterministic — an event never consults wall-clock time or unseeded
randomness.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.graph import PropertyGraph
from repro.utils.validation import require


#: default attributes for a link brought up with no remembered/explicit state
DEFAULT_LINK_ATTRIBUTES = {"capacity_gbps": 10, "latency_ms": 1.0}

#: traffic counter keys scaled by a surge
TRAFFIC_KEYS = ("bytes", "connections", "packets")

#: graph attribute under which topology builders declare shared-risk link
#: groups: ``{group name: [[source, target], ...]}``
SRLG_ATTRIBUTE = "srlgs"

#: traffic seeded per Gbps of link capacity when a gravity event touches an
#: edge that carries no counter yet (keeps gravity matrices deterministic on
#: physical-only topologies such as the WAN backbone)
GRAVITY_BASELINE_PER_GBPS = {"bytes": 1_000_000, "connections": 40, "packets": 10_000}


def graph_srlgs(graph: PropertyGraph) -> Dict[str, List[Tuple[Any, Any]]]:
    """The shared-risk link groups declared on *graph* at build time."""
    declared = graph.graph_attributes.get(SRLG_ATTRIBUTE, {})
    return {name: [tuple(member) for member in members]
            for name, members in declared.items()}


class EngineState:
    """Replay bookkeeping shared by all events of one scenario run.

    Remembers the attributes of removed links and the attributes plus
    incident edges of removed nodes, so that ``link_up`` / ``node_join``
    events can restore them exactly.
    """

    def __init__(self) -> None:
        self.removed_edges: Dict[Tuple[Any, Any], Dict[str, Any]] = {}
        self.removed_nodes: Dict[Any, Dict[str, Any]] = {}
        self.removed_incident: Dict[Any, List[Tuple[Any, Any, Dict[str, Any]]]] = {}


@dataclass
class ScenarioEvent:
    """Base class: one timestamped mutation of the scenario graph."""

    at: float

    #: stable serialization tag, overridden by every subclass
    kind = "event"

    def validate(self) -> None:
        require(self.at >= 0, f"event time must be non-negative, got {self.at}")

    def validate_against(self, graph: PropertyGraph) -> None:
        """Graph-aware validation, called by the engine on the *initial*
        topology before any event is applied.

        Events whose correctness depends on build-time declarations (SRLG
        membership, node masses) override this so that a broken reference
        fails loudly up front instead of corrupting the timeline mid-replay.
        """

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        """Mutate *graph* in place; return human-readable change notes."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        payload = {"kind": self.kind, "at": self.at}
        payload.update(self._payload())
        return payload

    def _payload(self) -> Dict[str, Any]:
        return {}


@dataclass
class LinkDownEvent(ScenarioEvent):
    """Take a link down (the edge is removed; its attributes are remembered)."""

    source: Any = None
    target: Any = None
    kind = "link_down"

    def validate(self) -> None:
        super().validate()
        require(self.source is not None and self.target is not None,
                "link_down requires 'source' and 'target'")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        if not graph.has_edge(self.source, self.target):
            return [f"link {self.source}->{self.target} already absent"]
        state.removed_edges[(self.source, self.target)] = dict(
            graph.edge_attributes(self.source, self.target))
        graph.remove_edge(self.source, self.target)
        return [f"link down: {self.source} -> {self.target}"]

    def _payload(self) -> Dict[str, Any]:
        return {"source": self.source, "target": self.target}


@dataclass
class LinkUpEvent(ScenarioEvent):
    """Bring a link (back) up, restoring remembered attributes when known."""

    source: Any = None
    target: Any = None
    attributes: Optional[Dict[str, Any]] = None
    kind = "link_up"

    def validate(self) -> None:
        super().validate()
        require(self.source is not None and self.target is not None,
                "link_up requires 'source' and 'target'")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        if graph.has_edge(self.source, self.target):
            return [f"link {self.source}->{self.target} already up"]
        attrs = self.attributes
        if attrs is None:
            attrs = state.removed_edges.pop((self.source, self.target), None)
            if attrs is None and not graph.directed:
                # on an undirected graph the storage orientation is invisible
                # to the spec author (and SRLG failures remember their own
                # member orientation), so a reversed repair must still find
                # the recorded attributes
                attrs = state.removed_edges.pop((self.target, self.source), None)
            if attrs is None:
                attrs = dict(DEFAULT_LINK_ATTRIBUTES)
        graph.add_edge(self.source, self.target, **dict(attrs))
        return [f"link up: {self.source} -> {self.target}"]

    def _payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"source": self.source, "target": self.target}
        if self.attributes is not None:
            payload["attributes"] = dict(self.attributes)
        return payload


@dataclass
class CapacityDegradationEvent(ScenarioEvent):
    """Scale the capacity of one link, one node's links, or every link."""

    factor: float = 0.5
    source: Any = None
    target: Any = None
    attribute: str = "capacity_gbps"
    kind = "capacity_degradation"

    def validate(self) -> None:
        super().validate()
        require(self.factor > 0, f"degradation factor must be positive, got {self.factor}")
        require(not (self.target is not None and self.source is None),
                "capacity_degradation with a 'target' also requires a 'source'")

    def _selected_edges(self, graph: PropertyGraph) -> List[Tuple[Any, Any]]:
        if self.source is not None and self.target is not None:
            return [(self.source, self.target)] if graph.has_edge(self.source, self.target) else []
        edges = [(u, v) for u, v in graph.edges()]
        if self.source is not None:
            edges = [(u, v) for u, v in edges if self.source in (u, v)]
        return edges

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        touched = 0
        for u, v in self._selected_edges(graph):
            attrs = graph.edge_attributes(u, v)
            if self.attribute not in attrs:
                continue
            attrs[self.attribute] = round(attrs[self.attribute] * self.factor, 6)
            touched += 1
        scope = (f"{self.source}->{self.target}" if self.target is not None
                 else (str(self.source) if self.source is not None else "all links"))
        return [f"capacity x{self.factor} on {scope} ({touched} links)"]

    def _payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"factor": self.factor}
        if self.source is not None:
            payload["source"] = self.source
        if self.target is not None:
            payload["target"] = self.target
        if self.attribute != "capacity_gbps":
            payload["attribute"] = self.attribute
        return payload


@dataclass
class NodeLeaveEvent(ScenarioEvent):
    """A node churns out: it and its incident edges are removed (remembered)."""

    node: Any = None
    kind = "node_leave"

    def validate(self) -> None:
        super().validate()
        require(self.node is not None, "node_leave requires 'node'")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        if not graph.has_node(self.node):
            return [f"node {self.node} already absent"]
        state.removed_nodes[self.node] = dict(graph.node_attributes(self.node))
        incident = []
        for source, target, attrs in graph.edges(data=True):
            if self.node in (source, target):
                incident.append((source, target, dict(attrs)))
        state.removed_incident[self.node] = incident
        graph.remove_node(self.node)
        return [f"node leave: {self.node} (dropped {len(incident)} links)"]

    def _payload(self) -> Dict[str, Any]:
        return {"node": self.node}


@dataclass
class NodeJoinEvent(ScenarioEvent):
    """A node churns in: a previously-removed node is restored with its
    links, or a brand-new node is added with explicit attributes/links."""

    node: Any = None
    attributes: Optional[Dict[str, Any]] = None
    links: Optional[List[Dict[str, Any]]] = None
    kind = "node_join"

    def validate(self) -> None:
        super().validate()
        require(self.node is not None, "node_join requires 'node'")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        if graph.has_node(self.node):
            return [f"node {self.node} already present"]
        attrs = self.attributes
        if attrs is None:
            attrs = state.removed_nodes.pop(self.node, {})
        graph.add_node(self.node, **dict(attrs))
        restored = 0
        if self.links is not None:
            for link in self.links:
                peer = link["peer"]
                if not graph.has_node(peer):
                    continue
                graph.add_edge(self.node, peer,
                               **dict(link.get("attributes", DEFAULT_LINK_ATTRIBUTES)))
                restored += 1
        else:
            for source, target, edge_attrs in state.removed_incident.pop(self.node, []):
                if graph.has_node(source) and graph.has_node(target):
                    graph.add_edge(source, target, **dict(edge_attrs))
                    restored += 1
        return [f"node join: {self.node} (restored {restored} links)"]

    def _payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"node": self.node}
        if self.attributes is not None:
            payload["attributes"] = dict(self.attributes)
        if self.links is not None:
            payload["links"] = [dict(link) for link in self.links]
        return payload


@dataclass
class TrafficSurgeEvent(ScenarioEvent):
    """Scale traffic counters (bytes/connections/packets) by a factor.

    With ``node`` set only edges incident to that node surge; otherwise every
    edge carrying traffic counters does.  Integer counters stay integers.
    """

    factor: float = 2.0
    node: Any = None
    keys: Tuple[str, ...] = field(default_factory=lambda: TRAFFIC_KEYS)
    kind = "traffic_surge"

    def validate(self) -> None:
        super().validate()
        require(self.factor > 0, f"surge factor must be positive, got {self.factor}")
        require(len(self.keys) > 0, "traffic_surge requires at least one counter key")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        touched = 0
        for source, target, attrs in graph.edges(data=True):
            if self.node is not None and self.node not in (source, target):
                continue
            hit = False
            for key in self.keys:
                if key not in attrs:
                    continue
                value = attrs[key] * self.factor
                attrs[key] = int(round(value)) if isinstance(attrs[key], int) else round(value, 6)
                hit = True
            touched += hit
        scope = str(self.node) if self.node is not None else "all edges"
        return [f"traffic x{self.factor} on {scope} ({touched} edges)"]

    def _payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"factor": self.factor}
        if self.node is not None:
            payload["node"] = self.node
        if tuple(self.keys) != TRAFFIC_KEYS:
            payload["keys"] = list(self.keys)
        return payload


@dataclass
class SrlgFailureEvent(ScenarioEvent):
    """Fail every link of one shared-risk link group atomically.

    SRLGs model the physical reality behind correlated failures: links that
    share a conduit, a chassis, or a regional fiber bundle go down *together*
    when the shared resource fails.  Groups are declared on the graph at
    build time (``graph.graph_attributes["srlgs"]``); the event names one.

    Each removed link's attributes are remembered individually, so repair is
    *partial* by default: a plain :class:`LinkUpEvent` restores one member at
    a time with its original attributes — exactly how a cut conduit comes
    back span by span.
    """

    group: str = ""
    kind = "srlg_failure"

    def validate(self) -> None:
        super().validate()
        require(bool(self.group), "srlg_failure requires a non-empty 'group'")

    def validate_against(self, graph: PropertyGraph) -> None:
        srlgs = graph_srlgs(graph)
        require(self.group in srlgs,
                f"srlg_failure names unknown group {self.group!r}; groups "
                f"declared on this topology: {sorted(srlgs)}")
        missing = [(source, target) for source, target in srlgs[self.group]
                   if not graph.has_edge(source, target)]
        require(not missing,
                f"SRLG {self.group!r} references link(s) missing from the "
                f"topology: {sorted((str(s), str(t)) for s, t in missing)}")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        members = graph_srlgs(graph).get(self.group, [])
        cut = 0
        for source, target in members:
            if not graph.has_edge(source, target):
                continue
            state.removed_edges[(source, target)] = dict(
                graph.edge_attributes(source, target))
            graph.remove_edge(source, target)
            cut += 1
        return [f"srlg failure: {self.group} ({cut} of {len(members)} links cut)"]

    def _payload(self) -> Dict[str, Any]:
        return {"group": self.group}


@dataclass
class MaintenanceWindowEvent(ScenarioEvent):
    """A scheduled drain window: drain at ``at``, guaranteed restore at ``end``.

    The event is *declarative* — it stays one entry in the spec's JSON — and
    the engine's expansion pass turns it into primitive drain/restore pairs
    (:class:`NodeLeaveEvent`/:class:`NodeJoinEvent` for a node drain,
    :class:`LinkDownEvent`/:class:`LinkUpEvent` per drained link).  Because
    both halves come from the same declaration, a drain can never be left
    dangling by a forgotten restore event.
    """

    end: Optional[float] = None
    node: Any = None
    links: Optional[List[Dict[str, Any]]] = None
    kind = "maintenance_window"

    def validate(self) -> None:
        super().validate()
        require(self.end is not None,
                "maintenance_window requires an 'end' time")
        require(self.end > self.at,
                f"maintenance window must end after it starts "
                f"(start {self.at}, end {self.end})")
        require((self.node is not None) != bool(self.links),
                "maintenance_window drains either a 'node' or a list of "
                "'links' (exactly one of the two)")
        for link in self.links or []:
            require(isinstance(link, dict) and "source" in link and "target" in link,
                    "each maintenance_window link needs 'source' and 'target'")

    def targets(self) -> List[Tuple[str, Any]]:
        """The drained entities, as hashable keys for overlap detection."""
        if self.node is not None:
            return [("node", self.node)]
        return [("link", tuple(sorted((str(link["source"]), str(link["target"])))))
                for link in self.links or []]

    def validate_against(self, graph: PropertyGraph) -> None:
        if self.node is not None:
            require(graph.has_node(self.node),
                    f"maintenance_window drains node {self.node!r}, which is "
                    f"not in the topology")
            return
        missing = [(link["source"], link["target"]) for link in self.links or []
                   if not graph.has_edge(link["source"], link["target"])]
        require(not missing,
                f"maintenance_window drains link(s) missing from the "
                f"topology: {sorted((str(s), str(t)) for s, t in missing)}")

    def expand(self) -> List[ScenarioEvent]:
        """The primitive drain/restore pair(s) this window declares."""
        self.validate()
        if self.node is not None:
            return [NodeLeaveEvent(at=self.at, node=self.node),
                    NodeJoinEvent(at=self.end, node=self.node)]
        expanded: List[ScenarioEvent] = []
        for link in self.links or []:
            expanded.append(LinkDownEvent(at=self.at, source=link["source"],
                                          target=link["target"]))
            expanded.append(LinkUpEvent(at=self.end, source=link["source"],
                                        target=link["target"]))
        return expanded

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        raise RuntimeError(
            "maintenance_window is declarative: the engine expands it into "
            "drain/restore steps via expand_events(); it is never applied "
            "directly")

    def _payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"end": self.end}
        if self.node is not None:
            payload["node"] = self.node
        if self.links is not None:
            payload["links"] = [dict(link) for link in self.links]
        return payload


@dataclass
class GravityTrafficEvent(ScenarioEvent):
    """Re-shape traffic counters with a gravity model over node masses.

    Every participating edge ``(u, v)`` gets the share ``mass(u) * mass(v) /
    Σ mass(u') * mass(v')`` of the (factor-scaled) total traffic — the
    classic gravity traffic matrix, replacing the uniform scaling of
    :class:`TrafficSurgeEvent`.  Edges without counters are first seeded
    deterministically from their ``capacity_gbps``
    (:data:`GRAVITY_BASELINE_PER_GBPS`).

    With ``region`` set, only edges whose *both* endpoints carry that
    ``region_attribute`` value participate — the regional-hotspot variant:
    one metro's traffic grows and concentrates while the rest of the network
    is untouched.
    """

    factor: float = 1.0
    mass_attribute: str = "mass"
    region: Optional[str] = None
    region_attribute: str = "region"
    keys: Tuple[str, ...] = field(default_factory=lambda: TRAFFIC_KEYS)
    kind = "gravity_traffic"

    def validate(self) -> None:
        super().validate()
        require(self.factor > 0, f"gravity factor must be positive, got {self.factor}")
        require(len(self.keys) > 0, "gravity_traffic requires at least one counter key")

    def _weights(self, graph: PropertyGraph) -> Dict[Tuple[Any, Any], float]:
        """Gravity weight per participating edge (zero-mass edges drop out)."""
        weights: Dict[Tuple[Any, Any], float] = {}
        for source, target in graph.edges():
            if self.region is not None:
                if (graph.node_attributes(source).get(self.region_attribute)
                        != self.region):
                    continue
                if (graph.node_attributes(target).get(self.region_attribute)
                        != self.region):
                    continue
            mass_source = graph.node_attributes(source).get(self.mass_attribute, 0) or 0
            mass_target = graph.node_attributes(target).get(self.mass_attribute, 0) or 0
            weight = float(mass_source) * float(mass_target)
            if weight > 0:
                weights[(source, target)] = weight
        return weights

    def validate_against(self, graph: PropertyGraph) -> None:
        scope = (f"region {self.region!r}" if self.region is not None
                 else "the whole graph")
        require(bool(self._weights(graph)),
                f"gravity_traffic over {scope} has zero total mass: no edge "
                f"joins two nodes with a positive {self.mass_attribute!r} "
                f"attribute")

    def apply(self, graph: PropertyGraph, state: EngineState) -> List[str]:
        weights = self._weights(graph)
        scope = str(self.region) if self.region is not None else "all regions"
        if not weights:
            return [f"gravity traffic x{self.factor} on {scope} (no massive edges)"]
        total_weight = sum(weights.values())
        for key in self.keys:
            per_gbps = GRAVITY_BASELINE_PER_GBPS.get(key, 0)
            current: Dict[Tuple[Any, Any], Any] = {}
            for edge in weights:
                attrs = graph.edge_attributes(*edge)
                current[edge] = attrs.get(
                    key, int(attrs.get("capacity_gbps", 0) * per_gbps))
            total = sum(current.values()) * self.factor
            for edge, weight in weights.items():
                share = total * weight / total_weight
                graph.edge_attributes(*edge)[key] = (
                    int(round(share)) if isinstance(current[edge], int)
                    else round(share, 6))
        return [f"gravity traffic x{self.factor} on {scope} "
                f"({len(weights)} edges re-shaped)"]

    def _payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"factor": self.factor}
        if self.mass_attribute != "mass":
            payload["mass_attribute"] = self.mass_attribute
        if self.region is not None:
            payload["region"] = self.region
        if self.region_attribute != "region":
            payload["region_attribute"] = self.region_attribute
        if tuple(self.keys) != TRAFFIC_KEYS:
            payload["keys"] = list(self.keys)
        return payload


def expand_events(events: List[ScenarioEvent],
                  graph: Optional[PropertyGraph] = None) -> List[ScenarioEvent]:
    """Expand declarative events into primitives, preserving time order.

    Maintenance windows become their drain/restore pairs.  Two windows that
    drain the same entity over overlapping intervals are rejected: the second
    drain would no-op (the entity is already down) and its restore would then
    resurrect the entity mid-way through the first window — a silently
    corrupted timeline instead of the declared schedule.  For the same
    reason, an entity may not be controlled both by a window and by other
    failure events in one timeline — manual churn/link primitives, or an
    SRLG failure whose member links (resolved against *graph* when given)
    include a drained link: the window's guaranteed restore would override
    the state those events declared.
    """
    windows = [event for event in events
               if isinstance(event, MaintenanceWindowEvent)]
    for index, first in enumerate(windows):
        for second in windows[index + 1:]:
            shared = set(first.targets()) & set(second.targets())
            if not shared:
                continue
            require(first.end <= second.at or second.end <= first.at,
                    f"overlapping maintenance windows on "
                    f"{sorted(str(item) for item in shared)}: "
                    f"[{first.at}, {first.end}) overlaps [{second.at}, {second.end})")
    manual: set = set()
    for event in events:
        if isinstance(event, (NodeLeaveEvent, NodeJoinEvent)):
            manual.add(("node", event.node))
        elif isinstance(event, (LinkDownEvent, LinkUpEvent)):
            manual.add(("link", tuple(sorted((str(event.source),
                                              str(event.target))))))
        elif isinstance(event, SrlgFailureEvent) and graph is not None:
            for source, target in graph_srlgs(graph).get(event.group, []):
                manual.add(("link", tuple(sorted((str(source), str(target))))))
    for window in windows:
        contested = manual & set(window.targets())
        require(not contested,
                f"maintenance window [{window.at}, {window.end}) and other "
                f"failure events both target "
                f"{sorted(str(item) for item in contested)}; one entity "
                f"cannot be driven by both")
    expanded: List[ScenarioEvent] = []
    for event in events:
        if isinstance(event, MaintenanceWindowEvent):
            expanded.extend(event.expand())
        else:
            expanded.append(event)
    return sorted(expanded, key=lambda event: event.at)


#: serialization registry: kind tag -> event class
EVENT_TYPES: Dict[str, Type[ScenarioEvent]] = {
    cls.kind: cls
    for cls in (LinkDownEvent, LinkUpEvent, CapacityDegradationEvent,
                NodeLeaveEvent, NodeJoinEvent, TrafficSurgeEvent,
                SrlgFailureEvent, MaintenanceWindowEvent, GravityTrafficEvent)
}


def event_kinds() -> List[str]:
    """All known event kind tags, sorted."""
    return sorted(EVENT_TYPES)


def event_from_dict(payload: Dict[str, Any]) -> ScenarioEvent:
    """Rebuild an event from its dictionary form."""
    require(isinstance(payload, dict), "event payload must be a dictionary")
    require("kind" in payload, "event payload must contain 'kind'")
    require("at" in payload, "event payload must contain 'at'")
    kind = payload["kind"]
    require(kind in EVENT_TYPES,
            f"unknown event kind {kind!r}; known kinds: {event_kinds()}")
    event_cls = EVENT_TYPES[kind]
    fields = {key: value for key, value in payload.items() if key != "kind"}
    allowed = {f.name for f in dataclasses.fields(event_cls)}
    unknown = sorted(set(fields) - allowed)
    require(not unknown,
            f"unknown field(s) {unknown} for event kind {kind!r}; "
            f"known fields: {sorted(allowed)}")
    if "keys" in fields:
        fields["keys"] = tuple(fields["keys"])
    event = event_cls(**fields)
    event.validate()
    return event
