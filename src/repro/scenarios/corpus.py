"""The on-disk scenario corpus and its digest lockfile.

The ``scenarios/`` directory at the repository root holds one JSON
:class:`~repro.scenarios.spec.ScenarioSpec` per built-in scenario plus a
lockfile (``digests.lock.json``) recording, for every spec, the snapshot
digests its replay must produce.  The lockfile turns topology-generator and
event-engine regressions into content-hash mismatches: if any change alters
what a locked scenario replays into, the corpus test fails with the exact
digest that moved.

``repro scenarios lock`` (re)writes the corpus; ``repro scenarios lock
--check`` and the tier-1 test verify it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.scenarios.engine import replay_scenario
from repro.scenarios.spec import ScenarioSpec

LOCKFILE_NAME = "digests.lock.json"
LOCKFILE_FORMAT_VERSION = 1


def spec_filename(name: str) -> str:
    return f"{name}.json"


def replay_digests(spec: ScenarioSpec) -> List[str]:
    """The per-snapshot content digests a spec's replay produces."""
    return replay_scenario(spec).digests()


def _lock_entry(spec: ScenarioSpec) -> Dict[str, object]:
    timeline = replay_scenario(spec)
    final = timeline.final_graph
    return {
        "file": spec_filename(spec.name),
        "family": spec.family,
        "seed": spec.seed,
        "events": len(spec.events),
        "snapshot_digests": timeline.digests(),
        "final_nodes": final.node_count,
        "final_edges": final.edge_count,
    }


def write_corpus(directory, specs: Optional[Sequence[ScenarioSpec]] = None) -> Dict[str, object]:
    """Write one JSON file per spec plus the digest lockfile.

    Defaults to the built-in scenario registry.  Returns the lock payload.
    """
    from repro.scenarios.registry import builtin_scenarios

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    specs = list(specs if specs is not None else builtin_scenarios())

    lock: Dict[str, object] = {
        "format_version": LOCKFILE_FORMAT_VERSION,
        "scenarios": {},
    }
    for spec in sorted(specs, key=lambda item: item.name):
        spec.validate()
        spec.save(str(directory / spec_filename(spec.name)))
        lock["scenarios"][spec.name] = _lock_entry(spec)
    lock_path = directory / LOCKFILE_NAME
    lock_path.write_text(json.dumps(lock, indent=2, sort_keys=True) + "\n",
                         encoding="utf-8")
    return lock


def read_lockfile(directory) -> Dict[str, object]:
    path = Path(directory) / LOCKFILE_NAME
    return json.loads(path.read_text(encoding="utf-8"))


def corpus_spec_paths(directory) -> List[Path]:
    """Every spec file of the corpus (the lockfile itself excluded)."""
    directory = Path(directory)
    return sorted(path for path in directory.glob("*.json")
                  if path.name != LOCKFILE_NAME)


def verify_corpus(directory) -> List[str]:
    """Replay every corpus spec and compare against the lockfile.

    Returns a list of human-readable problems; an empty list means the
    corpus, the lockfile, and the replayed digests all agree.
    """
    directory = Path(directory)
    problems: List[str] = []
    try:
        lock = read_lockfile(directory)
    except (OSError, json.JSONDecodeError) as error:
        return [f"unreadable lockfile {LOCKFILE_NAME}: {error}"]
    locked = dict(lock.get("scenarios", {}))

    spec_paths = corpus_spec_paths(directory)
    seen = set()
    for path in spec_paths:
        try:
            spec = ScenarioSpec.load(str(path))
        except Exception as error:  # noqa: BLE001 - report, don't abort the scan
            problems.append(f"{path.name}: failed to load: {error}")
            continue
        seen.add(spec.name)
        entry = locked.get(spec.name)
        if entry is None:
            problems.append(f"{path.name}: scenario {spec.name!r} missing from lockfile")
            continue
        if entry.get("file") != path.name:
            problems.append(f"{path.name}: lockfile expects file {entry.get('file')!r}")
        digests = replay_digests(spec)
        if digests != entry.get("snapshot_digests"):
            problems.append(
                f"{path.name}: snapshot digests diverged from the lockfile "
                f"(locked {entry.get('snapshot_digests')}, replayed {digests})")
    for name in sorted(set(locked) - seen):
        problems.append(f"lockfile names scenario {name!r} but "
                        f"{spec_filename(name)} is not in the corpus")
    return problems
