"""Named scenario registry.

Ships a set of built-in scenarios — one per interesting failure story — and
lets callers register their own.  Lookups return deep copies so that a
caller mutating a spec (e.g. re-seeding it for a sweep) never corrupts the
registry.
"""

from __future__ import annotations

import copy
from typing import Dict, List

from repro.scenarios.events import (
    CapacityDegradationEvent,
    GravityTrafficEvent,
    LinkDownEvent,
    LinkUpEvent,
    MaintenanceWindowEvent,
    NodeJoinEvent,
    NodeLeaveEvent,
    SrlgFailureEvent,
    TrafficSurgeEvent,
)
from repro.scenarios.spec import ScenarioSpec
from repro.utils.validation import require


def _builtin_specs() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name="fat-tree-failover",
            family="fat-tree",
            params={"k": 4, "hosts_per_edge": 1},
            seed=7,
            description="A core uplink fails in a k=4 fat-tree, the fabric "
                        "runs degraded, then the link is repaired.",
            events=[
                LinkDownEvent(at=1.0, source="pod0-agg0", target="core-0"),
                CapacityDegradationEvent(at=2.0, factor=0.5, source="pod0-agg0"),
                LinkUpEvent(at=5.0, source="pod0-agg0", target="core-0"),
            ],
        ),
        ScenarioSpec(
            name="wan-fiber-cut",
            family="wan-backbone",
            params={"pop_count": 10, "extra_links": 4},
            seed=13,
            description="A backbone fiber cut isolates a span, a POP goes "
                        "dark for maintenance and later rejoins.",
            events=[
                LinkDownEvent(at=1.0, source="pop-0", target="pop-1"),
                NodeLeaveEvent(at=2.0, node="pop-3"),
                NodeJoinEvent(at=6.0, node="pop-3"),
                LinkUpEvent(at=8.0, source="pop-0", target="pop-1"),
            ],
        ),
        ScenarioSpec(
            name="manet-churn",
            family="geometric",
            params={"node_count": 20, "radius": 0.4},
            seed=21,
            description="Mobile nodes churn out of and back into radio "
                        "range while the shared medium degrades.",
            events=[
                NodeLeaveEvent(at=1.0, node="mn-0"),
                CapacityDegradationEvent(at=2.0, factor=0.6),
                NodeLeaveEvent(at=3.0, node="mn-5"),
                NodeJoinEvent(at=4.0, node="mn-0"),
                NodeJoinEvent(at=7.0, node="mn-5"),
            ],
        ),
        ScenarioSpec(
            name="traffic-flashcrowd",
            family="random-traffic",
            params={"node_count": 30, "edge_count": 60},
            seed=7,
            description="A flash crowd quadruples traffic counters, a "
                        "congested link fails, then load drains away.",
            events=[
                TrafficSurgeEvent(at=1.0, factor=4.0),
                LinkDownEvent(at=2.0, source="n0", target="n1"),
                TrafficSurgeEvent(at=4.0, factor=0.25),
            ],
        ),
        ScenarioSpec(
            name="ring-maintenance",
            family="ring",
            params={"node_count": 12},
            seed=5,
            description="A metro ring span is taken out for maintenance at "
                        "reduced capacity, then restored.",
            events=[
                CapacityDegradationEvent(at=1.0, factor=0.5,
                                         source="ring-0", target="ring-1"),
                LinkDownEvent(at=2.0, source="ring-0", target="ring-1"),
                LinkUpEvent(at=6.0, source="ring-0", target="ring-1"),
            ],
        ),
        ScenarioSpec(
            name="mesh-partition",
            family="mesh",
            params={"node_count": 8, "connectivity": 0.6},
            seed=17,
            description="A partial mesh loses a router and a chord, then "
                        "the router rejoins with its original links.",
            events=[
                NodeLeaveEvent(at=1.0, node="m0"),
                LinkDownEvent(at=2.0, source="m1", target="m2"),
                NodeJoinEvent(at=5.0, node="m0"),
                LinkUpEvent(at=6.0, source="m1", target="m2"),
            ],
        ),
        ScenarioSpec(
            name="star-hub-brownout",
            family="star",
            params={"leaf_count": 10},
            seed=3,
            description="The hub browns out (all spokes degrade), one leaf "
                        "drops off entirely, then capacity recovers.",
            events=[
                CapacityDegradationEvent(at=1.0, factor=0.25, source="hub"),
                LinkDownEvent(at=2.0, source="hub", target="leaf-3"),
                CapacityDegradationEvent(at=5.0, factor=4.0, source="hub"),
                LinkUpEvent(at=6.0, source="hub", target="leaf-3"),
            ],
        ),
        ScenarioSpec(
            name="wan-conduit-cut",
            family="wan-backbone",
            params={"pop_count": 12, "extra_links": 6},
            seed=13,
            description="A backhoe cuts the se-sw conduit: every span in the "
                        "shared-risk group fails at once, one span is "
                        "spliced early, the rest come back later.",
            events=[
                SrlgFailureEvent(at=1.0, group="conduit-se-sw"),
                LinkUpEvent(at=3.0, source="pop-5", target="pop-6"),
                LinkUpEvent(at=6.0, source="pop-4", target="pop-6"),
                LinkUpEvent(at=6.0, source="pop-6", target="pop-11"),
                LinkUpEvent(at=6.0, source="pop-10", target="pop-11"),
            ],
        ),
        ScenarioSpec(
            name="fattree-maintenance",
            family="fat-tree",
            params={"k": 4, "hosts_per_edge": 1},
            seed=7,
            description="Scheduled maintenance: one aggregation chassis and "
                        "one pod's core uplinks are drained in overlapping "
                        "windows while the surviving chassis saturates, and "
                        "every drain is restored on schedule.",
            events=[
                MaintenanceWindowEvent(at=1.0, end=5.0, node="pod1-agg1"),
                MaintenanceWindowEvent(at=2.0, end=6.0, links=[
                    {"source": "pod0-agg0", "target": "core-0"},
                    {"source": "pod0-agg0", "target": "core-1"},
                ]),
                CapacityDegradationEvent(at=3.0, factor=0.5, source="pod1-agg0"),
            ],
        ),
        ScenarioSpec(
            name="wan-gravity-hotspot",
            family="wan-backbone",
            params={"pop_count": 12, "extra_links": 6},
            seed=31,
            description="Gravity-model traffic lands on the backbone, the "
                        "nw metro flash-crowds into a regional hotspot, "
                        "then load cools off globally.",
            events=[
                GravityTrafficEvent(at=1.0, factor=1.0),
                GravityTrafficEvent(at=3.0, factor=2.5, region="nw"),
                TrafficSurgeEvent(at=5.0, factor=0.8),
            ],
        ),
        ScenarioSpec(
            name="malt-chassis-drain",
            family="malt",
            params={},
            seed=11,
            description="A MALT packet switch is drained from its chassis "
                        "and later re-racked.",
            events=[
                NodeLeaveEvent(at=1.0, node="ju1.a1.m1.s1c1"),
                NodeJoinEvent(at=4.0, node="ju1.a1.m1.s1c1"),
            ],
        ),
    ]


_REGISTRY: Dict[str, ScenarioSpec] = {spec.name: spec for spec in _builtin_specs()}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Register a scenario by name; refuses silent overwrites by default."""
    spec.validate()
    require(replace or spec.name not in _REGISTRY,
            f"scenario {spec.name!r} is already registered "
            f"(pass replace=True to overwrite)")
    _REGISTRY[spec.name] = copy.deepcopy(spec)
    return spec


def scenario_names() -> List[str]:
    """Names of all registered scenarios, sorted."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """Fetch a deep copy of a registered scenario."""
    require(name in _REGISTRY,
            f"unknown scenario {name!r}; known scenarios: {scenario_names()}")
    return copy.deepcopy(_REGISTRY[name])


def builtin_scenarios() -> List[ScenarioSpec]:
    """Deep copies of every registered scenario, in name order."""
    return [get_scenario(name) for name in scenario_names()]
