"""Command-line interface for the reproduction (``repro-nemo``)."""

from repro.cli.main import main, build_parser

__all__ = ["main", "build_parser"]
