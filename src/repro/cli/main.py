"""``repro-nemo`` — run queries, the benchmark, and the cost analysis.

Sub-commands:

* ``ask``       — answer one natural-language query against a synthetic
                  network and show the generated code and the result;
* ``benchmark`` — run the NeMoEval accuracy benchmark (Tables 2-5);
* ``cost``      — run the cost/scalability analysis (Figure 4);
* ``improve``   — run the pass@k / self-debug case study (Table 6);
* ``queries``   — list the benchmark query corpus (Table 1);
* ``scenarios`` — list/describe/generate structured topology families and
                  dynamic-event scenarios (``repro.scenarios``);
* ``serve``     — run the concurrent query-answering HTTP daemon
                  (``repro.serve``);
* ``loadtest``  — replay a Zipf-weighted query mix against a server and
                  report p50/p95/p99 latency and throughput;
* ``obs``       — analyze recorded telemetry: bottleneck/critical-path
                  reports from traces, run-ledger management, and
                  noise-banded regression diffs between runs.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.benchmark import BenchmarkConfig, BenchmarkRunner
from repro.benchmark.errors import ERROR_TYPE_LABELS
from repro.benchmark.queries import malt_queries, traffic_queries
from repro.cost import CostAnalyzer
from repro.exec import DEFAULT_CACHE_DIR, EXECUTOR_MODES, ExecutorPolicy, ResultCache
from repro.llm import available_models
from repro.llm.calibration import TEMPORAL_BACKENDS
from repro.obs import (
    DEFAULT_LEDGER_DIR,
    ResourceSampler,
    RunLedger,
    diff_metrics,
    disable_sampling,
    enable_sampling,
    enable_tracing,
    metrics_document,
    write_metrics,
    write_trace,
)
from repro.obs.analyze import (
    DEFAULT_ABS_FLOOR,
    DEFAULT_MIN_COUNT,
    DEFAULT_NOISE_BAND,
    render_latency_table,
    render_report,
    spans_from_trace,
)
from repro.techniques import ImprovementCaseStudy
from repro.utils.tables import format_table
from repro.utils.validation import ValidationError, require

logger = logging.getLogger(__name__)

LOG_LEVELS = ("debug", "info", "warning", "error")


def _configure_logging(level_name: str) -> None:
    """Route diagnostics through :mod:`logging` to stderr.

    Tables, JSON specs, and results stay on stdout; everything narrating the
    run (fabric telemetry, "wrote X to Y" notes, debug detail) goes through
    loggers so ``repro-nemo ... > out.txt`` captures only the data.
    """
    level = getattr(logging, level_name.upper(), None)
    if not isinstance(level, int):
        # an unknown $REPRO_LOG_LEVEL must not take the CLI down
        level = logging.INFO
    # force= rebinds the handler to the *current* sys.stderr, so repeated
    # main() calls (tests, embedding) follow stream redirection correctly
    logging.basicConfig(
        level=level, stream=sys.stderr, force=True,
        format="%(levelname)s %(name)s: %(message)s")


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared execution-fabric knobs of the sweep commands."""
    group = parser.add_argument_group("execution fabric")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="workers for the sweep (default 1 = serial; "
                            "results are byte-identical at any job count)")
    group.add_argument("--executor", choices=EXECUTOR_MODES, default="auto",
                       help="executor mode at --jobs > 1: 'auto' picks threads "
                            "for latency-bound task sets and processes for "
                            "CPU-bound ones (default auto)")
    group.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
                       help="content-keyed result cache directory "
                            f"(default {DEFAULT_CACHE_DIR})")
    group.add_argument("--no-cache", action="store_true",
                       help="recompute every cell, bypassing the result cache")
    group.add_argument("--cache-max-entries", type=int, default=None, metavar="N",
                       help="bound the result cache at N entries with "
                            "least-recently-used eviction (default: unbounded)")


def _cache_from_args(args: argparse.Namespace):
    """Resolve the --cache-dir/--no-cache/--cache-max-entries knobs."""
    require(not (args.no_cache and args.cache_max_entries is not None),
            "--no-cache and --cache-max-entries are mutually exclusive "
            "(there is no cache to bound)")
    if args.no_cache:
        return None
    if args.cache_max_entries is not None:
        require(args.cache_max_entries >= 1,
                f"--cache-max-entries must be at least 1, got {args.cache_max_entries}")
        return ResultCache(args.cache_dir, max_entries=args.cache_max_entries)
    return args.cache_dir


def _execution_policy(args: argparse.Namespace) -> ExecutorPolicy:
    require(args.jobs >= 1, f"--jobs must be at least 1, got {args.jobs}")
    return ExecutorPolicy(mode=args.executor, jobs=args.jobs,
                          cache=_cache_from_args(args))


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared tracing/metrics knobs of the sweep commands."""
    group = parser.add_argument_group("observability")
    group.add_argument("--trace", dest="trace_path", default=None, metavar="OUT.json",
                       help="write a Chrome trace-event file of the sweep "
                            "(load it at chrome://tracing or ui.perfetto.dev); "
                            "spans from every worker process are merged")
    group.add_argument("--metrics-out", dest="metrics_path", default=None,
                       metavar="OUT.json",
                       help="write the metrics snapshot (counters, gauges, "
                            "latency histograms with p50/p95/p99) as JSON")
    group.add_argument("--ledger", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="record this run (metrics snapshot + metadata) "
                            "as an append-only ledger entry; compare runs "
                            "later with 'obs diff' (default: on)")
    group.add_argument("--ledger-dir", default=DEFAULT_LEDGER_DIR, metavar="DIR",
                       help=f"run-ledger directory (default {DEFAULT_LEDGER_DIR})")
    group.add_argument("--sample", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="sample RSS/CPU into resource.* gauges during the "
                            "sweep — periodically here, once per task in "
                            "workers (default: on)")


def _start_observability(args: argparse.Namespace) -> Optional[ResourceSampler]:
    """Arm tracing/sampling for a sweep; returns the running sampler, if any."""
    if getattr(args, "trace_path", None):
        enable_tracing()
    if getattr(args, "sample", False):
        enable_sampling()
        return ResourceSampler().start()
    return None


def _ledger_meta(args: argparse.Namespace, wall_time_s: float,
                 exit_code: Optional[int]) -> dict:
    """The run metadata recorded next to a ledger entry's metrics snapshot."""
    meta = {
        "version": __version__,
        "host_cores": os.cpu_count(),
        "wall_time_s": round(wall_time_s, 6),
        "exit_code": exit_code,
    }
    for knob in ("jobs", "no_cache", "application", "models", "model",
                 "scenarios", "temporal", "temporal_backends", "sizes"):
        if getattr(args, knob, None) is not None:
            meta[knob] = getattr(args, knob)
    return meta


def _finish_observability(args: argparse.Namespace,
                          sampler: Optional[ResourceSampler] = None,
                          wall_time_s: float = 0.0,
                          exit_code: Optional[int] = None) -> None:
    """Export whatever the sweep recorded; runs even if the sweep failed.

    The writers log the destination themselves at INFO level.  A failed
    sweep still writes its ledger entry — the entry's ``exit_code`` says how
    the run ended, and a trace that stops at the failing span is exactly
    what you want to look at.
    """
    if sampler is not None:
        sampler.stop()
        disable_sampling()
    if getattr(args, "trace_path", None):
        write_trace(args.trace_path)
    if getattr(args, "metrics_path", None):
        write_metrics(args.metrics_path)
    if getattr(args, "ledger", False):
        RunLedger(args.ledger_dir).record(
            command=args.command,
            metrics=metrics_document(),
            meta=_ledger_meta(args, wall_time_s, exit_code),
            argv=list(getattr(args, "raw_argv", [])))


def _print_fabric(run_report) -> None:
    """One telemetry line for the sweep's most recent fabric dispatch."""
    if run_report is None:
        return
    logger.info("fabric: %d cells, jobs=%d, cache hits %d/%d, wall %.2fs",
                len(run_report.results), run_report.jobs, run_report.cache_hits,
                len(run_report.results), run_report.wall_time_s)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-nemo",
        description="Natural-language network management via LLM-generated code "
                    "(HotNets 2023 reproduction).")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--log-level", choices=LOG_LEVELS,
                        default=os.environ.get("REPRO_LOG_LEVEL", "info").lower(),
                        help="diagnostic verbosity on stderr (default: "
                             "$REPRO_LOG_LEVEL or info)")
    subparsers = parser.add_subparsers(dest="command")

    ask = subparsers.add_parser("ask", help="answer one natural-language query")
    ask.add_argument("query", help="the natural-language request")
    ask.add_argument("--application", choices=["traffic", "malt"], default="traffic")
    ask.add_argument("--backend", choices=["networkx", "pandas", "sql", "strawman"],
                     default="networkx")
    ask.add_argument("--model", choices=available_models(), default="gpt-4")
    ask.add_argument("--nodes", type=int, default=40)
    ask.add_argument("--edges", type=int, default=40)

    bench = subparsers.add_parser("benchmark", help="run the NeMoEval benchmark")
    bench.add_argument("--application", choices=["traffic", "malt", "all"], default="all")
    bench.add_argument("--models", nargs="*", default=None)
    bench.add_argument("--temporal", action="store_true",
                       help="run the temporal query corpus over replayed "
                            "scenario timelines instead of the static benchmark")
    bench.add_argument("--scenarios", nargs="*", default=None,
                       help="restrict --temporal to these scenario names")
    bench.add_argument("--backend", dest="temporal_backends", action="append",
                       choices=list(TEMPORAL_BACKENDS), default=None,
                       metavar="BACKEND",
                       help="answering backend for --temporal (repeatable): "
                            "'direct' answers straight from the timeline, "
                            "'frames'/'networkx' run timeline-aware codegen "
                            "through the sandbox; the direct path is always "
                            "included as the baseline column")
    bench.add_argument("--small-malt", action="store_true",
                       help="use a small MALT topology instead of the paper-scale one")
    bench.add_argument("--json", dest="json_path", default=None,
                       help="write the full result log to this JSON file")
    _add_execution_arguments(bench)
    _add_observability_arguments(bench)

    cost = subparsers.add_parser("cost", help="run the cost/scalability analysis")
    cost.add_argument("--model", choices=available_models(), default="gpt-4")
    cost.add_argument("--sizes", nargs="*", type=int,
                      default=[40, 80, 120, 160, 200, 300, 400])
    _add_execution_arguments(cost)
    _add_observability_arguments(cost)

    improve = subparsers.add_parser("improve", help="run the pass@k / self-debug case study")
    improve.add_argument("--model", choices=available_models(), default="bard")
    improve.add_argument("--backend", default="networkx")
    improve.add_argument("--application", choices=["traffic", "malt"], default="malt")
    improve.add_argument("--k", type=int, default=5)

    subparsers.add_parser("queries", help="list the benchmark query corpus")

    scenarios = subparsers.add_parser(
        "scenarios", help="structured topology families and dynamic scenarios")
    scenario_sub = scenarios.add_subparsers(dest="scenario_action")
    scenario_sub.add_parser("list", help="list topology families and scenarios")
    describe = scenario_sub.add_parser("describe", help="show one scenario spec")
    describe.add_argument("name", help="registered scenario name")
    generate = scenario_sub.add_parser(
        "generate", help="build a topology or replay a scenario")
    source = generate.add_mutually_exclusive_group(required=True)
    source.add_argument("--family", help="topology family name (e.g. fat-tree)")
    source.add_argument("--scenario", help="registered scenario name")
    source.add_argument("--spec", help="path to a scenario spec JSON file")
    generate.add_argument("--seed", type=int, default=None,
                          help="override the scenario/family seed (default 7)")
    generate.add_argument("--set", dest="params", action="append", default=[],
                          metavar="KEY=VALUE", help="override a family parameter")
    generate.add_argument("--replay", action="store_true",
                          help="replay the event timeline and show snapshots")
    generate.add_argument("--json", dest="json_path", default=None,
                          help="write the generated graph to this JSON file")
    lock = scenario_sub.add_parser(
        "lock", help="export the built-in scenario corpus and its digest lockfile")
    lock.add_argument("--dir", dest="corpus_dir", default="scenarios",
                      help="corpus directory (default ./scenarios)")
    lock.add_argument("--check", action="store_true",
                      help="verify the on-disk corpus against freshly replayed "
                           "digests instead of rewriting it")

    analyze = subparsers.add_parser(
        "analyze",
        help="run the invariant checker (determinism / obs-inertness / "
             "template safety) over the source tree")
    analyze.add_argument("paths", nargs="*", metavar="PATH",
                         help="files or package roots to check "
                              "(default: the installed repro package)")
    analyze.add_argument("--rules", default=None, metavar="ID[,ID...]",
                         help="comma-separated rule ids to run "
                              "(default: every registered rule)")
    analyze.add_argument("--format", dest="report_format",
                         choices=("human", "json"), default="human",
                         help="report format (json is what CI archives)")
    analyze.add_argument("--fix-suggestions", action="store_true",
                         help="include a fix hint under each finding "
                              "(human format; JSON always carries them)")
    analyze.add_argument("--list-rules", action="store_true",
                         help="list registered rules and exit")
    analyze.add_argument("--effects", action="store_true",
                         help="run only the interprocedural effect-contract "
                              "rules (call-graph effect inference)")
    analyze.add_argument("--explain", default=None, metavar="FUNCTION",
                         help="print the inferred effects of FUNCTION "
                              "(module:function, e.g. repro.benchmark.tasks:"
                              "run_benchmark_cell) with the call chain "
                              "carrying each effect, then exit")
    analyze.add_argument("--baseline", default=None, metavar="PATH",
                         help="ratchet mode: fail on warnings not recorded "
                              "in this baseline JSON, and on baseline "
                              "entries that no longer fire")
    analyze.add_argument("--write-baseline", default=None, metavar="PATH",
                         help="freeze the current warning findings into a "
                              "baseline JSON at PATH")

    serve = subparsers.add_parser(
        "serve", help="run the concurrent query-answering HTTP daemon")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port; 0 lets the OS pick (default 8642)")
    serve.add_argument("--model", choices=available_models(), default="gpt-4",
                       help="default model when a request names none")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="concurrent answer threads (default 4; clients "
                            "beyond this queue, they do not fail)")
    serve.add_argument("--executor", choices=EXECUTOR_MODES, default="auto",
                       help="fabric executor mode for batch requests "
                            "(default auto)")
    serve.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="fabric workers inside one batch request (default 2)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-keyed result cache directory "
                            "(default: no caching; answers are recomputed "
                            "but contexts stay warm across requests)")

    loadtest = subparsers.add_parser(
        "loadtest", help="replay a Zipf query mix against a server and "
                         "report latency percentiles and throughput")
    loadtest.add_argument("--host", default=None,
                          help="target server host (default: spawn an "
                               "in-process server for the run)")
    loadtest.add_argument("--port", type=int, default=8642,
                          help="target server port (with --host; default 8642)")
    loadtest.add_argument("--duration", type=float, default=10.0, metavar="S",
                          help="run length in seconds (default 10)")
    loadtest.add_argument("--qps", type=float, default=5.0,
                          help="target request rate, open-loop (default 5)")
    loadtest.add_argument("--zipf", type=float, default=1.1, metavar="S",
                          help="Zipf exponent of the query popularity "
                               "distribution (default 1.1)")
    loadtest.add_argument("--seed", type=int, default=7,
                          help="RNG seed of the request schedule (default 7)")
    loadtest.add_argument("--scenarios", nargs="*", default=None,
                          help="restrict the mix to these scenarios "
                               "(default: the whole temporal corpus)")
    loadtest.add_argument("--model", choices=available_models(), default="gpt-4")
    loadtest.add_argument("--backend", choices=list(TEMPORAL_BACKENDS),
                          default="direct",
                          help="temporal answering backend (default direct)")
    loadtest.add_argument("--json", dest="json_path", default=None,
                          metavar="OUT.json",
                          help="write the report (the regression-gate schema) "
                               "to this JSON file")

    obs = subparsers.add_parser(
        "obs", help="analyze recorded telemetry: reports, run ledger, diffs")
    obs_sub = obs.add_subparsers(dest="obs_action")
    report = obs_sub.add_parser(
        "report", help="bottleneck / critical-path / resource report")
    report.add_argument("--trace", dest="trace_in", default=None, metavar="TRACE.json",
                        help="exported Chrome trace to analyze (self-time "
                             "bottlenecks + critical path)")
    report.add_argument("--metrics", dest="metrics_in", default=None,
                        metavar="METRICS.json",
                        help="exported metrics snapshot (resource gauges + "
                             "span latency percentiles)")
    report.add_argument("--top", type=int, default=10,
                        help="rows in the bottleneck table (default 10)")
    diff = obs_sub.add_parser(
        "diff", help="regression verdict between two runs (nonzero exit on "
                     "regression)")
    diff.add_argument("base", nargs="?", default=None,
                      help="baseline: a ledger entry id/prefix, 'latest'/'prev', "
                           "or a metrics/ledger JSON path (default: prev)")
    diff.add_argument("current", nargs="?", default=None,
                      help="candidate run, same forms (default: latest)")
    diff.add_argument("--ledger-dir", default=DEFAULT_LEDGER_DIR, metavar="DIR",
                      help=f"ledger to resolve entry ids in "
                           f"(default {DEFAULT_LEDGER_DIR})")
    diff.add_argument("--band", type=float, default=DEFAULT_NOISE_BAND,
                      help="relative noise band: a quantile must exceed the "
                           "baseline by this fraction to regress "
                           f"(default {DEFAULT_NOISE_BAND:g} = "
                           f"{1 + DEFAULT_NOISE_BAND:g}x)")
    diff.add_argument("--abs-floor", type=float, default=DEFAULT_ABS_FLOOR,
                      help="absolute floor: quantile deltas below this never "
                           f"regress (default {DEFAULT_ABS_FLOOR:g})")
    diff.add_argument("--min-count", type=int, default=DEFAULT_MIN_COUNT,
                      help="minimum observations per side for a histogram "
                           f"verdict (default {DEFAULT_MIN_COUNT})")
    ledger = obs_sub.add_parser("ledger", help="list/show recorded runs")
    ledger_sub = ledger.add_subparsers(dest="ledger_action")
    ledger_list = ledger_sub.add_parser("list", help="list recorded runs")
    ledger_list.add_argument("--dir", dest="ledger_dir",
                             default=DEFAULT_LEDGER_DIR, metavar="DIR")
    ledger_show = ledger_sub.add_parser("show", help="print one run record")
    ledger_show.add_argument("entry", help="entry id, unique prefix, "
                                           "'latest', or 'prev'")
    ledger_show.add_argument("--dir", dest="ledger_dir",
                             default=DEFAULT_LEDGER_DIR, metavar="DIR")
    return parser


# ---------------------------------------------------------------------------
# sub-command handlers
# ---------------------------------------------------------------------------
def _cmd_ask(args: argparse.Namespace) -> int:
    from repro.api import ask

    result = ask(args.query, application=args.application, backend=args.backend,
                 model=args.model, nodes=args.nodes, edges=args.edges)
    print(f"# model: {args.model}   backend: {args.backend}")
    if result.code:
        print("# generated code:")
        print(result.code)
    if result.succeeded:
        print("# result:")
        print(result.result_value)
    else:
        print(f"# failed at stage {result.error_stage}: {result.error_message}")
    print(f"# cost: ${result.cost_usd:.4f}")
    return 0 if result.succeeded else 1


def _cmd_benchmark(args: argparse.Namespace) -> int:
    if args.temporal:
        return _cmd_benchmark_temporal(args)
    require(not args.temporal_backends,
            "--backend selects the temporal answering path; pass --temporal")
    config = BenchmarkConfig()
    if args.small_malt:
        from repro.malt import MaltTopologyConfig

        config.malt_config = MaltTopologyConfig(
            datacenters=1, pods_per_datacenter=2, racks_per_pod=2, chassis_per_rack=2,
            switches_per_chassis=4, ports_per_switch=3, control_points=4, port_links=6)
    runner = BenchmarkRunner(config, policy=_execution_policy(args))
    applications = {"traffic": ["traffic_analysis"], "malt": ["malt"],
                    "all": ["traffic_analysis", "malt"]}[args.application]
    for application in applications:
        report = runner.run_application(application, models=args.models)
        _print_fabric(runner.last_run_report)
        print(report.render_summary())
        print()
        print(report.render_breakdown())
        print()
        error_counts = report.error_type_counts(backend="networkx")
        rows = [[ERROR_TYPE_LABELS.get(key, key), count]
                for key, count in sorted(error_counts.items())]
        print(format_table(["error type (NetworkX failures)", "count"], rows))
        print()
        if args.json_path:
            report.logger.save(args.json_path)
            logger.info("wrote result log to %s", args.json_path)
    return 0


def _cmd_benchmark_temporal(args: argparse.Namespace) -> int:
    """``repro benchmark --temporal`` — timelines, goldens, accuracy tables."""
    # the direct path always runs as the baseline column so a codegen sweep
    # reports its accuracy *alongside* the strawman-like behaviour; repeated
    # --backend flags dedupe (order-preserving)
    requested = dict.fromkeys(args.temporal_backends or [])
    backends = ["direct"] + [b for b in requested if b != "direct"]
    runner = BenchmarkRunner(BenchmarkConfig(), policy=_execution_policy(args))
    report = runner.run_temporal_suite(scenarios=args.scenarios,
                                       models=args.models, backends=backends)
    _print_fabric(runner.last_run_report)
    print(report.render_summary())
    if len(backends) > 1:
        print()
        print(report.render_backend_summary())
    print()
    print(report.render_snapshot_tables())
    if args.json_path:
        report.logger.save(args.json_path)
        logger.info("wrote result log to %s", args.json_path)
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    analyzer = CostAnalyzer(model=args.model, policy=_execution_policy(args))
    cdfs = analyzer.cost_cdf()
    rows = []
    for backend, cdf in cdfs.items():
        rows.append([backend, cdf.mean, cdf.max])
    print(format_table(["approach", "mean cost ($)", "max cost ($)"], rows,
                       title="Per-query cost at 80 nodes+edges", float_format="{:.4f}"))
    print()
    sweep = analyzer.scalability_sweep(graph_sizes=args.sizes)
    _print_fabric(analyzer.last_run_report)
    rows = []
    for point in sweep.points:
        strawman = ("exceeds token limit" if point.strawman_cost_usd is None
                    else f"{point.strawman_cost_usd:.4f}")
        rows.append([point.graph_size, f"{point.codegen_cost_usd:.4f}", strawman])
    print(format_table(["graph size (nodes+edges)", "code-gen cost ($)", "strawman cost ($)"],
                       rows, title="Cost vs graph size"))
    limit = sweep.strawman_limit_size()
    if limit is not None:
        print(f"\nThe strawman exceeds the {args.model} token window at size {limit}.")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — run the daemon until interrupted."""
    import asyncio

    from repro.serve import ReproService, ServiceConfig

    require(args.workers >= 1, f"--workers must be at least 1, got {args.workers}")
    require(args.jobs >= 1, f"--jobs must be at least 1, got {args.jobs}")
    service = ReproService(ServiceConfig(
        host=args.host, port=args.port, model=args.model, workers=args.workers,
        executor=args.executor, jobs=args.jobs, cache=args.cache_dir))

    async def _run() -> None:
        await service.start()
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        logger.info("interrupted; server stopped")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """``repro loadtest`` — drive a server, print the report, gate on failures."""
    from repro.serve import ServiceConfig
    from repro.serve.loadtest import LoadTestConfig, run_loadtest

    config = LoadTestConfig(
        host=args.host, port=args.port, duration_s=args.duration, qps=args.qps,
        zipf_exponent=args.zipf, seed=args.seed, scenarios=args.scenarios,
        model=args.model, backend=args.backend,
        service=ServiceConfig(port=0, model=args.model))
    report = run_loadtest(config)
    print(report.render())
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report.to_document(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        logger.info("wrote load-test report to %s", args.json_path)
    return 0 if report.failed == 0 else 1


def _cmd_improve(args: argparse.Namespace) -> int:
    from repro.malt import MaltTopologyConfig

    config = BenchmarkConfig(malt_config=MaltTopologyConfig(
        datacenters=1, pods_per_datacenter=2, racks_per_pod=2, chassis_per_rack=2,
        switches_per_chassis=4, ports_per_switch=3, control_points=4, port_links=6))
    study = ImprovementCaseStudy(config, k=args.k)
    application = "malt" if args.application == "malt" else "traffic_analysis"
    overall = study.overall_accuracy_with_techniques(application, args.model, args.backend)
    rows = [[key, value] for key, value in overall.items()]
    print(format_table(["technique", "accuracy"], rows,
                       title=f"{args.model} + {args.backend} on {application}"))
    return 0


def _cmd_queries(_: argparse.Namespace) -> int:
    from repro.benchmark.queries import temporal_queries

    rows = []
    for query in traffic_queries() + malt_queries():
        rows.append([query.query_id, query.application, query.complexity, query.text])
    for temporal in temporal_queries():
        rows.append([temporal.query_id, f"scenario:{temporal.scenario}",
                     temporal.complexity, temporal.text])
    print(format_table(["id", "application", "complexity", "query"], rows,
                       title="NeMoEval query corpus"))
    return 0


def _parse_param_overrides(pairs: List[str]) -> dict:
    """Parse ``--set key=value`` overrides, coercing values via JSON."""
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects KEY=VALUE, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _print_describe_extras(spec) -> None:
    """Correlated-dynamics context for ``scenarios describe``: the SRLG
    membership declared on the built topology, and the drain/restore schedule
    of every maintenance window in the timeline.

    Rendered to stderr so stdout stays pure spec JSON — ``repro scenarios
    describe name > spec.json`` must keep producing a loadable spec file.
    """
    from repro.scenarios import MaintenanceWindowEvent, graph_srlgs

    srlgs = graph_srlgs(spec.build_topology())
    if srlgs:
        rows = [[name, len(members),
                 ", ".join(f"{source}~{target}" for source, target in members)]
                for name, members in sorted(srlgs.items())]
        print(file=sys.stderr)
        print(format_table(["srlg", "links", "members"], rows,
                           title=f"Shared-risk link groups — {spec.name}"),
              file=sys.stderr)
    windows = [event for event in spec.sorted_events()
               if isinstance(event, MaintenanceWindowEvent)]
    if windows:
        rows = []
        for window in windows:
            if window.node is not None:
                target = f"node {window.node}"
            else:
                target = ", ".join(f"{link['source']}~{link['target']}"
                                   for link in window.links)
            rows.append([window.at, window.end, round(window.end - window.at, 6),
                         target])
        print(file=sys.stderr)
        print(format_table(["drain at", "restore at", "duration", "drained"], rows,
                           title=f"Maintenance windows — {spec.name}"),
              file=sys.stderr)


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import (ScenarioSpec, family_names, get_family,
                                 get_scenario, replay_scenario, scenario_names)
    from repro.graph.serialization import graph_to_json

    if args.scenario_action == "list":
        rows = [[name, get_family(name).description] for name in family_names()]
        print(format_table(["family", "description"], rows, title="Topology families"))
        print()
        rows = [[spec.name, spec.family, len(spec.events), spec.description]
                for spec in (get_scenario(name) for name in scenario_names())]
        print(format_table(["scenario", "family", "events", "description"], rows,
                           title="Registered scenarios"))
        return 0

    if args.scenario_action == "describe":
        spec = get_scenario(args.name)
        print(spec.to_json())
        _print_describe_extras(spec)
        return 0

    if args.scenario_action == "lock":
        from repro.scenarios.corpus import verify_corpus, write_corpus

        if args.check:
            problems = verify_corpus(args.corpus_dir)
            for problem in problems:
                print(f"MISMATCH {problem}", file=sys.stderr)
            if not problems:
                print(f"corpus at {args.corpus_dir} matches its lockfile")
            return 1 if problems else 0
        lock = write_corpus(args.corpus_dir)
        print(f"wrote {len(lock['scenarios'])} scenario specs and "
              f"digests.lock.json to {args.corpus_dir}")
        return 0

    if args.scenario_action == "generate":
        overrides = _parse_param_overrides(args.params)
        if args.family:
            spec = ScenarioSpec(name=f"cli-{args.family}", family=args.family)
        elif args.scenario:
            spec = get_scenario(args.scenario)
        else:
            spec = ScenarioSpec.load(args.spec)
        spec.params.update(overrides)
        if args.seed is not None:
            spec.seed = args.seed
        if args.replay and spec.events:
            timeline = replay_scenario(spec)
            print(timeline.summary())
            graph = timeline.final_graph
        else:
            graph = spec.build_topology()
            print(f"# scenario: {spec.name}   family: {spec.family}   seed: {spec.seed}")
            print(f"# nodes: {graph.node_count}   edges: {graph.edge_count}")
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(graph_to_json(graph, indent=2) + "\n")
            logger.info("wrote graph to %s", args.json_path)
        return 0

    print("usage: repro-nemo scenarios {list,describe,generate,lock} ...")
    return 2


# ---------------------------------------------------------------------------
# obs: telemetry analysis
# ---------------------------------------------------------------------------
def _load_metrics_source(token: str, ledger_dir: str):
    """Resolve one ``obs diff`` operand to ``(label, metrics document)``.

    A token naming an existing JSON file loads directly (both raw metrics
    snapshots and whole ledger entry files work); anything else resolves
    through the ledger (entry id, unique prefix, ``latest``, ``prev``).
    """
    path = Path(token)
    if path.suffix == ".json" and path.is_file():
        document = json.loads(path.read_text(encoding="utf-8"))
        if "metrics" in document and "counters" not in document:
            return str(path), document["metrics"]     # a ledger entry file
        return str(path), document
    entry = RunLedger(ledger_dir).find(token)
    return f"{entry['id']} ({entry['command']})", entry["metrics"]


def _cmd_obs_report(args: argparse.Namespace) -> int:
    require(args.trace_in or args.metrics_in,
            "nothing to report on: pass --trace and/or --metrics")
    require(args.top >= 1, f"--top must be at least 1, got {args.top}")
    metrics = None
    if args.metrics_in:
        metrics = json.loads(Path(args.metrics_in).read_text(encoding="utf-8"))
    if args.trace_in:
        document = json.loads(Path(args.trace_in).read_text(encoding="utf-8"))
        print(render_report(spans_from_trace(document), metrics, top=args.top))
    else:
        print(render_latency_table(metrics, top=args.top))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    base_label, base_doc = _load_metrics_source(
        args.base or "prev", args.ledger_dir)
    current_label, current_doc = _load_metrics_source(
        args.current or "latest", args.ledger_dir)
    require(args.band > 0, f"--band must be positive, got {args.band}")
    require(args.abs_floor >= 0,
            f"--abs-floor cannot be negative, got {args.abs_floor}")
    diff = diff_metrics(base_doc, current_doc, band=args.band,
                        abs_floor=args.abs_floor, min_count=args.min_count)
    print(f"base:    {base_label}")
    print(f"current: {current_label}")
    print()
    print(diff.render())
    return 0 if diff.ok else 1


def _cmd_obs_ledger(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.ledger_dir)
    if args.ledger_action == "list":
        rows = []
        for entry in ledger.entries():
            meta = entry.get("meta", {})
            rows.append([
                entry["id"],
                time.strftime("%Y-%m-%d %H:%M:%S",
                              time.localtime(entry.get("recorded_at", 0))),
                entry.get("command", "?"),
                meta.get("jobs", "-"),
                meta.get("wall_time_s", "-"),
                meta.get("exit_code", "-"),
            ])
        print(format_table(
            ["id", "recorded", "command", "jobs", "wall (s)", "exit"], rows,
            title=f"Run ledger — {ledger.directory} ({len(rows)} entries)"))
        return 0
    if args.ledger_action == "show":
        print(json.dumps(ledger.find(args.entry), indent=2, sort_keys=True))
        return 0
    print("usage: repro-nemo obs ledger {list,show} ...")
    return 2


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Run the invariant checker; exit 1 on any error-severity finding."""
    from repro import analysis

    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    if args.effects:
        if rule_ids is not None:
            raise ValidationError("--effects already selects the effect "
                                  "rules; drop --rules or --effects")
        rule_ids = analysis.effect_rule_ids()
    rules = analysis.get_rules(rule_ids)

    if args.list_rules:
        for checker_rule in rules:
            print(f"{checker_rule.id:28s} [{checker_rule.severity}] "
                  f"{checker_rule.description}")
        return 0

    if args.paths:
        roots = [Path(path) for path in args.paths]
    else:
        import repro
        roots = [Path(repro.__file__).parent]
    for root in roots:
        if not root.exists():
            raise ValidationError(f"no such file or directory: {root}")

    if args.explain:
        blocks = [analysis.render_explain(analysis.project_for_root(root),
                                          args.explain)
                  for root in roots]
        print("\n\n".join(blocks))
        return 0

    findings = []
    for root in roots:
        findings.extend(analysis.analyze_tree(root, rules=rules))
    findings.sort(key=lambda finding: finding.sort_key())

    if args.report_format == "json":
        print(analysis.render_json(findings, rules))
    else:
        print(analysis.render_human(findings, rules,
                                    show_suggestions=args.fix_suggestions))

    if args.write_baseline:
        entries = analysis.write_baseline(Path(args.write_baseline), findings)
        print(f"baseline: froze {sum(entries.values())} warning(s) across "
              f"{len(entries)} rule/path pair(s) into {args.write_baseline}",
              file=sys.stderr)

    exit_code = 1 if analysis.has_errors(findings) else 0
    if args.baseline:
        recorded = analysis.load_baseline(Path(args.baseline))
        new, stale = analysis.compare_baseline(findings, recorded)
        for line in new:
            print(f"baseline: NEW {line}", file=sys.stderr)
        for line in stale:
            print(f"baseline: STALE {line}", file=sys.stderr)
        if new or stale:
            exit_code = 1
        else:
            print(f"baseline: ok ({sum(recorded.values())} recorded "
                  f"warning(s) unchanged)", file=sys.stderr)
    return exit_code


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_action == "report":
        return _cmd_obs_report(args)
    if args.obs_action == "diff":
        return _cmd_obs_diff(args)
    if args.obs_action == "ledger":
        return _cmd_obs_ledger(args)
    print("usage: repro-nemo obs {report,diff,ledger} ...")
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    args.raw_argv = list(argv) if argv is not None else list(sys.argv[1:])
    handlers = {
        "analyze": _cmd_analyze,
        "ask": _cmd_ask,
        "benchmark": _cmd_benchmark,
        "cost": _cmd_cost,
        "improve": _cmd_improve,
        "loadtest": _cmd_loadtest,
        "obs": _cmd_obs,
        "queries": _cmd_queries,
        "scenarios": _cmd_scenarios,
        "serve": _cmd_serve,
    }
    if args.command is None:
        parser.print_help()
        return 2
    _configure_logging(args.log_level)
    started = time.perf_counter()
    sampler = _start_observability(args)
    exit_code: Optional[int] = None
    try:
        exit_code = handlers[args.command](args)
        return exit_code
    except (ValidationError, FileNotFoundError, json.JSONDecodeError) as error:
        # user-facing failure verdict, not a diagnostic — always printed,
        # independent of the configured log level
        print(f"error: {error}", file=sys.stderr)
        exit_code = 1
        return 1
    finally:
        # a failed sweep still exports what it recorded — a trace that ends
        # at the failing span is exactly what you want to look at
        _finish_observability(args, sampler,
                              wall_time_s=time.perf_counter() - started,
                              exit_code=exit_code)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
