"""Per-query cost accounting and the graph-size scalability sweep."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.benchmark.queries import BenchmarkQuery, traffic_queries
from repro.core.prompts import build_prompt
from repro.cost.tasks import scalability_task, scenario_cost_task
from repro.exec import ExecutionOptions, ExecutorPolicy, RunReport, TaskSet, run_tasks
from repro.llm.catalog import create_provider
from repro.llm.pricing import DEFAULT_PRICING, PricingTable
from repro.llm.tokenizer import count_tokens
from repro.traffic import CommunicationGraphConfig, TrafficAnalysisApplication
from repro.utils.tables import format_cdf
from repro.utils.validation import require, require_positive


#: assumed completion size (tokens) for a code answer; generated programs in
#: this repository are well under this and the figure is insensitive to it
DEFAULT_COMPLETION_TOKENS = 250


@dataclass
class QueryCost:
    """Token and dollar cost of answering one query one way."""

    query_id: str
    backend: str
    model: str
    prompt_tokens: int
    completion_tokens: int
    cost_usd: float
    within_token_limit: bool = True


@dataclass
class CostCdf:
    """Empirical CDF of per-query cost for one approach."""

    backend: str
    costs: List[float] = field(default_factory=list)

    def points(self, num_points: int = 20) -> List[tuple]:
        return format_cdf(self.costs, num_points)

    @property
    def mean(self) -> float:
        return sum(self.costs) / len(self.costs) if self.costs else 0.0

    @property
    def max(self) -> float:
        return max(self.costs) if self.costs else 0.0


@dataclass
class ScenarioCostPoint:
    """Per-query cost of one scenario's replayed network state."""

    scenario: str
    family: str
    graph_size: int                     # nodes + edges of the final state
    codegen_cost_usd: float
    strawman_cost_usd: Optional[float]  # None once the prompt exceeds the window
    strawman_within_limit: bool


@dataclass
class ScalabilityPoint:
    """Cost at one graph size (Figure 4b has one of these per x-value)."""

    graph_size: int                     # nodes + edges
    codegen_cost_usd: float
    strawman_cost_usd: Optional[float]  # None once the prompt exceeds the window
    strawman_within_limit: bool


@dataclass
class ScalabilitySweep:
    """The full Figure-4b series."""

    model: str
    points: List[ScalabilityPoint] = field(default_factory=list)

    def strawman_limit_size(self) -> Optional[int]:
        """The smallest graph size at which the strawman exceeds the window."""
        for point in self.points:
            if not point.strawman_within_limit:
                return point.graph_size
        return None


class CostAnalyzer:
    """Compute Figure 4a (cost CDF) and Figure 4b (cost vs graph size).

    The sweep methods (``scalability_sweep``, ``scenario_cost_sweep``)
    dispatch their per-size / per-scenario cells through the
    :mod:`repro.exec` fabric, so they parallelize and cache under the same
    determinism contract as the benchmark runner: identical figures whether
    run serially, on a process pool, or from cache.
    """

    def __init__(self, model: str = "gpt-4", pricing: Optional[PricingTable] = None,
                 completion_tokens: int = DEFAULT_COMPLETION_TOKENS,
                 execution: Optional[ExecutionOptions] = None,
                 policy: Optional[ExecutorPolicy] = None) -> None:
        require_positive(completion_tokens, "completion_tokens")
        self.model = model
        self.pricing = pricing or DEFAULT_PRICING
        self.completion_tokens = completion_tokens
        if execution is not None:
            require(policy is None,
                    "pass either policy= or the deprecated execution=, not both")
            warnings.warn(
                "CostAnalyzer(execution=ExecutionOptions(...)) is deprecated; "
                "pass policy=ExecutorPolicy(...) instead",
                DeprecationWarning, stacklevel=2)
            policy = execution.to_policy()
        self.policy = policy or ExecutorPolicy.serial()
        #: telemetry of the most recent fabric dispatch (None before any sweep)
        self.last_run_report: Optional[RunReport] = None
        self._provider = create_provider(model)

    # ------------------------------------------------------------------
    def _dispatch(self, task_set: TaskSet) -> List:
        run_report = run_tasks(task_set, policy=self.policy)
        self.last_run_report = run_report
        return run_report.values()  # raises TaskExecutionError on any failure

    # ------------------------------------------------------------------
    def query_cost(self, application: TrafficAnalysisApplication,
                   query: BenchmarkQuery, backend: str) -> QueryCost:
        """Cost of answering one query against one backend."""
        prompt = build_prompt(application, query.text, backend)
        prompt_tokens = count_tokens(prompt.text)
        within_limit = prompt_tokens <= self._provider.context_window
        cost = self.pricing.cost(self.model, prompt_tokens, self.completion_tokens)
        return QueryCost(
            query_id=query.query_id,
            backend=backend,
            model=self.model,
            prompt_tokens=prompt_tokens,
            completion_tokens=self.completion_tokens,
            cost_usd=cost,
            within_token_limit=within_limit,
        )

    # ------------------------------------------------------------------
    def cost_cdf(self, node_count: int = 40, edge_count: int = 40,
                 backends: Sequence[str] = ("networkx", "strawman"),
                 queries: Optional[Sequence[BenchmarkQuery]] = None,
                 seed: int = 7) -> Dict[str, CostCdf]:
        """Figure 4a: per-query cost distribution at a fixed graph size."""
        application = TrafficAnalysisApplication(config=CommunicationGraphConfig(
            node_count=node_count, edge_count=edge_count, seed=seed))
        queries = list(queries or traffic_queries())
        cdfs: Dict[str, CostCdf] = {}
        for backend in backends:
            cdf = CostCdf(backend=backend)
            for query in queries:
                cdf.costs.append(self.query_cost(application, query, backend).cost_usd)
            cdfs[backend] = cdf
        return cdfs

    # ------------------------------------------------------------------
    def scalability_sweep(self, graph_sizes: Sequence[int] = (40, 80, 120, 160, 200, 300, 400),
                          query: Optional[BenchmarkQuery] = None,
                          seed: int = 7) -> ScalabilitySweep:
        """Figure 4b: code-gen vs strawman cost as the graph grows.

        ``graph_sizes`` are total sizes (nodes + edges); each size is split
        evenly between nodes and edges, matching the paper's x-axis.
        """
        query = query or traffic_queries()[12]  # the color-by-prefix example query
        task_set = TaskSet(name=f"cost/scalability/{self.model}")
        for size in graph_sizes:
            task_set.add(scalability_task(self, size, seed, query.query_id))
        return ScalabilitySweep(model=self.model, points=self._dispatch(task_set))

    # ------------------------------------------------------------------
    def scenario_cost_sweep(self, scenarios: Optional[Sequence] = None,
                            query: Optional[BenchmarkQuery] = None,
                            ) -> List[ScenarioCostPoint]:
        """Cost scaling across topology families (the Figure-4b axis widened).

        Each scenario (a :class:`repro.scenarios.ScenarioSpec` or registered
        name) is replayed, its final state is annotated with the traffic
        schema, and the code-gen versus strawman cost of a representative
        query is computed — showing how the strawman penalty varies across
        structurally different families, not just graph sizes.
        """
        from repro.benchmark.queries import malt_queries
        from repro.scenarios.overlay import resolve_spec
        from repro.scenarios.suite import default_suite

        if scenarios is None:
            scenarios = default_suite().scenarios
        traffic_query = query or traffic_queries()[12]  # the color-by-prefix query
        malt_query = query or malt_queries()[0]
        task_set = TaskSet(name=f"cost/scenarios/{self.model}")
        for spec in scenarios:
            spec = resolve_spec(spec)
            representative = malt_query if spec.family == "malt" else traffic_query
            task_set.add(scenario_cost_task(self, spec, representative.query_id))
        return self._dispatch(task_set)

    # ------------------------------------------------------------------
    def average_cost_per_task(self, node_count: int = 40, edge_count: int = 40,
                              backend: str = "networkx") -> float:
        """The headline "average expense per task" number quoted in the paper."""
        cdf = self.cost_cdf(node_count=node_count, edge_count=edge_count,
                            backends=(backend,))
        return cdf[backend].mean
