"""Cost-sweep cells as execution-fabric tasks.

Each task reconstructs a :class:`~repro.cost.analysis.CostAnalyzer` from its
payload (model, pricing table, completion-token assumption) and prices one
cell: a replayed scenario (``run_scenario_cost_point``) or one graph size of
the Figure-4b axis (``run_scalability_point``).  Token counting and pricing
are pure functions, so the cells inherit the fabric's determinism and
cacheability for free.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.exec.task import Task
from repro.exec.workers import worker_context
from repro.utils.hashing import stable_hash

SCENARIO_COST_WORKER = "repro.cost.tasks:run_scenario_cost_point"
SCALABILITY_WORKER = "repro.cost.tasks:run_scalability_point"


def _analyzer_payload(analyzer) -> Dict[str, Any]:
    """The JSON-friendly identity of a :class:`CostAnalyzer`."""
    return {
        "model": analyzer.model,
        "pricing": analyzer.pricing.to_dict(),
        "completion_tokens": analyzer.completion_tokens,
    }


def scenario_cost_task(analyzer, spec, query_id: str) -> Task:
    """One scenario's cost point as a fabric task."""
    return Task(
        key=f"cost/scenario/{spec.name}/{analyzer.model}/{query_id}",
        fn=SCENARIO_COST_WORKER,
        payload={"analyzer": _analyzer_payload(analyzer), "spec": spec.to_dict(),
                 "query_id": query_id},
        group=f"cost/scenario/{spec.name}",
    )


def scalability_task(analyzer, size: int, seed: int, query_id: str) -> Task:
    """One graph size of the scalability sweep as a fabric task."""
    return Task(
        key=f"cost/scalability/{size}/{analyzer.model}/{query_id}",
        fn=SCALABILITY_WORKER,
        payload={"analyzer": _analyzer_payload(analyzer), "size": size,
                 "seed": seed, "query_id": query_id},
        # every size is its own application build; no shared context to chunk by
        group=f"cost/scalability/{size}",
    )


def _rebuild_analyzer(payload: Dict[str, Any]):
    from repro.cost.analysis import CostAnalyzer
    from repro.llm.pricing import PricingTable

    return CostAnalyzer(model=payload["model"],
                        pricing=PricingTable.from_dict(payload["pricing"]),
                        completion_tokens=payload["completion_tokens"])


def run_scenario_cost_point(payload: Dict[str, Any]):
    """Worker: price one replayed scenario; returns a ScenarioCostPoint."""
    from repro.benchmark.queries import query_by_id
    from repro.cost.analysis import ScenarioCostPoint
    from repro.scenarios.overlay import application_from_scenario
    from repro.scenarios.spec import ScenarioSpec

    analyzer = _rebuild_analyzer(payload["analyzer"])
    spec = ScenarioSpec.from_dict(payload["spec"])
    application = worker_context(
        ("scenario-application", stable_hash(payload["spec"])),
        lambda: application_from_scenario(spec))
    query = query_by_id(payload["query_id"])
    codegen = analyzer.query_cost(application, query, "networkx")
    strawman = analyzer.query_cost(application, query, "strawman")
    return ScenarioCostPoint(
        scenario=spec.name,
        family=spec.family,
        graph_size=application.graph.node_count + application.graph.edge_count,
        codegen_cost_usd=codegen.cost_usd,
        strawman_cost_usd=strawman.cost_usd if strawman.within_token_limit else None,
        strawman_within_limit=strawman.within_token_limit,
    )


def run_scalability_point(payload: Dict[str, Any]):
    """Worker: price one graph size; returns a ScalabilityPoint."""
    from repro.benchmark.queries import query_by_id
    from repro.cost.analysis import ScalabilityPoint
    from repro.traffic import CommunicationGraphConfig, TrafficAnalysisApplication

    analyzer = _rebuild_analyzer(payload["analyzer"])
    size = payload["size"]
    node_count = max(2, size // 2)
    edge_count = max(1, size - node_count)
    application = TrafficAnalysisApplication(config=CommunicationGraphConfig(
        node_count=node_count, edge_count=edge_count, seed=payload["seed"]))
    query = query_by_id(payload["query_id"])
    codegen = analyzer.query_cost(application, query, "networkx")
    strawman = analyzer.query_cost(application, query, "strawman")
    return ScalabilityPoint(
        graph_size=size,
        codegen_cost_usd=codegen.cost_usd,
        strawman_cost_usd=strawman.cost_usd if strawman.within_token_limit else None,
        strawman_within_limit=strawman.within_token_limit,
    )
