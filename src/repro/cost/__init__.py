"""Cost and scalability analysis (paper §4.5, Figure 4).

The analysis compares the dollar cost of answering a query with the
code-generation approach (prompt contains only the schema and the query)
against the strawman approach (prompt contains the full serialized graph),
using real token counts of the prompts this repository actually builds and
the published per-token prices.
"""

from repro.cost.analysis import (
    CostAnalyzer,
    QueryCost,
    CostCdf,
    ScalabilityPoint,
    ScalabilitySweep,
    ScenarioCostPoint,
)

__all__ = [
    "CostAnalyzer",
    "QueryCost",
    "CostCdf",
    "ScalabilityPoint",
    "ScalabilitySweep",
    "ScenarioCostPoint",
]
