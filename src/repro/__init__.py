"""repro — reproduction of "Enhancing Network Management Using Code Generated
by Large Language Models" (HotNets 2023).

The package layers, bottom-up:

* substrates: :mod:`repro.graph` (property graphs), :mod:`repro.frames`
  (mini dataframes), :mod:`repro.sqlengine` (in-memory SQL), and the two
  applications :mod:`repro.traffic` and :mod:`repro.malt`;
* the code-generation pipeline: :mod:`repro.synthesis` (NL -> code),
  :mod:`repro.llm` (simulated LLM providers), :mod:`repro.sandbox`
  (safe execution), :mod:`repro.core` (the Figure-2 framework);
* evaluation: :mod:`repro.benchmark` (the NeMoEval benchmark),
  :mod:`repro.techniques` (pass@k, self-debug, selection), and
  :mod:`repro.cost` (cost/scalability analysis);
* execution: :mod:`repro.exec` (the deterministic parallel execution
  fabric — task sets, serial/process-pool executors, content-keyed result
  caching — that every sweep dispatches through);
* scenario diversity: :mod:`repro.scenarios` (structured topology families,
  declarative scenario specs, and the dynamic-event engine).

See ``DESIGN.md`` for the full system inventory and the experiment index.
"""

__version__ = "1.7.0"

__all__ = ["__version__"]
