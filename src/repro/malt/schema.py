"""Entity and relationship schema of the MALT topology model."""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple


class EntityKind(str, enum.Enum):
    """Entity kinds used in the synthetic MALT model.

    The names follow the ``EK_*`` convention of the MALT paper and its
    example models.
    """

    NETWORK = "EK_NETWORK"
    DATACENTER = "EK_DATACENTER"
    POD = "EK_POD"
    RACK = "EK_RACK"
    CHASSIS = "EK_CHASSIS"
    PACKET_SWITCH = "EK_PACKET_SWITCH"
    PORT = "EK_PORT"
    CONTROL_POINT = "EK_CONTROL_POINT"
    INTERFACE = "EK_INTERFACE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class RelationshipKind(str, enum.Enum):
    """Relationship kinds (edge types) between MALT entities."""

    CONTAINS = "RK_CONTAINS"
    CONTROLS = "RK_CONTROLS"
    CONNECTED_TO = "RK_CONNECTED_TO"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: the parent -> child containment chain of the synthetic topology
CONTAINMENT_HIERARCHY: List[Tuple[EntityKind, EntityKind]] = [
    (EntityKind.NETWORK, EntityKind.DATACENTER),
    (EntityKind.DATACENTER, EntityKind.POD),
    (EntityKind.POD, EntityKind.RACK),
    (EntityKind.RACK, EntityKind.CHASSIS),
    (EntityKind.CHASSIS, EntityKind.PACKET_SWITCH),
    (EntityKind.PACKET_SWITCH, EntityKind.PORT),
]


#: human-readable description of each entity kind, used by the prompt generator
ENTITY_DESCRIPTIONS: Dict[EntityKind, str] = {
    EntityKind.NETWORK: "the whole WAN/network being modelled",
    EntityKind.DATACENTER: "a datacenter site",
    EntityKind.POD: "an aggregation block inside a datacenter",
    EntityKind.RACK: "a physical rack inside a pod",
    EntityKind.CHASSIS: "a switch chassis mounted in a rack; has a 'capacity' in Gbps",
    EntityKind.PACKET_SWITCH: "a packet switch (line card) inside a chassis; has a 'capacity' in Gbps and a 'vendor'",
    EntityKind.PORT: "a physical port on a packet switch; has 'speed_gbps' and 'status'",
    EntityKind.CONTROL_POINT: "a control-plane endpoint that controls one or more packet switches",
    EntityKind.INTERFACE: "a logical interface configured on a port",
}


#: description of each relationship kind
RELATIONSHIP_DESCRIPTIONS: Dict[RelationshipKind, str] = {
    RelationshipKind.CONTAINS: "the source entity physically or logically contains the target entity",
    RelationshipKind.CONTROLS: "the source control point manages the target packet switch",
    RelationshipKind.CONNECTED_TO: "the source port is cabled to the target port",
}


def entity_kind_names() -> List[str]:
    """All entity kind names, in declaration order."""
    return [kind.value for kind in EntityKind]


def relationship_kind_names() -> List[str]:
    """All relationship kind names, in declaration order."""
    return [kind.value for kind in RelationshipKind]


def describe_schema() -> str:
    """Render the schema description block used in MALT prompts."""
    lines = ["MALT entity kinds:"]
    for kind, description in ENTITY_DESCRIPTIONS.items():
        lines.append(f"  - {kind.value}: {description}")
    lines.append("MALT relationship kinds (directed edges, attribute 'relationship'):")
    for kind, description in RELATIONSHIP_DESCRIPTIONS.items():
        lines.append(f"  - {kind.value}: {description}")
    return "\n".join(lines)
