"""Network lifecycle management based on MALT
(Multi-Abstraction-Layer Topology representation).

MALT models a network as a graph of typed *entities* (packet switches,
chassis, ports, control points, ...) connected by typed *relationships*
(``contains``, ``controls``, ``connected_to``).  The paper converts the
public MALT example models into a directed graph with 5,493 nodes and 6,424
edges; that dataset is not redistributable here, so :mod:`repro.malt.generator`
builds a synthetic topology with the same entity kinds, relationship kinds,
hierarchical naming scheme, and the same node/edge scale, which is what the
nine lifecycle-management queries exercise.
"""

from repro.malt.schema import (
    EntityKind,
    RelationshipKind,
    CONTAINMENT_HIERARCHY,
    entity_kind_names,
)
from repro.malt.generator import MaltTopologyConfig, generate_malt_topology, paper_scale_topology
from repro.malt.application import MaltApplication

__all__ = [
    "EntityKind",
    "RelationshipKind",
    "CONTAINMENT_HIERARCHY",
    "entity_kind_names",
    "MaltTopologyConfig",
    "generate_malt_topology",
    "paper_scale_topology",
    "MaltApplication",
]
